//! Grounding-strategy equivalence — `Indexed` vs `Odometer` vs
//! `Indexed` under `Threads::Fixed(4)` must produce identical check
//! results on every workload.
//!
//! The indexed strategy enumerates instantiations from the occurrence
//! index instead of sweeping the `|M|^k` cross product; everything it
//! skips provably folds to one canonical rigid-false residue, so the
//! observable outcome — event streams, statuses, earliest-violation
//! instants — is the same as the blind odometer, and the sharded
//! indexed path merges in chunk order so it is *bit-identical* to the
//! sequential indexed path. This suite sweeps randomized staggered
//! sessions (fresh elements mid-stream, deletions, re-submissions)
//! over 120 seeds and asserts exactly that, plus a directed sparse
//! case where the pruning must actually engage (`inst_pruned > 0`).

use std::sync::Arc;
use ticc::core::{earliest_violation, CheckOptions, ConstraintId, Engine, GroundStrategy, Threads};
use ticc::fotl::parser::parse;
use ticc::fotl::{Formula, Term};
use ticc::tdb::rng::Rng;
use ticc::tdb::{Schema, Transaction, Value};

/// k = 1: the paper's once-only constraint.
const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
/// k = 2: once-only per pair — the occurrence index holds actual
/// pairs only, a vanishing fraction of `|M|^2`, so pruning engages.
const PAIR_ONCE: &str = "forall x y. G (Rep(x, y) -> X G !Rep(x, y))";
/// k = 0: outside the indexed gate (no external quantifiers), so this
/// one also exercises the transparent odometer fallback inline.
const CAP: &str = "G !Sub(999)";

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Rep", 2).build()
}

fn opts(grounding: GroundStrategy, threads: Threads) -> CheckOptions {
    CheckOptions::builder()
        .grounding(grounding)
        .threads(threads)
        .build()
}

/// Random staggered workload: fresh elements arrive mid-stream,
/// present facts may be deleted, old elements may be re-submitted.
/// Every engine always sees the identical transaction.
struct Driver {
    seen: Vec<Value>,
    sub_present: Vec<Value>,
    rep_present: Vec<(Value, Value)>,
    next_fresh: Value,
    max_elements: usize,
}

impl Driver {
    fn new(max_elements: usize) -> Self {
        Driver {
            seen: Vec::new(),
            sub_present: Vec::new(),
            rep_present: Vec::new(),
            next_fresh: 10,
            max_elements,
        }
    }

    fn pick(&mut self, rng: &mut Rng) -> Value {
        if self.seen.is_empty() || (self.seen.len() < self.max_elements && rng.gen_bool(0.4)) {
            let v = self.next_fresh;
            self.next_fresh += 1;
            self.seen.push(v);
            v
        } else {
            self.seen[rng.gen_range_usize(0..self.seen.len())]
        }
    }

    fn step(&mut self, sc: &Schema, rng: &mut Rng) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let rep = sc.pred("Rep").unwrap();
        let mut tx = Transaction::new();
        self.sub_present.retain(|&v| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(sub, vec![v]);
                false
            } else {
                true
            }
        });
        self.rep_present.retain(|&(a, b)| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(rep, vec![a, b]);
                false
            } else {
                true
            }
        });
        for _ in 0..rng.gen_range_usize(0..3) {
            let v = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(sub, vec![v]);
            if !self.sub_present.contains(&v) {
                self.sub_present.push(v);
            }
        }
        for _ in 0..rng.gen_range_usize(0..2) {
            let a = self.pick(rng);
            let b = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(rep, vec![a, b]);
            if !self.rep_present.contains(&(a, b)) {
                self.rep_present.push((a, b));
            }
        }
        tx
    }
}

#[test]
fn indexed_odometer_and_sharded_agree_on_randomized_sessions() {
    let sc = schema();
    let mut pruning_runs = 0usize;
    let mut violating_runs = 0usize;
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0xe15a ^ seed);
        let phis = [
            parse(&sc, ONCE_ONLY).unwrap(),
            parse(&sc, PAIR_ONCE).unwrap(),
            parse(&sc, CAP).unwrap(),
        ];
        let mut idx = Engine::new(sc.clone(), opts(GroundStrategy::Indexed, Threads::Off));
        let mut odo = Engine::new(sc.clone(), opts(GroundStrategy::Odometer, Threads::Off));
        let mut par = Engine::new(sc.clone(), opts(GroundStrategy::Indexed, Threads::Fixed(4)));
        let mut ids: Vec<ConstraintId> = Vec::new();
        for (i, phi) in phis.iter().enumerate() {
            let a = idx.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let b = odo.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let c = par.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            assert_eq!(a, b, "constraint ids must assign identically");
            assert_eq!(a, c, "constraint ids must assign identically");
            ids.push(a);
        }

        let mut drv = Driver::new(8);
        let mut events = 0usize;
        for _ in 0..rng.gen_range_usize(4..9) {
            let tx = drv.step(&sc, &mut rng);
            let ev_idx = idx.append(&tx).unwrap();
            let ev_odo = odo.append(&tx).unwrap();
            let ev_par = par.append(&tx).unwrap();
            assert_eq!(ev_idx, ev_odo, "seed {seed}: indexed vs odometer diverge");
            assert_eq!(ev_idx, ev_par, "seed {seed}: sequential vs sharded diverge");
            events += ev_idx.len();
            for id in &ids {
                assert_eq!(idx.status(*id), odo.status(*id), "seed {seed}: status");
                assert_eq!(idx.status(*id), par.status(*id), "seed {seed}: status");
            }
        }
        if events > 0 {
            violating_runs += 1;
        }

        // The strategies must agree on everything semantic: same |M|,
        // same instantiation-space size. The indexed/sharded pair must
        // be bit-identical down to the enumeration counters.
        for id in &ids {
            let gi = idx.context(*id).grounding().stats;
            let go = odo.context(*id).grounding().stats;
            assert_eq!(gi.m_size, go.m_size, "seed {seed}: |M| diverges");
            assert_eq!(gi.mappings, go.mappings, "seed {seed}: |M|^k diverges");
            assert_eq!(
                go.inst_enumerated, go.mappings,
                "seed {seed}: the odometer grounds the full cross product"
            );
            assert_eq!(
                gi,
                par.context(*id).grounding().stats,
                "seed {seed}: sharded GroundStats diverge"
            );
        }

        // Semantic engine counters agree across strategies. (Not
        // `sat_checks`: an occurrence activation changes the indexed
        // residue mid-stream, so the two engines' transition caches hit
        // on different appends and skip different phase-2 checks.)
        let si = idx.stats();
        let so = odo.stats();
        let sp = par.stats();
        assert_eq!(si.appends, so.appends, "seed {seed}");
        assert_eq!(si.grounds, so.grounds, "seed {seed}");
        assert_eq!(so.inst_pruned, 0, "seed {seed}: odometer must not prune");
        // The sequential/sharded indexed pair is bit-identical, caches
        // included.
        assert_eq!(si.sat_checks, sp.sat_checks, "seed {seed}");
        assert_eq!(si.fast_appends, sp.fast_appends, "seed {seed}");
        assert_eq!(si.delta_grounds, sp.delta_grounds, "seed {seed}");
        assert_eq!(si.inst_pruned, sp.inst_pruned, "seed {seed}");

        // Earliest-violation instants agree under all three configs.
        for phi in &phis {
            let a = earliest_violation(
                idx.history(),
                phi,
                &opts(GroundStrategy::Indexed, Threads::Off),
            )
            .unwrap();
            let b = earliest_violation(
                odo.history(),
                phi,
                &opts(GroundStrategy::Odometer, Threads::Off),
            )
            .unwrap();
            let c = earliest_violation(
                par.history(),
                phi,
                &opts(GroundStrategy::Indexed, Threads::Fixed(4)),
            )
            .unwrap();
            assert_eq!(a, b, "seed {seed}: earliest violation diverges");
            assert_eq!(a, c, "seed {seed}: earliest violation diverges");
        }

        if si.inst_pruned > 0 {
            pruning_runs += 1;
        }
    }
    // The sweep must actually exercise the index and produce real
    // violations, or the equalities above are vacuous.
    assert!(pruning_runs >= 100, "only {pruning_runs}/120 runs pruned");
    assert!(
        violating_runs >= 20,
        "only {violating_runs}/120 runs violate"
    );
}

/// A directed sparse case: a `k = 3` chain constraint over a binary
/// relation with a large active domain and few tuples per state — the
/// shape the index is built for. The prune counters must be non-zero
/// and the verdicts identical to the odometer.
#[test]
fn sparse_chain_prunes_and_matches_the_odometer() {
    let sc = Schema::builder().pred("E", 2).build();
    let e = sc.pred("E").unwrap();
    let var = |i: usize| Term::var(format!("x{i}"));
    let body = Formula::and_all((1..3).map(|i| Formula::pred(e, vec![var(i), var(i + 1)])));
    let phi = Formula::forall_many((1..=3).map(|i| format!("x{i}")), body.not().always());

    let mut rng = Rng::seed_from_u64(0xe15b);
    let mut idx = Engine::new(sc.clone(), opts(GroundStrategy::Indexed, Threads::Off));
    let mut odo = Engine::new(sc.clone(), opts(GroundStrategy::Odometer, Threads::Off));
    let mut par = Engine::new(sc.clone(), opts(GroundStrategy::Indexed, Threads::Fixed(4)));
    let id = idx.add_constraint("chain", phi.clone()).unwrap();
    odo.add_constraint("chain", phi.clone()).unwrap();
    par.add_constraint("chain", phi).unwrap();

    let mut prev: Vec<Vec<Value>> = Vec::new();
    for _ in 0..12 {
        let mut tx = Transaction::new();
        for t in prev.drain(..) {
            tx = tx.delete(e, t);
        }
        for _ in 0..3 {
            let a = rng.gen_range(0..32);
            let b = rng.gen_range(0..32);
            tx = tx.insert(e, vec![a, b]);
            prev.push(vec![a, b]);
        }
        let ev_idx = idx.append(&tx).unwrap();
        assert_eq!(ev_idx, odo.append(&tx).unwrap(), "indexed vs odometer");
        assert_eq!(ev_idx, par.append(&tx).unwrap(), "sequential vs sharded");
        assert_eq!(idx.status(id), odo.status(id));
        assert_eq!(idx.status(id), par.status(id));
    }

    // The gate must have engaged and actually pruned.
    assert_eq!(
        idx.context(id).grounding().strategy(),
        GroundStrategy::Indexed
    );
    let si = idx.stats();
    assert!(si.inst_pruned > 0, "sparse workload must prune");
    assert!(si.inst_enumerated > 0);
    assert_eq!(odo.stats().inst_pruned, 0);
    assert_eq!(
        idx.context(id).grounding().stats,
        par.context(id).grounding().stats,
        "sharded grounding must be bit-identical"
    );
}
