//! Delta re-grounding vs full re-grounding — randomized equivalence.
//!
//! The engine's delta path grounds only the instantiations mentioning
//! new relevant elements and replays them through the stored
//! propositional trace; the full path rebuilds the grounding over the
//! whole history. Progression distributes over conjunction and old
//! trace states assign `false` to every letter mentioning a new
//! element, so the two must produce *identical* observable behaviour:
//! the same violation events at the same instants, the same statuses,
//! and the same earliest-violation time. This suite streams staggered
//! new-element appends over randomized workloads and checks exactly
//! that, plus the `O(|Δ-part|)` complexity claim on the stats spine.

use std::sync::Arc;
use ticc::core::engine::Engine;
use ticc::core::{CheckOptions, Regrounding, Status};
use ticc::fotl::parser::parse;
use ticc::tdb::rng::Rng;
use ticc::tdb::{Schema, Transaction, Value};

const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
}

fn opts(regrounding: Regrounding) -> CheckOptions {
    CheckOptions::builder().regrounding(regrounding).build()
}

/// One randomized streaming session: elements arrive staggered (each
/// step may introduce fresh elements, re-submit old ones, or delete
/// current facts), and both engines see the identical transactions.
struct Session {
    delta: Engine,
    full: Engine,
    id_delta: ticc::core::ConstraintId,
    id_full: ticc::core::ConstraintId,
    /// Sub-facts currently present.
    present: Vec<Value>,
    /// Every element that has ever appeared (the relevant set).
    seen: Vec<Value>,
    /// Fresh elements inserted while the constraint was still live —
    /// at `k = 1`, exactly the number of conjuncts the delta path must
    /// ground and replay.
    expected_delta_conjuncts: u64,
    next_fresh: Value,
}

impl Session {
    fn new() -> Self {
        let sc = schema();
        let phi = parse(&sc, ONCE_ONLY).unwrap();
        let mut delta = Engine::new(sc.clone(), opts(Regrounding::Delta));
        let mut full = Engine::new(sc.clone(), opts(Regrounding::Full));
        let id_delta = delta.add_constraint("once", phi.clone()).unwrap();
        let id_full = full.add_constraint("once", phi).unwrap();
        Session {
            delta,
            full,
            id_delta,
            id_full,
            present: Vec::new(),
            seen: Vec::new(),
            expected_delta_conjuncts: 0,
            next_fresh: 100,
        }
    }

    /// Builds one random transaction, applies it to both engines, and
    /// asserts the observable outcomes agree. Returns the events of the
    /// delta engine.
    fn step(&mut self, rng: &mut Rng) -> usize {
        let sub = self.delta.history().schema().pred("Sub").unwrap();
        let mut tx = Transaction::new();
        // Deletions: each present fact may be cleared.
        self.present.retain(|&v| {
            if rng.gen_bool(0.5) {
                tx = std::mem::take(&mut tx).delete(sub, vec![v]);
                false
            } else {
                true
            }
        });
        // Insertions: up to two elements, staggered between fresh ones
        // (growing R_D mid-stream) and re-submissions (provoking
        // violations of once-only).
        let mut fresh_this_step = 0u64;
        for _ in 0..rng.gen_range_usize(0..3) {
            let v = if self.seen.is_empty() || rng.gen_bool(0.45) {
                let v = self.next_fresh;
                self.next_fresh += 1;
                fresh_this_step += 1;
                v
            } else {
                self.seen[rng.gen_range_usize(0..self.seen.len())]
            };
            if !self.present.contains(&v) {
                self.present.push(v);
            }
            if !self.seen.contains(&v) {
                self.seen.push(v);
            }
            tx = std::mem::take(&mut tx).insert(sub, vec![v]);
        }

        let live_before = self.delta.status(self.id_delta) == Status::Satisfied;
        let de = self.delta.append(&tx).unwrap();
        let fe = self.full.append(&tx).unwrap();
        assert_eq!(de, fe, "event streams diverge");
        assert_eq!(
            self.delta.status(self.id_delta),
            self.full.status(self.id_full),
            "statuses diverge"
        );
        if live_before {
            self.expected_delta_conjuncts += fresh_this_step;
        }
        de.len()
    }
}

#[test]
fn delta_equals_full_on_randomized_staggered_histories() {
    let mut violating_runs = 0;
    let mut delta_runs = 0;
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0xd31a ^ seed);
        let mut s = Session::new();
        let steps = rng.gen_range_usize(4..9);
        let mut events = 0;
        for _ in 0..steps {
            events += s.step(&mut rng);
        }
        assert!(events <= 1, "once-only can be violated at most once");
        if events == 1 {
            violating_runs += 1;
            // Earliest violation: both engines agree on the status,
            // including the `at` instant, checked per step; re-assert
            // the terminal state here.
            let Status::Violated { at } = s.delta.status(s.id_delta) else {
                panic!("event without violated status");
            };
            assert_eq!(s.full.status(s.id_full), Status::Violated { at });
        }

        let ds = s.delta.stats();
        let fs = s.full.stats();
        // The delta engine never falls back to a full rebuild, and it
        // takes the delta path exactly when the full engine is forced
        // to rebuild.
        assert_eq!(ds.regrounds, 0, "seed {seed}");
        assert_eq!(ds.delta_grounds, fs.regrounds, "seed {seed}");
        assert_eq!(fs.delta_grounds, 0, "seed {seed}");
        // O(|Δ-part|): at k = 1 each fresh element contributes exactly
        // one new instantiation, so the replayed-conjunct counter equals
        // the number of staggered arrivals — not the |M|^k total a full
        // rebuild re-derives each time.
        assert_eq!(ds.new_conjuncts, ds.replayed_conjuncts, "seed {seed}");
        assert_eq!(
            ds.replayed_conjuncts, s.expected_delta_conjuncts,
            "seed {seed}: replay must be linear in the delta part"
        );
        if ds.delta_grounds > 0 {
            delta_runs += 1;
        }
    }
    // The workload must actually exercise both behaviours.
    assert!(delta_runs >= 100, "only {delta_runs}/120 runs delta-ground");
    assert!(
        violating_runs >= 20,
        "only {violating_runs}/120 runs violate"
    );
}

#[test]
fn bad_prefix_notion_agrees_between_delta_and_full() {
    use ticc::core::engine::Notion;
    for seed in 0..30u64 {
        let mut rng = Rng::seed_from_u64(0xbad ^ seed);
        let sc = schema();
        let phi = parse(&sc, ONCE_ONLY).unwrap();
        let mut delta = Engine::new(sc.clone(), opts(Regrounding::Delta));
        delta.set_notion(Notion::BadPrefix);
        let mut full = Engine::new(sc.clone(), opts(Regrounding::Full));
        full.set_notion(Notion::BadPrefix);
        let d = delta.add_constraint("once", phi.clone()).unwrap();
        let f = full.add_constraint("once", phi.clone()).unwrap();
        let sub = sc.pred("Sub").unwrap();
        let mut pool = Vec::new();
        let mut next = 100;
        for _ in 0..6 {
            let mut tx = Transaction::new();
            for &v in &pool {
                if rng.gen_bool(0.5) {
                    tx = tx.delete(sub, vec![v]);
                }
            }
            let v = if pool.is_empty() || rng.gen_bool(0.4) {
                next += 1;
                next
            } else {
                pool[rng.gen_range_usize(0..pool.len())]
            };
            if !pool.contains(&v) {
                pool.push(v);
            }
            tx = tx.insert(sub, vec![v]);
            let de = delta.append(&tx).unwrap();
            let fe = full.append(&tx).unwrap();
            assert_eq!(de, fe, "seed {seed}");
            assert_eq!(delta.status(d), full.status(f), "seed {seed}");
        }
        // Progression-only notion runs no phase-2 checks on either path.
        assert_eq!(delta.stats().sat_checks, 0);
        assert_eq!(full.stats().sat_checks, 0);
    }
}
