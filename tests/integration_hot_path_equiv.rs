//! Append hot path equivalence — incremental letter encoding plus the
//! safety-automaton transition cache must be observationally
//! *identical* to the rebuild-everything ablation, not merely
//! equivalent.
//!
//! The hot configuration (the default: [`Encoding::Incremental`] with
//! the transition cache on) patches the previous propositional state
//! in place from the transaction and skips progression (and usually
//! phase 2) whenever a `(residue, support-fingerprint)` pair recurs.
//! Both are pure shortcuts: the patched state must equal a full
//! re-encode, and a cached transition must land on the same residue
//! and verdict the progression pipeline would compute. This suite
//! sweeps 120 randomized staggered sessions (fresh elements arriving
//! mid-stream — so delta re-grounding interleaves with the hot path —
//! plus deletions and re-submissions) through three engines fed
//! identical transactions:
//!
//! - **hot** — `Encoding::Incremental`, transition cache on (default),
//! - **cold** — `Encoding::Rebuild`, transition cache off (ablation),
//! - **hot ∥ 4** — the hot configuration under `Threads::Fixed(4)`,
//!
//! and asserts bit-identical event streams, per-append statuses,
//! instantiation-level [`GroundStats`], earliest-violation instants,
//! and trigger firings — plus non-vacuity: the sweep must actually
//! take transition hits, patch letters incrementally, and delta
//! re-ground.

use std::sync::Arc;
use ticc::core::{
    earliest_violation, Action, CheckOptions, ConstraintId, Encoding, Engine, Threads, Trigger,
    TriggerEngine,
};
use ticc::fotl::parser::parse;
use ticc::tdb::rng::Rng;
use ticc::tdb::{History, Schema, Transaction, Value};

/// k = 1: the paper's once-only constraint.
const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
/// k = 2: once-only per pair (instantiation space `|M|^2`).
const PAIR_ONCE: &str = "forall x y. G (Rep(x, y) -> X G !Rep(x, y))";
/// k = 0: never violated here (elements stay far below 999), so at
/// least one constraint stays live all session — its residue is
/// eventually stable, which is exactly the steady state the
/// transition cache exists for.
const CAP: &str = "G !Sub(999)";

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Rep", 2).build()
}

// Template automata are off on both sides: this suite pins down the
// symbolic hot path (transition cache + incremental encoding), whose
// non-vacuity assertions — `total_hits > 0` — would be starved by the
// compiled path. The compiled-vs-symbolic equivalence has its own
// 120-seed suite in `integration_template_automata.rs`.
fn hot_opts(threads: Threads) -> CheckOptions {
    CheckOptions::builder()
        .threads(threads)
        .template_automata(false)
        .build()
}

fn cold_opts() -> CheckOptions {
    CheckOptions::builder()
        .encoding(Encoding::Rebuild)
        .transition_cache(false)
        .template_automata(false)
        .build()
}

/// Random staggered workload: fresh elements arrive mid-stream,
/// present facts may be deleted, old elements may be re-submitted.
/// Every engine always sees the identical transaction.
struct Driver {
    seen: Vec<Value>,
    sub_present: Vec<Value>,
    rep_present: Vec<(Value, Value)>,
    next_fresh: Value,
    max_elements: usize,
}

impl Driver {
    fn new(max_elements: usize) -> Self {
        Driver {
            seen: Vec::new(),
            sub_present: Vec::new(),
            rep_present: Vec::new(),
            next_fresh: 10,
            max_elements,
        }
    }

    fn pick(&mut self, rng: &mut Rng) -> Value {
        if self.seen.is_empty() || (self.seen.len() < self.max_elements && rng.gen_bool(0.3)) {
            let v = self.next_fresh;
            self.next_fresh += 1;
            self.seen.push(v);
            v
        } else {
            self.seen[rng.gen_range_usize(0..self.seen.len())]
        }
    }

    fn step(&mut self, sc: &Schema, rng: &mut Rng) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let rep = sc.pred("Rep").unwrap();
        let mut tx = Transaction::new();
        self.sub_present.retain(|&v| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(sub, vec![v]);
                false
            } else {
                true
            }
        });
        self.rep_present.retain(|&(a, b)| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(rep, vec![a, b]);
                false
            } else {
                true
            }
        });
        for _ in 0..rng.gen_range_usize(0..3) {
            let v = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(sub, vec![v]);
            if !self.sub_present.contains(&v) {
                self.sub_present.push(v);
            }
        }
        for _ in 0..rng.gen_range_usize(0..2) {
            let a = self.pick(rng);
            let b = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(rep, vec![a, b]);
            if !self.rep_present.contains(&(a, b)) {
                self.rep_present.push((a, b));
            }
        }
        tx
    }
}

#[test]
fn hot_and_rebuild_agree_on_randomized_sessions() {
    let sc = schema();
    let mut total_hits = 0u64;
    let mut total_patched = 0u64;
    let mut total_delta = 0u64;
    let mut violating_runs = 0usize;
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0x5d07 ^ seed);
        let phis = [
            parse(&sc, ONCE_ONLY).unwrap(),
            parse(&sc, PAIR_ONCE).unwrap(),
            parse(&sc, CAP).unwrap(),
        ];
        let mut hot = Engine::new(sc.clone(), hot_opts(Threads::Off));
        let mut cold = Engine::new(sc.clone(), cold_opts());
        let mut par = Engine::new(sc.clone(), hot_opts(Threads::Fixed(4)));
        let mut ids: Vec<ConstraintId> = Vec::new();
        for (i, phi) in phis.iter().enumerate() {
            let a = hot.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let b = cold.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let c = par.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
            ids.push(a);
        }

        let mut drv = Driver::new(6);
        let mut events = 0usize;
        for step in 0..rng.gen_range_usize(6..14) {
            let tx = drv.step(&sc, &mut rng);
            let ev_hot = hot.append(&tx).unwrap();
            let ev_cold = cold.append(&tx).unwrap();
            let ev_par = par.append(&tx).unwrap();
            assert_eq!(
                ev_hot, ev_cold,
                "seed {seed} step {step}: hot vs rebuild events diverge"
            );
            assert_eq!(
                ev_hot, ev_par,
                "seed {seed} step {step}: hot vs hot∥4 events diverge"
            );
            events += ev_hot.len();
            for id in &ids {
                assert_eq!(
                    hot.status(*id),
                    cold.status(*id),
                    "seed {seed} step {step}: status diverges"
                );
                assert_eq!(hot.status(*id), par.status(*id), "seed {seed} step {step}");
            }
        }
        if events > 0 {
            violating_runs += 1;
        }

        // The groundings must come out bit-identical: incremental
        // letter patching interns exactly the letters a rebuild would.
        for id in &ids {
            assert_eq!(
                hot.context(*id).grounding().stats,
                cold.context(*id).grounding().stats,
                "seed {seed}: GroundStats diverge for {id:?}"
            );
            assert_eq!(
                hot.context(*id).grounding().stats,
                par.context(*id).grounding().stats,
                "seed {seed}: GroundStats diverge (parallel) for {id:?}"
            );
        }

        // Semantic counters agree wherever the configurations share
        // work; the caches only ever *remove* work from the hot side.
        let sh = hot.stats();
        let sc2 = cold.stats();
        let sp = par.stats();
        assert_eq!(sh.appends, sc2.appends, "seed {seed}");
        assert_eq!(sh.grounds, sc2.grounds, "seed {seed}");
        assert_eq!(sh.delta_grounds, sc2.delta_grounds, "seed {seed}");
        assert_eq!(sh.fast_appends, sc2.fast_appends, "seed {seed}");
        assert_eq!(sh.letters, sc2.letters, "seed {seed}");
        assert_eq!(sh.mappings, sc2.mappings, "seed {seed}");
        assert!(sh.sat_checks <= sc2.sat_checks, "seed {seed}");
        assert_eq!(sc2.encode_patched_atoms, 0, "seed {seed}: rebuild patches");
        // Worker-local caches: the parallel hot engine behaves exactly
        // like the sequential hot engine, hit for hit.
        assert_eq!(
            sh.cache.transition_hits, sp.cache.transition_hits,
            "seed {seed}"
        );
        assert_eq!(
            sh.encode_patched_atoms, sp.encode_patched_atoms,
            "seed {seed}"
        );
        assert_eq!(sh.sat_checks, sp.sat_checks, "seed {seed}");
        total_hits += sh.cache.transition_hits;
        total_patched += sh.encode_patched_atoms;
        total_delta += sh.delta_grounds;

        // Earliest-violation instants agree under both configurations.
        for phi in &phis {
            let a = earliest_violation(hot.history(), phi, &hot_opts(Threads::Off)).unwrap();
            let b = earliest_violation(cold.history(), phi, &cold_opts()).unwrap();
            assert_eq!(a, b, "seed {seed}: earliest violation diverges");
        }
    }
    // Non-vacuity: the sweep must exercise every shortcut it claims to
    // verify, and produce real violations.
    assert!(total_hits > 0, "no transition cache hits across the sweep");
    assert!(total_patched > 0, "no incremental letter patches");
    assert!(total_delta > 0, "no delta re-grounds");
    assert!(
        violating_runs >= 20,
        "only {violating_runs}/120 runs violate"
    );
}

#[test]
fn trigger_engine_agrees_hot_vs_rebuild() {
    let sc = schema();
    for seed in 0..25u64 {
        let mut rng = Rng::seed_from_u64(0x30c1 ^ seed);
        let mut hot = TriggerEngine::new(hot_opts(Threads::Off));
        let mut cold = TriggerEngine::new(cold_opts());
        for (i, cond) in ["F (Sub(x) & X F Sub(x))", "F Rep(x, y)"]
            .iter()
            .enumerate()
        {
            let c = parse(&sc, cond).unwrap();
            hot.add(Trigger {
                name: format!("t{i}"),
                condition: c.clone(),
                action: Action::Log,
            })
            .unwrap();
            cold.add(Trigger {
                name: format!("t{i}"),
                condition: c,
                action: Action::Log,
            })
            .unwrap();
        }

        let mut h = History::new(sc.clone());
        let mut drv = Driver::new(5);
        for _ in 0..4 {
            let tx = drv.step(&sc, &mut rng);
            h.apply(&tx).unwrap();
            let f_hot = hot.evaluate(&h).unwrap();
            let f_cold = cold.evaluate(&h).unwrap();
            assert_eq!(f_hot, f_cold, "seed {seed}: fired lists diverge");
        }

        let sh = hot.stats();
        let sc2 = cold.stats();
        assert_eq!(sh.grounds, sc2.grounds, "seed {seed}");
        assert_eq!(sh.sat_checks, sc2.sat_checks, "seed {seed}");
    }
}
