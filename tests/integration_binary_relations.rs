//! End-to-end scenarios over a binary relation (arity `l = 2`), which
//! exercises the grounding differently from the paper's monadic order
//! example: tuples contribute two relevant elements each, letters are
//! quadratic in `|M|`, and mixed fresh/relevant argument vectors arise.
//!
//! Scenario: a dynamic graph of "reports-to" edges with constraints
//! * no self-management: `∀x □¬Rep(x, x)`
//! * management is stable: once `x` reports to `y`, `x` can never report
//!   to anyone else afterwards (but may stop reporting):
//!   `∀x∀y∀z □(Rep(x,y) ∧ y ≠ z → ○□¬Rep(x,z))`
//! * no cycles of length 2: `∀x∀y □¬(Rep(x,y) ∧ Rep(y,x))`

use std::sync::Arc;
use ticc::core::{check_potential_satisfaction, CheckOptions, Monitor, Status};
use ticc::fotl::parser::parse;
use ticc::tdb::{History, Schema, State, Transaction};

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Rep", 2).build()
}

const NO_SELF: &str = "forall x. G !Rep(x, x)";
const STABLE: &str = "forall x y z. G (Rep(x, y) & y != z -> X G !Rep(x, z))";
const NO_2CYCLE: &str = "forall x y. G !(Rep(x, y) & Rep(y, x))";

fn graph_history(spec: &[&[(u64, u64)]]) -> History {
    let sc = schema();
    let mut h = History::new(sc.clone());
    for edges in spec {
        let mut s = State::empty(sc.clone());
        for &(a, b) in *edges {
            s.insert_named("Rep", vec![a, b]).unwrap();
        }
        h.push_state(s);
    }
    h
}

#[test]
fn constraints_classify_with_expected_arity_and_quantifiers() {
    let sc = schema();
    for (src, k) in [(NO_SELF, 1), (STABLE, 3), (NO_2CYCLE, 2)] {
        let f = parse(&sc, src).unwrap();
        assert_eq!(
            ticc::fotl::classify::classify(&f),
            ticc::fotl::classify::FormulaClass::Universal { external: k },
            "{src}"
        );
    }
    assert_eq!(sc.max_arity(), 2);
}

#[test]
fn clean_graph_histories_pass_all_three() {
    let sc = schema();
    // 1→2, later 3→2; 1 stops reporting; 3 keeps reporting to 2.
    let h = graph_history(&[&[(1, 2)], &[(1, 2), (3, 2)], &[(3, 2)]]);
    for src in [NO_SELF, STABLE, NO_2CYCLE] {
        let phi = parse(&sc, src).unwrap();
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert!(out.potentially_satisfied, "{src}");
    }
}

#[test]
fn self_loop_violates_no_self() {
    let sc = schema();
    let phi = parse(&sc, NO_SELF).unwrap();
    let h = graph_history(&[&[(1, 2)], &[(2, 2)]]);
    let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
    assert!(!out.potentially_satisfied);
}

#[test]
fn manager_change_violates_stability() {
    let sc = schema();
    let phi = parse(&sc, STABLE).unwrap();
    // 1 reports to 2, then later to 3: violation.
    let bad = graph_history(&[&[(1, 2)], &[], &[(1, 3)]]);
    let out = check_potential_satisfaction(&bad, &phi, &CheckOptions::default()).unwrap();
    assert!(!out.potentially_satisfied);
    // Re-reporting to the SAME manager is fine (y ≠ z guard).
    let ok = graph_history(&[&[(1, 2)], &[], &[(1, 2)]]);
    let out = check_potential_satisfaction(&ok, &phi, &CheckOptions::default()).unwrap();
    assert!(out.potentially_satisfied);
}

#[test]
fn two_cycle_violates_and_is_detected_online() {
    let sc = schema();
    let rep = sc.pred("Rep").unwrap();
    let mut m = Monitor::new(sc.clone(), CheckOptions::default());
    let id = m
        .add_constraint("no-2cycle", parse(&sc, NO_2CYCLE).unwrap())
        .unwrap();
    m.append(&Transaction::new().insert(rep, vec![1, 2]))
        .unwrap();
    assert_eq!(m.status(id), Status::Satisfied);
    let ev = m
        .append(&Transaction::new().insert(rep, vec![2, 1]))
        .unwrap();
    assert_eq!(ev.len(), 1);
    assert_eq!(m.status(id), Status::Violated { at: 2 });
}

#[test]
fn grounding_stats_reflect_binary_arity() {
    let sc = schema();
    let phi = parse(&sc, NO_2CYCLE).unwrap(); // k = 2, l = 2
    let h = graph_history(&[&[(0, 1), (2, 3)]]); // |R_D| = 4
    let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
    assert!(out.potentially_satisfied);
    // |M| = 4 relevant + 2 fresh = 6; instances 6².
    assert_eq!(out.stats.ground.m_size, 6);
    assert_eq!(out.stats.ground.mappings, 36);
}

#[test]
fn all_three_constraints_together_in_one_monitor() {
    let sc = schema();
    let rep = sc.pred("Rep").unwrap();
    let mut m = Monitor::new(sc.clone(), CheckOptions::default());
    for (name, src) in [
        ("no-self", NO_SELF),
        ("stable", STABLE),
        ("no-2cycle", NO_2CYCLE),
    ] {
        m.add_constraint(name, parse(&sc, src).unwrap()).unwrap();
    }
    // Build a legal chain 3→2→1 over a few commits.
    m.append(&Transaction::new().insert(rep, vec![2, 1]))
        .unwrap();
    m.append(&Transaction::new().insert(rep, vec![3, 2]))
        .unwrap();
    assert!(m.constraints().all(|id| m.status(id) == Status::Satisfied));
    // 1→3 closes a 3-cycle: allowed by all three registered constraints
    // (no 2-cycle, no self loop, no manager change).
    m.append(&Transaction::new().insert(rep, vec![1, 3]))
        .unwrap();
    assert!(m.constraints().all(|id| m.status(id) == Status::Satisfied));
    // Now 2→3 would be a manager change for 2 (2→1 exists): stability
    // violation, and also a 2-cycle with 3→2.
    let ev = m
        .append(&Transaction::new().insert(rep, vec![2, 3]))
        .unwrap();
    assert!(ev.len() >= 2, "stability and 2-cycle both fire: {ev:?}");
}
