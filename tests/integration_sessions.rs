//! Session-audit scenario: the history-less past monitor (§5) on the
//! login/activity workload.
//!
//! The audit constraint is the textbook past formula
//! `∀x □(Act(x) → (¬Logout(x)) S Login(x))` — "every action happens
//! inside an open session". Being `∀□(past)`, it defines a safety
//! property (Proposition 2.1) and is monitored history-lessly.

use ticc::core::past::{PastMonitor, PastStatus};
use ticc::fotl::parser::parse;
use ticc::tdb::workload::{SessionViolation, SessionWorkload};

const AUDIT: &str = "forall x. G (Act(x) -> ((!Logout(x)) S Login(x)))";

fn run_monitor(h: &ticc::tdb::History) -> PastStatus {
    let sc = h.schema().clone();
    let phi = parse(&sc, AUDIT).unwrap();
    let mut m = PastMonitor::new(sc, vec![], &phi).unwrap();
    let mut st = PastStatus::Satisfied;
    for s in h.states() {
        st = m.append(s);
    }
    st
}

#[test]
fn clean_workloads_pass_the_audit() {
    for seed in 0..10 {
        let h = SessionWorkload {
            instants: 25,
            seed,
            ..Default::default()
        }
        .generate();
        assert_eq!(run_monitor(&h), PastStatus::Satisfied, "seed {seed}");
    }
}

#[test]
fn act_without_login_is_caught_at_the_instant() {
    let h = SessionWorkload {
        instants: 12,
        violation: Some((SessionViolation::ActWithoutLogin, 7)),
        seed: 3,
        ..Default::default()
    }
    .generate();
    assert_eq!(run_monitor(&h), PastStatus::Violated { at: 7 });
}

#[test]
fn act_after_logout_is_caught() {
    // Find a seed where someone has logged out before instant 15 so the
    // injection actually lands (the generator skips it otherwise).
    let mut caught = 0;
    for seed in 0..20 {
        let h = SessionWorkload {
            instants: 20,
            act_prob: 0.3,
            logout_prob: 0.7,
            violation: Some((SessionViolation::ActAfterLogout, 15)),
            seed,
            ..Default::default()
        }
        .generate();
        if let PastStatus::Violated { at } = run_monitor(&h) {
            assert_eq!(at, 15, "seed {seed}");
            caught += 1;
        }
    }
    assert!(
        caught >= 8,
        "injection should land for most seeds: {caught}"
    );
}

#[test]
fn session_audit_also_works_through_eval_reference() {
    // Cross-check the monitor against the reference evaluator on a
    // violating history.
    let h = SessionWorkload {
        instants: 12,
        violation: Some((SessionViolation::ActWithoutLogin, 6)),
        seed: 4,
        ..Default::default()
    }
    .generate();
    let sc = h.schema().clone();
    let body = parse(&sc, "forall x. Act(x) -> ((!Logout(x)) S Login(x))").unwrap();
    // ψ holds at 0..5, fails at 6.
    for t in 0..6 {
        assert!(ticc::fotl::eval::eval(
            &h,
            &body,
            t,
            &Default::default(),
            &ticc::fotl::eval::EvalOptions::default()
        )
        .unwrap());
    }
    assert!(!ticc::fotl::eval::eval(
        &h,
        &body,
        6,
        &Default::default(),
        &ticc::fotl::eval::EvalOptions::default()
    )
    .unwrap());
}
