//! End-to-end scenarios built from the paper's own examples (Section 2),
//! exercised through the public facade crate.

use ticc::core::diagnostics::earliest_violation;
use ticc::core::{
    check_potential_satisfaction, Action, CheckOptions, Monitor, Status, Trigger, TriggerEngine,
};
use ticc::fotl::classify::{classify, FormulaClass};
use ticc::fotl::parser::parse;
use ticc::fotl::Term;
use ticc::tdb::workload::{OrderViolation, OrderWorkload};
use ticc::tdb::{History, Schema, State, Transaction};

const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
const FIFO: &str = "forall x y. G !(x != y & Sub(x) & \
                   ((!Fill(x)) U (Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))";

fn order_history(spec: &[(&[u64], &[u64])]) -> History {
    let sc = OrderWorkload::schema();
    let mut h = History::new(sc.clone());
    for (subs, fills) in spec {
        let mut s = State::empty(sc.clone());
        for &v in *subs {
            s.insert_named("Sub", vec![v]).unwrap();
        }
        for &v in *fills {
            s.insert_named("Fill", vec![v]).unwrap();
        }
        h.push_state(s);
    }
    h
}

#[test]
fn both_paper_constraints_are_universal_and_safe() {
    let sc = OrderWorkload::schema();
    for (src, k) in [(ONCE_ONLY, 1), (FIFO, 2)] {
        let f = parse(&sc, src).unwrap();
        assert_eq!(classify(&f), FormulaClass::Universal { external: k });
        assert!(ticc::fotl::classify::is_syntactically_safe(&f));
    }
}

#[test]
fn generated_clean_workloads_satisfy_both_constraints() {
    let sc = OrderWorkload::schema();
    let once = parse(&sc, ONCE_ONLY).unwrap();
    let fifo = parse(&sc, FIFO).unwrap();
    for seed in 0..5 {
        let h = OrderWorkload {
            instants: 10,
            submit_prob: 0.6,
            fill_prob: 0.5,
            violation: None,
            seed,
        }
        .generate();
        for phi in [&once, &fifo] {
            let out = check_potential_satisfaction(&h, phi, &CheckOptions::default()).unwrap();
            assert!(out.potentially_satisfied, "seed {seed} should be clean");
        }
    }
}

#[test]
fn injected_violations_are_caught_by_the_matching_constraint() {
    let sc = OrderWorkload::schema();
    let once = parse(&sc, ONCE_ONLY).unwrap();
    let fifo = parse(&sc, FIFO).unwrap();
    // Double submission breaks once-only (FIFO may or may not survive).
    let h1 = OrderWorkload {
        instants: 12,
        submit_prob: 0.9,
        fill_prob: 0.3,
        violation: Some((OrderViolation::DoubleSubmit, 8)),
        seed: 1,
    }
    .generate();
    assert!(
        !check_potential_satisfaction(&h1, &once, &CheckOptions::default())
            .unwrap()
            .potentially_satisfied
    );
    // Out-of-order fill breaks FIFO but not once-only.
    let h2 = OrderWorkload {
        instants: 12,
        submit_prob: 0.9,
        fill_prob: 0.1,
        violation: Some((OrderViolation::OutOfOrderFill, 8)),
        seed: 1,
    }
    .generate();
    assert!(
        !check_potential_satisfaction(&h2, &fifo, &CheckOptions::default())
            .unwrap()
            .potentially_satisfied
    );
    assert!(
        check_potential_satisfaction(&h2, &once, &CheckOptions::default())
            .unwrap()
            .potentially_satisfied
    );
}

#[test]
fn earliest_violation_matches_injection_point() {
    let sc = OrderWorkload::schema();
    let fifo = parse(&sc, FIFO).unwrap();
    // Submit 1 and 2, then fill 2 before 1 at t=2: prefix of length 3
    // is the first violated one.
    let h = order_history(&[(&[1], &[]), (&[2], &[]), (&[], &[2]), (&[], &[1])]);
    assert_eq!(
        earliest_violation(&h, &fifo, &CheckOptions::default()).unwrap(),
        Some(3)
    );
}

#[test]
fn monitor_and_batch_checker_agree() {
    let sc = OrderWorkload::schema();
    let once = parse(&sc, ONCE_ONLY).unwrap();
    let h = order_history(&[(&[1], &[]), (&[2], &[1]), (&[1], &[2])]);

    // Batch: earliest violation at prefix length 3.
    let batch = earliest_violation(&h, &once, &CheckOptions::default()).unwrap();
    assert_eq!(batch, Some(3));

    // Online: replay through the monitor.
    let mut m = Monitor::new(sc.clone(), CheckOptions::default());
    let id = m.add_constraint("once", once).unwrap();
    let sub = sc.pred("Sub").unwrap();
    let fill = sc.pred("Fill").unwrap();
    let mk = |s: &[u64], f: &[u64], prev_s: &[u64], prev_f: &[u64]| {
        let mut tx = Transaction::new();
        for &v in prev_s {
            tx = tx.delete(sub, vec![v]);
        }
        for &v in prev_f {
            tx = tx.delete(fill, vec![v]);
        }
        for &v in s {
            tx = tx.insert(sub, vec![v]);
        }
        for &v in f {
            tx = tx.insert(fill, vec![v]);
        }
        tx
    };
    assert!(m.append(&mk(&[1], &[], &[], &[])).unwrap().is_empty());
    assert!(m.append(&mk(&[2], &[1], &[1], &[])).unwrap().is_empty());
    let ev = m.append(&mk(&[1], &[2], &[2], &[1])).unwrap();
    assert_eq!(ev.len(), 1);
    assert_eq!(m.status(id), Status::Violated { at: 3 });
}

#[test]
fn trigger_fires_exactly_when_constraint_violated() {
    // The duality of Section 2, checked both ways on the same histories.
    let sc = Schema::builder()
        .pred("Sub", 1)
        .pred("Fill", 1)
        .pred("Alert", 1)
        .build();
    let once = parse(&sc, ONCE_ONLY).unwrap();
    let cond = parse(&sc, "F (Sub(x) & X F Sub(x))").unwrap();
    let mut engine = TriggerEngine::new(CheckOptions::default());
    engine
        .add(Trigger {
            name: "dup".into(),
            condition: cond,
            action: Action::Insert {
                pred: sc.pred("Alert").unwrap(),
                args: vec![Term::var("x")],
            },
        })
        .unwrap();

    let histories = [
        vec![(vec![1u64], vec![]), (vec![2], vec![])],
        vec![(vec![1], vec![]), (vec![1], vec![])],
        vec![(vec![1], vec![]), (vec![2], vec![]), (vec![2], vec![])],
    ];
    for spec in histories {
        let mut h = History::new(sc.clone());
        for (subs, fills) in &spec {
            let mut s = State::empty(sc.clone());
            for &v in subs {
                s.insert_named("Sub", vec![v]).unwrap();
            }
            for &v in fills {
                s.insert_named("Fill", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        let violated = !check_potential_satisfaction(&h, &once, &CheckOptions::default())
            .unwrap()
            .potentially_satisfied;
        let fired = engine.evaluate(&h).unwrap();
        assert_eq!(
            violated,
            !fired.is_empty(),
            "trigger firing must coincide with constraint violation"
        );
    }
}

#[test]
fn witness_extension_roundtrip_through_public_api() {
    let sc = OrderWorkload::schema();
    let fifo = parse(&sc, FIFO).unwrap();
    let h = order_history(&[(&[1], &[]), (&[2], &[])]);
    let out = check_potential_satisfaction(&h, &fifo, &CheckOptions::default()).unwrap();
    assert!(out.potentially_satisfied);
    let w = out.witness.unwrap();
    // Extend the real history with the witness and confirm the
    // constraint stays potentially satisfied at every prefix.
    let mut ext = h.clone();
    for s in w.prefix.iter().chain(w.cycle.iter()).chain(w.cycle.iter()) {
        ext.push_state(s.clone());
        let again = check_potential_satisfaction(&ext, &fifo, &CheckOptions::default()).unwrap();
        assert!(again.potentially_satisfied);
    }
}
