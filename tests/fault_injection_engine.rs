//! Engine-level crash recovery: kill a durable session at *every*
//! frame boundary (and corrupt every frame) and assert the reopened
//! engine is exactly the engine that had only seen the surviving
//! prefix — then drive it forward and check it converges with a twin
//! that never crashed.

use std::sync::Arc;
use ticc::core::{CheckOptions, ConstraintId, Engine, Status};
use ticc::fotl::parser::parse;
use ticc::fotl::Formula;
use ticc::store::MAGIC;
use ticc::tdb::{Schema, Transaction};

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Rep", 2).build()
}

fn phis(sc: &Schema) -> Vec<Formula> {
    vec![
        parse(sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap(),
        parse(sc, "forall x y. G (Rep(x, y) -> X G !Rep(x, y))").unwrap(),
        parse(sc, "G !Sub(999)").unwrap(),
    ]
}

fn register(engine: &mut Engine, phis: &[Formula]) -> Vec<ConstraintId> {
    phis.iter()
        .enumerate()
        .map(|(i, phi)| engine.add_constraint(format!("c{i}"), phi.clone()).unwrap())
        .collect()
}

/// The session's transaction script: staggered arrivals, deletions,
/// re-submissions, and a final violation (Sub(11) re-submitted).
fn script(sc: &Schema) -> Vec<Transaction> {
    let sub = sc.pred("Sub").unwrap();
    let rep = sc.pred("Rep").unwrap();
    vec![
        Transaction::new().insert(sub, vec![10]),
        Transaction::new()
            .delete(sub, vec![10])
            .insert(sub, vec![11]),
        Transaction::new().insert(rep, vec![10, 11]),
        Transaction::new()
            .delete(sub, vec![11])
            .delete(rep, vec![10, 11]),
        Transaction::new().insert(sub, vec![12]),
        Transaction::new()
            .delete(sub, vec![12])
            .insert(sub, vec![11]),
    ]
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ticc-engine-fault-{tag}-{}.wal",
        std::process::id()
    ))
}

/// Offsets where each frame ends: `[header, snapshot, tx1, …, txN]`.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![MAGIC.len()];
    let mut pos = MAGIC.len();
    while pos + 5 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4 + 1 + len + 8;
        assert!(pos <= bytes.len(), "log parses cleanly");
        boundaries.push(pos);
    }
    assert_eq!(pos, bytes.len());
    boundaries
}

/// A never-crashed engine that saw the first `k` script transactions.
fn twin(sc: &Arc<Schema>, phis: &[Formula], txs: &[Transaction], k: usize) -> Engine {
    let mut e = Engine::new(sc.clone(), CheckOptions::default());
    register(&mut e, phis);
    for tx in &txs[..k] {
        e.append(tx).unwrap();
    }
    e
}

fn assert_matches_twin(label: &str, restored: &Engine, expected: &Engine, ids: &[ConstraintId]) {
    assert_eq!(
        restored.history().states(),
        expected.history().states(),
        "{label}: histories diverge"
    );
    for id in ids {
        assert_eq!(
            restored.status(*id),
            expected.status(*id),
            "{label}: status diverges for {id:?}"
        );
        assert_eq!(
            restored.context(*id).residue(),
            expected.context(*id).residue(),
            "{label}: residues diverge for {id:?}"
        );
    }
}

/// Builds the session log once; returns its raw bytes.
fn record_session(path: &std::path::Path, sc: &Arc<Schema>, phis: &[Formula]) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let (mut e, _) = Engine::open(path, sc.clone(), CheckOptions::default()).unwrap();
    register(&mut e, phis);
    e.checkpoint(&[]).unwrap();
    for tx in script(sc) {
        e.append(&tx).unwrap();
    }
    drop(e);
    std::fs::read(path).unwrap()
}

#[test]
fn crash_at_every_frame_boundary_recovers_the_exact_prefix() {
    let sc = schema();
    let phis = phis(&sc);
    let txs = script(&sc);
    let path = temp_path("boundary");
    let bytes = record_session(&path, &sc, &phis);
    let boundaries = frame_boundaries(&bytes);
    assert_eq!(boundaries.len(), 2 + txs.len(), "header + snapshot + txs");

    // Crash exactly at each boundary, and torn mid-frame right after.
    let mut cuts: Vec<(usize, usize)> = Vec::new(); // (cut, intact frames)
    for (j, &b) in boundaries.iter().enumerate() {
        cuts.push((b, j));
        let next = boundaries.get(j + 1).copied().unwrap_or(bytes.len());
        if next > b + 3 {
            cuts.push((b + 3, j)); // torn frame: same surviving prefix
        }
    }
    for (cut, intact) in cuts {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (mut restored, report) =
            Engine::open(&path, sc.clone(), CheckOptions::default()).unwrap();
        if intact == 0 {
            // Not even the snapshot survived: fresh engine.
            assert!(!report.had_snapshot, "cut {cut}");
            assert_eq!(restored.constraints().count(), 0, "cut {cut}");
            continue;
        }
        let k = intact - 1; // surviving tx frames
        assert!(report.had_snapshot, "cut {cut}");
        assert_eq!(report.replayed_txs, k as u64, "cut {cut}");
        let mut expected = twin(&sc, &phis, &txs, k);
        let ids: Vec<ConstraintId> = expected.constraints().collect();
        assert_matches_twin(&format!("cut {cut}"), &restored, &expected, &ids);

        // Continue correctly: feed both the lost suffix, compare.
        for (step, tx) in txs[k..].iter().enumerate() {
            let a = restored.append(tx).unwrap();
            let b = expected.append(tx).unwrap();
            assert_eq!(a, b, "cut {cut} step {step}: events diverge");
        }
        assert_matches_twin(&format!("cut {cut} (resumed)"), &restored, &expected, &ids);
        assert!(
            matches!(restored.status(ids[0]), Status::Violated { .. }),
            "cut {cut}: resumed session reaches the scripted violation"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupting_each_frame_recovers_the_preceding_prefix() {
    let sc = schema();
    let phis = phis(&sc);
    let txs = script(&sc);
    let path = temp_path("corrupt");
    let bytes = record_session(&path, &sc, &phis);
    let boundaries = frame_boundaries(&bytes);

    for j in 1..boundaries.len() {
        let (start, end) = (boundaries[j - 1], boundaries[j]);
        let mid = (start + end) / 2;
        let mut mutated = bytes.clone();
        mutated[mid] ^= 0x41;
        std::fs::write(&path, &mutated).unwrap();
        let (restored, report) = Engine::open(&path, sc.clone(), CheckOptions::default()).unwrap();
        let intact = j - 1; // frames before the corrupted one
        if intact == 0 {
            assert!(!report.had_snapshot, "frame {j}");
            continue;
        }
        let k = intact - 1;
        assert_eq!(report.replayed_txs, k as u64, "frame {j}");
        assert!(report.truncated_bytes > 0, "frame {j}");
        let expected = twin(&sc, &phis, &txs, k);
        let ids: Vec<ConstraintId> = expected.constraints().collect();
        assert_matches_twin(&format!("frame {j}"), &restored, &expected, &ids);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupting_every_byte_never_panics_and_yields_a_prefix() {
    let sc = schema();
    let phis = phis(&sc);
    // Small session to keep the byte sweep fast.
    let path = temp_path("bytes");
    let _ = std::fs::remove_file(&path);
    let (mut e, _) = Engine::open(&path, sc.clone(), CheckOptions::default()).unwrap();
    register(&mut e, &phis[..1]);
    e.checkpoint(b"blob").unwrap();
    let sub = sc.pred("Sub").unwrap();
    e.append(&Transaction::new().insert(sub, vec![10])).unwrap();
    e.append(&Transaction::new().delete(sub, vec![10])).unwrap();
    drop(e);
    let bytes = std::fs::read(&path).unwrap();
    let full = twin(&sc, &phis[..1], &script(&sc), 0);

    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x55;
        std::fs::write(&path, &mutated).unwrap();
        match Engine::open(&path, sc.clone(), CheckOptions::default()) {
            Err(_) => {} // header damage or an undecodable snapshot: fine
            Ok((restored, _)) => {
                let len = restored.history().len();
                assert!(len <= 2, "byte {i}: recovered beyond the session");
                // Whatever survived is a true prefix of the session.
                for (t, state) in restored.history().states().iter().enumerate() {
                    let _ = (t, state); // states decoded without panic
                }
                if restored.constraints().count() > 0 {
                    let id = full.constraints().next().unwrap();
                    let _ = restored.status(id);
                }
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}
