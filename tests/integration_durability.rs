//! Durability equivalence — snapshot→restore and WAL replay must be
//! observationally *identical* to an engine that never went down.
//!
//! Theorem 4.1 is what makes this more than a serialization test: the
//! monitor's complete state is the current database plus bounded
//! per-constraint residues, so a snapshot captures everything and a
//! restore is `O(|snapshot|)`. The suite sweeps 120 randomized
//! staggered sessions (fresh elements mid-stream, deletions,
//! re-submissions) through three observers fed identical transactions:
//!
//! - **live** — one engine, never interrupted;
//! - **durable** — an engine writing a WAL + snapshots, killed after
//!   every few steps by dropping it and re-opening the store;
//! - **cold** — a fresh engine rebuilt from scratch at the end by
//!   re-registering the constraints and replaying every transaction.
//!
//! All three must agree on event streams, per-append statuses,
//! instantiation-level `GroundStats`, earliest-violation instants, and
//! trigger firings.

use std::sync::Arc;
use ticc::core::{
    earliest_violation, Action, CheckOptions, ConstraintId, Durability, Engine, MonitorEvent,
    Status, Trigger, TriggerEngine,
};
use ticc::fotl::parser::parse;
use ticc::fotl::Formula;
use ticc::tdb::rng::Rng;
use ticc::tdb::{Schema, Transaction, Value};

const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
const PAIR_ONCE: &str = "forall x y. G (Rep(x, y) -> X G !Rep(x, y))";
const CAP: &str = "G !Sub(999)";

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Rep", 2).build()
}

fn phis(sc: &Schema) -> Vec<Formula> {
    vec![
        parse(sc, ONCE_ONLY).unwrap(),
        parse(sc, PAIR_ONCE).unwrap(),
        parse(sc, CAP).unwrap(),
    ]
}

fn temp_store(tag: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ticc-durability-{tag}-{}-{seed}.wal",
        std::process::id()
    ))
}

/// Same staggered workload as the hot-path equivalence suite.
struct Driver {
    seen: Vec<Value>,
    sub_present: Vec<Value>,
    rep_present: Vec<(Value, Value)>,
    next_fresh: Value,
    max_elements: usize,
}

impl Driver {
    fn new(max_elements: usize) -> Self {
        Driver {
            seen: Vec::new(),
            sub_present: Vec::new(),
            rep_present: Vec::new(),
            next_fresh: 10,
            max_elements,
        }
    }

    fn pick(&mut self, rng: &mut Rng) -> Value {
        if self.seen.is_empty() || (self.seen.len() < self.max_elements && rng.gen_bool(0.3)) {
            let v = self.next_fresh;
            self.next_fresh += 1;
            self.seen.push(v);
            v
        } else {
            self.seen[rng.gen_range_usize(0..self.seen.len())]
        }
    }

    fn step(&mut self, sc: &Schema, rng: &mut Rng) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let rep = sc.pred("Rep").unwrap();
        let mut tx = Transaction::new();
        self.sub_present.retain(|&v| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(sub, vec![v]);
                false
            } else {
                true
            }
        });
        self.rep_present.retain(|&(a, b)| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(rep, vec![a, b]);
                false
            } else {
                true
            }
        });
        for _ in 0..rng.gen_range_usize(0..3) {
            let v = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(sub, vec![v]);
            if !self.sub_present.contains(&v) {
                self.sub_present.push(v);
            }
        }
        for _ in 0..rng.gen_range_usize(0..2) {
            let a = self.pick(rng);
            let b = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(rep, vec![a, b]);
            if !self.rep_present.contains(&(a, b)) {
                self.rep_present.push((a, b));
            }
        }
        tx
    }
}

fn register(engine: &mut Engine, phis: &[Formula]) -> Vec<ConstraintId> {
    phis.iter()
        .enumerate()
        .map(|(i, phi)| engine.add_constraint(format!("c{i}"), phi.clone()).unwrap())
        .collect()
}

fn assert_engines_agree(seed: u64, when: &str, a: &Engine, b: &Engine, ids: &[ConstraintId]) {
    assert_eq!(
        a.history().states(),
        b.history().states(),
        "seed {seed} {when}: histories diverge"
    );
    for id in ids {
        assert_eq!(
            a.status(*id),
            b.status(*id),
            "seed {seed} {when}: status diverges for {id:?}"
        );
        assert_eq!(
            a.context(*id).grounding().stats,
            b.context(*id).grounding().stats,
            "seed {seed} {when}: GroundStats diverge for {id:?}"
        );
        assert_eq!(
            a.context(*id).residue(),
            b.context(*id).residue(),
            "seed {seed} {when}: residues diverge for {id:?}"
        );
    }
}

#[test]
fn snapshot_restore_and_cold_replay_match_never_crashed_engine() {
    let sc = schema();
    let mut violating_runs = 0usize;
    let mut total_restarts = 0u64;
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0xd07a ^ seed);
        let phis = phis(&sc);
        let path = temp_store("equiv", seed);
        let _ = std::fs::remove_file(&path);

        let opts = CheckOptions::builder().durability(Durability::Wal).build();
        let mut live = Engine::new(sc.clone(), CheckOptions::default());
        let live_ids = register(&mut live, &phis);
        let (mut durable, report) = Engine::open(&path, sc.clone(), opts).unwrap();
        assert!(!report.had_snapshot, "seed {seed}: store must start fresh");
        let ids = register(&mut durable, &phis);
        assert_eq!(ids, live_ids);
        // Constraints become durable with the first checkpoint.
        durable.checkpoint(b"app").unwrap();

        let mut drv = Driver::new(6);
        let mut txs: Vec<Transaction> = Vec::new();
        let mut all_events: Vec<MonitorEvent> = Vec::new();
        let steps = rng.gen_range_usize(6..14);
        for step in 0..steps {
            let tx = drv.step(&sc, &mut rng);
            let ev_live = live.append(&tx).unwrap();
            let ev_dur = durable.append(&tx).unwrap();
            assert_eq!(
                ev_live, ev_dur,
                "seed {seed} step {step}: live vs durable events diverge"
            );
            all_events.extend(ev_live);
            txs.push(tx);

            // Crash-and-reopen mid-stream: drop the engine (its store
            // file keeps the WAL) and rebuild from disk. Occasionally
            // checkpoint or compact first, so restarts exercise both
            // snapshot+suffix and snapshot-only recovery.
            if rng.gen_bool(0.3) {
                if rng.gen_bool(0.3) {
                    durable.checkpoint(b"app").unwrap();
                } else if rng.gen_bool(0.2) {
                    durable.compact(b"app").unwrap();
                }
                drop(durable);
                let (reopened, report) = Engine::open(&path, sc.clone(), opts).unwrap();
                assert!(report.had_snapshot, "seed {seed} step {step}");
                assert_eq!(report.app, b"app", "seed {seed} step {step}");
                assert_eq!(report.truncated_bytes, 0, "seed {seed} step {step}");
                durable = reopened;
                total_restarts += 1;
                assert_engines_agree(seed, "after restart", &live, &durable, &ids);
            }
        }

        // Final restart: whatever the WAL holds now must reproduce the
        // live engine exactly.
        drop(durable);
        let (restored, _) = Engine::open(&path, sc.clone(), opts).unwrap();
        assert_engines_agree(seed, "final restore", &live, &restored, &ids);

        // Cold replay from scratch (no store): same statuses and
        // grounding statistics, the expensive O(t) baseline the
        // snapshot path must be equivalent to.
        let mut cold = Engine::new(sc.clone(), CheckOptions::default());
        let cold_ids = register(&mut cold, &phis);
        let mut cold_events: Vec<MonitorEvent> = Vec::new();
        for tx in &txs {
            cold_events.extend(cold.append(tx).unwrap());
        }
        assert_eq!(cold_events, all_events, "seed {seed}: cold replay events");
        assert_engines_agree(seed, "cold replay", &cold, &restored, &cold_ids);

        // Earliest-violation instants agree on the restored history.
        for phi in &phis {
            let a = earliest_violation(live.history(), phi, &CheckOptions::default()).unwrap();
            let b = earliest_violation(restored.history(), phi, &CheckOptions::default()).unwrap();
            assert_eq!(a, b, "seed {seed}: earliest violation diverges");
        }

        // Trigger firings agree on the restored history.
        if seed % 8 == 0 {
            let mut t_live = TriggerEngine::new(CheckOptions::default());
            let mut t_rest = TriggerEngine::new(CheckOptions::default());
            for te in [&mut t_live, &mut t_rest] {
                te.add(Trigger {
                    name: "resub".into(),
                    condition: parse(&sc, "F (Sub(x) & X F Sub(x))").unwrap(),
                    action: Action::Log,
                })
                .unwrap();
            }
            let f_live = t_live.evaluate(live.history()).unwrap();
            let f_rest = t_rest.evaluate(restored.history()).unwrap();
            assert_eq!(f_live, f_rest, "seed {seed}: trigger firings diverge");
        }

        if !all_events.is_empty() {
            violating_runs += 1;
        }
        let _ = std::fs::remove_file(&path);
    }
    assert!(
        violating_runs >= 20,
        "only {violating_runs}/120 runs violate"
    );
    assert!(total_restarts >= 60, "only {total_restarts} restarts");
}

#[test]
fn fsync_policy_and_off_policy_log_consistently() {
    let sc = schema();
    let phis = phis(&sc);
    let sub = sc.pred("Sub").unwrap();

    // WalFsync: everything acknowledged is on disk.
    let path = temp_store("fsync", 0);
    let _ = std::fs::remove_file(&path);
    let opts = CheckOptions::builder()
        .durability(Durability::WalFsync)
        .build();
    let (mut e, _) = Engine::open(&path, sc.clone(), opts).unwrap();
    register(&mut e, &phis);
    e.checkpoint(&[]).unwrap();
    e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
    let stats = e.stats();
    assert!(stats.store.fsyncs >= 2, "{:?}", stats.store);
    assert_eq!(stats.store.tx_frames, 1);
    drop(e);
    let (back, report) = Engine::open(&path, sc.clone(), opts).unwrap();
    assert_eq!(report.replayed_txs, 1);
    assert_eq!(back.history().len(), 1);
    let _ = std::fs::remove_file(&path);

    // Off: appends are not logged; only the snapshot survives.
    let path = temp_store("off", 0);
    let _ = std::fs::remove_file(&path);
    let opts = CheckOptions::builder().durability(Durability::Off).build();
    let (mut e, _) = Engine::open(&path, sc.clone(), opts).unwrap();
    register(&mut e, &phis);
    e.checkpoint(&[]).unwrap();
    e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
    assert_eq!(e.stats().store.tx_frames, 0);
    drop(e);
    let (back, report) = Engine::open(&path, sc.clone(), opts).unwrap();
    assert_eq!(report.replayed_txs, 0);
    assert_eq!(back.history().len(), 0, "unlogged appends are lost");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_without_store_errors() {
    let sc = schema();
    let mut e = Engine::new(sc, CheckOptions::default());
    assert!(matches!(
        e.checkpoint(&[]),
        Err(ticc::core::Error::Store(_))
    ));
    assert!(matches!(e.compact(&[]), Err(ticc::core::Error::Store(_))));
    assert!(e.store_stats().is_none());
}

#[test]
fn restored_statuses_include_violations_with_original_instants() {
    let sc = schema();
    let sub = sc.pred("Sub").unwrap();
    let path = temp_store("viol", 0);
    let _ = std::fs::remove_file(&path);
    let opts = CheckOptions::default();
    let (mut e, _) = Engine::open(&path, sc.clone(), opts).unwrap();
    let ids = register(&mut e, &phis(&sc));
    e.checkpoint(&[]).unwrap();
    e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
    // Sub(1) persists → once-only violated at instant 2.
    let ev = e.append(&Transaction::new()).unwrap();
    assert_eq!(ev.len(), 1);
    assert_eq!(e.status(ids[0]), Status::Violated { at: 2 });
    e.checkpoint(&[]).unwrap();
    drop(e);
    let (back, report) = Engine::open(&path, sc.clone(), opts).unwrap();
    assert!(report.had_snapshot);
    assert_eq!(report.replayed_txs, 0, "checkpoint clears the suffix");
    assert_eq!(
        back.status(ids[0]),
        Status::Violated { at: 2 },
        "the violation instant survives the restart"
    );
    let _ = std::fs::remove_file(&path);
}
