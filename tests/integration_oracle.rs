//! End-to-end oracle tests: the full Theorem 4.2 pipeline (ground →
//! progress → Büchi satisfiability) must agree with hand-coded,
//! first-principles violation detectors on randomized workloads.
//!
//! For the paper's two example constraints the semantics is simple
//! enough to decide directly from the event log:
//! * once-only is violated iff some order has `Sub` events at two
//!   distinct instants;
//! * FIFO is violated iff there are orders `x ≠ y` with
//!   `sub(x) < sub(y)` (and `x` unfilled throughout `[sub(x), sub(y)]`)
//!   and `y` filled at a time where `x` is still unfilled.

use ticc::core::{check_potential_satisfaction, CheckOptions};
use ticc::fotl::parser::parse;
use ticc::tdb::workload::OrderWorkload;
use ticc::tdb::History;

const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
const FIFO: &str = "forall x y. G !(x != y & Sub(x) & \
                   ((!Fill(x)) U (Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))";

/// Event view of an order history: (instant, order) pairs.
fn events(h: &History, pred: &str) -> Vec<(usize, u64)> {
    let p = h.schema().pred(pred).unwrap();
    let mut out = Vec::new();
    for (t, s) in h.states().iter().enumerate() {
        for tuple in s.relation(p).iter() {
            out.push((t, tuple[0]));
        }
    }
    out
}

/// Direct decision of once-only.
fn once_only_violated(h: &History) -> bool {
    let subs = events(h, "Sub");
    subs.iter()
        .any(|&(t1, x)| subs.iter().any(|&(t2, y)| x == y && t2 > t1))
}

/// Direct decision of the FIFO formula, following its quantifier
/// structure literally: exists x ≠ y and an instant t with Sub(x)@t,
/// an instant s ≥ t with Sub(y)@s and ¬Fill(x) on [t, s], and an
/// instant u ≥ s with Fill(y)@u ∧ ¬Fill(x) and ¬Fill(x) on [s, u].
fn fifo_violated(h: &History) -> bool {
    let sub = h.schema().pred("Sub").unwrap();
    let fill = h.schema().pred("Fill").unwrap();
    let n = h.len();
    let holds = |p, t: usize, v: u64| h.state(t).holds(p, &[v]);
    let orders: Vec<u64> = h.relevant().into_iter().collect();
    for &x in &orders {
        for &y in &orders {
            if x == y {
                continue;
            }
            for t in 0..n {
                if !holds(sub, t, x) {
                    continue;
                }
                for s in t..n {
                    if (t..=s).any(|u| holds(fill, u, x)) {
                        break;
                    }
                    if !holds(sub, s, y) {
                        continue;
                    }
                    for u in s..n {
                        if (s..=u).any(|w| holds(fill, w, x)) {
                            break;
                        }
                        if holds(fill, u, y) && !holds(fill, u, x) {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

#[test]
fn pipeline_agrees_with_direct_once_only_oracle() {
    let sc = OrderWorkload::schema();
    let phi = parse(&sc, ONCE_ONLY).unwrap();
    let mut checked_violations = 0;
    for seed in 0..30u64 {
        let h = OrderWorkload {
            instants: 8,
            submit_prob: 0.7,
            fill_prob: 0.4,
            violation: if seed % 3 == 0 {
                Some((ticc::tdb::workload::OrderViolation::DoubleSubmit, 5))
            } else {
                None
            },
            seed,
        }
        .generate();
        let expected = once_only_violated(&h);
        let got = !check_potential_satisfaction(&h, &phi, &CheckOptions::default())
            .unwrap()
            .potentially_satisfied;
        assert_eq!(got, expected, "seed {seed}");
        checked_violations += usize::from(expected);
    }
    assert!(checked_violations > 0, "test must exercise both verdicts");
}

#[test]
fn pipeline_agrees_with_direct_fifo_oracle() {
    let sc = OrderWorkload::schema();
    let phi = parse(&sc, FIFO).unwrap();
    let mut violated_count = 0;
    for seed in 0..20u64 {
        let h = OrderWorkload {
            instants: 7,
            submit_prob: 0.8,
            fill_prob: 0.3,
            violation: if seed % 2 == 0 {
                Some((ticc::tdb::workload::OrderViolation::OutOfOrderFill, 4))
            } else {
                None
            },
            seed,
        }
        .generate();
        let expected = fifo_violated(&h);
        let got = !check_potential_satisfaction(&h, &phi, &CheckOptions::default())
            .unwrap()
            .potentially_satisfied;
        assert_eq!(
            got,
            expected,
            "seed {seed}: {:?}",
            h.states().iter().map(|s| s.display()).collect::<Vec<_>>()
        );
        violated_count += usize::from(expected);
    }
    assert!(violated_count > 0, "test must exercise both verdicts");
}

#[test]
fn prefix_monotonicity_of_violations() {
    // Safety: once a prefix is violated, every longer prefix is too.
    let sc = OrderWorkload::schema();
    let phi = parse(&sc, ONCE_ONLY).unwrap();
    let h = OrderWorkload {
        instants: 10,
        submit_prob: 0.9,
        fill_prob: 0.2,
        violation: Some((ticc::tdb::workload::OrderViolation::DoubleSubmit, 4)),
        seed: 11,
    }
    .generate();
    let mut seen_violation = false;
    for n in 1..=h.len() {
        let p = h.prefix(n);
        let sat = check_potential_satisfaction(&p, &phi, &CheckOptions::default())
            .unwrap()
            .potentially_satisfied;
        if seen_violation {
            assert!(!sat, "violations are permanent (prefix length {n})");
        }
        if !sat {
            seen_violation = true;
        }
    }
    assert!(seen_violation);
}
