//! Parallel determinism — `Threads::Off` vs `Threads::Fixed(4)` must be
//! observationally *identical*, not merely equivalent.
//!
//! The parallel layer shards work at two points: grounding partitions
//! the `|M|^k` instantiation space into per-worker chunks whose
//! letter keys are sealed into the arena in sorted order, and
//! `Engine::append`/`append_batch` dispatch the registered
//! constraints to a persistent worker pool, merging events in
//! `ConstraintId` order. Both merges are designed so interning,
//! formula structure, statuses, and event streams come out
//! bit-identical to the sequential path. This suite
//! sweeps randomized staggered sessions (fresh elements arriving
//! mid-stream, deletions, re-submissions) over ≥100 seeds and asserts
//! exactly that, including the instantiation-level [`GroundStats`] and
//! the earliest-violation instants, plus the trigger engine's fired
//! lists under the same two policies.

use std::sync::Arc;
use ticc::core::{
    earliest_violation, Action, CheckOptions, ConstraintId, Engine, Threads, Trigger, TriggerEngine,
};
use ticc::fotl::parser::parse;
use ticc::tdb::rng::Rng;
use ticc::tdb::{History, Schema, Transaction, Value};

/// k = 1: the paper's once-only constraint.
const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
/// k = 2: once-only per pair, so the instantiation space is `|M|^2`
/// and the sharded grounding path engages as soon as `|R_D| ≥ 1`.
const PAIR_ONCE: &str = "forall x y. G (Rep(x, y) -> X G !Rep(x, y))";
/// k = 0: never violated here (elements stay far below 999), which
/// keeps at least two constraints live so appends keep fanning out.
const CAP: &str = "G !Sub(999)";

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Rep", 2).build()
}

fn opts(threads: Threads) -> CheckOptions {
    CheckOptions::builder().threads(threads).build()
}

/// Random staggered workload: fresh elements arrive mid-stream,
/// present facts may be deleted, old elements may be re-submitted.
/// Both engines always see the identical transaction.
struct Driver {
    seen: Vec<Value>,
    sub_present: Vec<Value>,
    rep_present: Vec<(Value, Value)>,
    next_fresh: Value,
    max_elements: usize,
}

impl Driver {
    fn new(max_elements: usize) -> Self {
        Driver {
            seen: Vec::new(),
            sub_present: Vec::new(),
            rep_present: Vec::new(),
            next_fresh: 10,
            max_elements,
        }
    }

    fn pick(&mut self, rng: &mut Rng) -> Value {
        if self.seen.is_empty() || (self.seen.len() < self.max_elements && rng.gen_bool(0.4)) {
            let v = self.next_fresh;
            self.next_fresh += 1;
            self.seen.push(v);
            v
        } else {
            self.seen[rng.gen_range_usize(0..self.seen.len())]
        }
    }

    fn step(&mut self, sc: &Schema, rng: &mut Rng) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let rep = sc.pred("Rep").unwrap();
        let mut tx = Transaction::new();
        self.sub_present.retain(|&v| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(sub, vec![v]);
                false
            } else {
                true
            }
        });
        self.rep_present.retain(|&(a, b)| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(rep, vec![a, b]);
                false
            } else {
                true
            }
        });
        for _ in 0..rng.gen_range_usize(0..3) {
            let v = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(sub, vec![v]);
            if !self.sub_present.contains(&v) {
                self.sub_present.push(v);
            }
        }
        for _ in 0..rng.gen_range_usize(0..2) {
            let a = self.pick(rng);
            let b = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(rep, vec![a, b]);
            if !self.rep_present.contains(&(a, b)) {
                self.rep_present.push((a, b));
            }
        }
        tx
    }
}

#[test]
fn off_and_fixed4_agree_on_randomized_sessions() {
    let sc = schema();
    let mut fanned_out = 0usize;
    let mut sharded = 0usize;
    let mut violating_runs = 0usize;
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0x9a41 ^ seed);
        let phis = [
            parse(&sc, ONCE_ONLY).unwrap(),
            parse(&sc, PAIR_ONCE).unwrap(),
            parse(&sc, CAP).unwrap(),
        ];
        let mut off = Engine::new(sc.clone(), opts(Threads::Off));
        let mut par = Engine::new(sc.clone(), opts(Threads::Fixed(4)));
        let mut ids: Vec<ConstraintId> = Vec::new();
        for (i, phi) in phis.iter().enumerate() {
            let a = off.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let b = par.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            assert_eq!(a, b, "constraint ids must assign identically");
            ids.push(a);
        }

        let mut drv = Driver::new(8);
        let mut events = 0usize;
        for _ in 0..rng.gen_range_usize(4..9) {
            let tx = drv.step(&sc, &mut rng);
            let ev_off = off.append(&tx).unwrap();
            let ev_par = par.append(&tx).unwrap();
            assert_eq!(ev_off, ev_par, "seed {seed}: event streams diverge");
            events += ev_off.len();
            for id in &ids {
                assert_eq!(
                    off.status(*id),
                    par.status(*id),
                    "seed {seed}: status diverges"
                );
            }
        }
        if events > 0 {
            violating_runs += 1;
        }

        // The groundings themselves must be bit-identical: same |M|,
        // same instantiation counts, same letter and node totals —
        // chunk-ordered intern replay reproduces the sequential arena.
        for id in &ids {
            assert_eq!(
                off.context(*id).grounding().stats,
                par.context(*id).grounding().stats,
                "seed {seed}: GroundStats diverge for {id:?}"
            );
        }

        // Every semantic counter agrees; only the par_* gauges differ.
        let so = off.stats();
        let sp = par.stats();
        assert_eq!(so.appends, sp.appends, "seed {seed}");
        assert_eq!(so.grounds, sp.grounds, "seed {seed}");
        assert_eq!(so.regrounds, sp.regrounds, "seed {seed}");
        assert_eq!(so.delta_grounds, sp.delta_grounds, "seed {seed}");
        assert_eq!(so.fast_appends, sp.fast_appends, "seed {seed}");
        assert_eq!(so.sat_checks, sp.sat_checks, "seed {seed}");
        assert_eq!(so.par_phases, 0, "seed {seed}: Off must never fan out");

        // Earliest-violation instants agree under both policies.
        for phi in &phis {
            let a = earliest_violation(off.history(), phi, &opts(Threads::Off)).unwrap();
            let b = earliest_violation(par.history(), phi, &opts(Threads::Fixed(4))).unwrap();
            assert_eq!(a, b, "seed {seed}: earliest violation diverges");
        }

        if sp.par_phases > 0 {
            fanned_out += 1;
        }
        if sp.par_workers >= 2 {
            sharded += 1;
        }
    }
    // The sweep must actually exercise the parallel machinery and
    // produce real violations, or the equalities above are vacuous.
    assert!(fanned_out >= 100, "only {fanned_out}/120 runs fanned out");
    assert!(
        sharded >= 100,
        "only {sharded}/120 runs used multiple workers"
    );
    assert!(
        violating_runs >= 20,
        "only {violating_runs}/120 runs violate"
    );
}

#[test]
fn append_batch_agrees_with_serial_appends_off_vs_fixed4() {
    // The batched path must be a pure refactoring of the per-tx path:
    // chopping one transaction stream into arbitrary batches — swept
    // sequentially or by the persistent worker pool — yields the same
    // per-tx event streams, statuses, groundings, and semantic
    // counters as appending one at a time with `Threads::Off`.
    let sc = schema();
    let mut pooled = 0usize;
    let mut multi_tx_batches = 0usize;
    let mut violating_runs = 0usize;
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0x51c7 ^ seed);
        let phis = [
            parse(&sc, ONCE_ONLY).unwrap(),
            parse(&sc, PAIR_ONCE).unwrap(),
            parse(&sc, CAP).unwrap(),
        ];
        let mut serial = Engine::new(sc.clone(), opts(Threads::Off));
        let mut batch_off = Engine::new(sc.clone(), opts(Threads::Off));
        let mut batch_par = Engine::new(sc.clone(), opts(Threads::Fixed(4)));
        let mut ids: Vec<ConstraintId> = Vec::new();
        for (i, phi) in phis.iter().enumerate() {
            let a = serial.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let b = batch_off
                .add_constraint(format!("c{i}"), phi.clone())
                .unwrap();
            let c = batch_par
                .add_constraint(format!("c{i}"), phi.clone())
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
            ids.push(a);
        }

        // One transaction stream, three consumers.
        let mut drv = Driver::new(8);
        let total = rng.gen_range_usize(5..12);
        let txs: Vec<Transaction> = (0..total).map(|_| drv.step(&sc, &mut rng)).collect();

        let mut serial_events = Vec::with_capacity(total);
        for tx in &txs {
            serial_events.push(serial.append(tx).unwrap());
        }
        if serial_events.iter().any(|ev| !ev.is_empty()) {
            violating_runs += 1;
        }

        // Chop the same stream into random batches (sizes 1–3).
        let mut i = 0;
        while i < txs.len() {
            let n = rng.gen_range_usize(1..4).min(txs.len() - i);
            if n > 1 {
                multi_tx_batches += 1;
            }
            let chunk = &txs[i..i + n];
            let ev_off = batch_off.append_batch(chunk).unwrap();
            let ev_par = batch_par.append_batch(chunk).unwrap();
            assert_eq!(ev_off, ev_par, "seed {seed}: batched Off vs Fixed(4)");
            assert_eq!(
                &serial_events[i..i + n],
                ev_off.as_slice(),
                "seed {seed}: batch at {i} diverges from serial appends"
            );
            i += n;
        }

        for id in &ids {
            assert_eq!(serial.status(*id), batch_off.status(*id), "seed {seed}");
            assert_eq!(serial.status(*id), batch_par.status(*id), "seed {seed}");
            assert_eq!(
                serial.context(*id).grounding().stats,
                batch_par.context(*id).grounding().stats,
                "seed {seed}: GroundStats diverge for {id:?}"
            );
        }

        let ss = serial.stats();
        let so = batch_off.stats();
        let sp = batch_par.stats();
        for (label, s) in [("batched Off", &so), ("batched Fixed(4)", &sp)] {
            assert_eq!(ss.appends, s.appends, "seed {seed}: {label}");
            assert_eq!(ss.grounds, s.grounds, "seed {seed}: {label}");
            assert_eq!(ss.regrounds, s.regrounds, "seed {seed}: {label}");
            assert_eq!(ss.delta_grounds, s.delta_grounds, "seed {seed}: {label}");
            assert_eq!(ss.fast_appends, s.fast_appends, "seed {seed}: {label}");
            assert_eq!(ss.sat_checks, s.sat_checks, "seed {seed}: {label}");
        }
        assert_eq!(ss.batches, 0, "seed {seed}: serial path never batches");
        assert_eq!(so.batches, sp.batches, "seed {seed}");
        assert_eq!(so.batched_txs, sp.batched_txs, "seed {seed}");
        if sp.pool_workers >= 2 {
            pooled += 1;
        }
    }
    // The sweep must actually exercise the pool and multi-tx batches,
    // or the equalities above are vacuous.
    assert!(pooled >= 100, "only {pooled}/120 runs created the pool");
    assert!(
        multi_tx_batches >= 100,
        "only {multi_tx_batches} multi-tx batches across the sweep"
    );
    assert!(
        violating_runs >= 20,
        "only {violating_runs}/120 runs violate"
    );
}

#[test]
fn trigger_engine_agrees_off_vs_fixed4() {
    let sc = schema();
    for seed in 0..25u64 {
        let mut rng = Rng::seed_from_u64(0x7219 ^ seed);
        let mut off = TriggerEngine::new(opts(Threads::Off));
        let mut par = TriggerEngine::new(opts(Threads::Fixed(4)));
        for (i, cond) in ["F (Sub(x) & X F Sub(x))", "F Rep(x, y)"]
            .iter()
            .enumerate()
        {
            let c = parse(&sc, cond).unwrap();
            off.add(Trigger {
                name: format!("t{i}"),
                condition: c.clone(),
                action: Action::Log,
            })
            .unwrap();
            par.add(Trigger {
                name: format!("t{i}"),
                condition: c,
                action: Action::Log,
            })
            .unwrap();
        }

        let mut h = History::new(sc.clone());
        let mut drv = Driver::new(5);
        let mut fired_total = 0usize;
        for _ in 0..4 {
            let tx = drv.step(&sc, &mut rng);
            h.apply(&tx).unwrap();
            let f_off = off.evaluate(&h).unwrap();
            let f_par = par.evaluate(&h).unwrap();
            assert_eq!(f_off, f_par, "seed {seed}: fired lists diverge");
            fired_total += f_off.len();
        }
        let _ = fired_total;

        let so = off.stats();
        let sp = par.stats();
        assert_eq!(so.grounds, sp.grounds, "seed {seed}");
        assert_eq!(so.sat_checks, sp.sat_checks, "seed {seed}");
    }
}
