//! The Section 4 example: a universal formula with arbitrarily large
//! finite-universe models but no model with an infinite universe — the
//! reason Lemma 4.1 insists on infinite universes, and the safety
//! requirement's raison d'être.
//!
//! The formula (paper, Section 4): `W1 ∧ W4 ∧ Q1 ∧ Q4 ∧ (x ≤_Q y ⇒
//! y ≤_W x)` forces a `W`-increasing enumeration of the whole universe
//! and a `Q`-enumeration in exactly the reverse order. Every finite
//! universe admits such a pair; an infinite (ω) universe does not (the
//! reverse of an ω-order is not an ω-order).

use ticc::fotl::classify::{classify, is_syntactically_safe, FormulaClass};
use ticc::fotl::eval::{eval_closed, EvalOptions, UniverseSpec};
use ticc::fotl::{Formula, Term};
use ticc::tdb::{History, Schema, State};

fn w1_like(schema: &Schema, pred: &str) -> Formula {
    // ∀x∀y □((P(x) ∧ P(y)) → x = y)
    let p = schema.pred(pred).unwrap();
    let at = |v: &str| Formula::pred(p, vec![Term::var(v)]);
    Formula::forall_many(
        ["x", "y"],
        at("x")
            .and(at("y"))
            .implies(Formula::eq(Term::var("x"), Term::var("y")))
            .always(),
    )
}

fn w4_like(schema: &Schema, pred: &str) -> Formula {
    // ∀x ((¬P(x)) U (P(x) ∧ ○□¬P(x))): every element is P exactly once.
    let p = schema.pred(pred).unwrap();
    let at = |v: &str| Formula::pred(p, vec![Term::var(v)]);
    Formula::forall(
        "x",
        at("x")
            .not()
            .until(at("x").and(at("x").not().always().next())),
    )
}

fn leq_via(schema: &Schema, pred: &str, x: &str, y: &str) -> Formula {
    // x ≤_P y ≡ ◇(P(x) ∧ ◇P(y))
    let p = schema.pred(pred).unwrap();
    let at = |v: &str| Formula::pred(p, vec![Term::var(v)]);
    at(x).and(at(y).eventually()).eventually()
}

fn the_example(schema: &Schema) -> Formula {
    // Re-prenex the conjunction under one shared ∀x∀y prefix so the
    // formula is literally universal (conjunction commutes with ∀).
    let strip = |f: &Formula| {
        let (_, body) = ticc::fotl::classify::external_prefix(f);
        body.clone()
    };
    let inverse = leq_via(schema, "Q", "x", "y").implies(leq_via(schema, "W", "y", "x"));
    Formula::forall_many(
        ["x", "y"],
        Formula::and_all([
            strip(&w1_like(schema, "W")),
            strip(&w4_like(schema, "W")),
            strip(&w1_like(schema, "Q")),
            strip(&w4_like(schema, "Q")),
            inverse,
        ]),
    )
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::builder().pred("W", 1).pred("Q", 1).build()
}

/// The model with universe `{0, …, n-1}`: `W` enumerates upward, `Q`
/// downward, then all states are empty.
fn finite_model(schema: &std::sync::Arc<Schema>, n: u64, trailing: usize) -> History {
    let mut h = History::new(schema.clone());
    for t in 0..n {
        let mut s = State::empty(schema.clone());
        s.insert_named("W", vec![t]).unwrap();
        s.insert_named("Q", vec![n - 1 - t]).unwrap();
        h.push_state(s);
    }
    for _ in 0..trailing {
        h.push_empty();
    }
    h
}

#[test]
fn the_example_is_universal_but_not_syntactically_safe() {
    let sc = schema();
    let f = the_example(&sc);
    assert!(matches!(classify(&f), FormulaClass::Universal { .. }));
    // W4 contains a positive until: a liveness obligation. This is what
    // locks such formulas out of the Theorem 4.2 pipeline's guarantees.
    assert!(!is_syntactically_safe(&f));
}

#[test]
fn finite_universes_of_every_size_admit_models() {
    let sc = schema();
    let f = the_example(&sc);
    for n in 1..=5u64 {
        let h = finite_model(&sc, n, 2);
        let opts = EvalOptions {
            universe: UniverseSpec::Bounded(n),
        };
        assert!(
            eval_closed(&h, &f, &opts).unwrap(),
            "universe of size {n} must model the formula"
        );
    }
}

#[test]
fn larger_universe_than_enumerated_breaks_w4() {
    // With one extra element beyond the enumeration, W4 fails: that
    // element is never W.
    let sc = schema();
    let f = the_example(&sc);
    let h = finite_model(&sc, 3, 2);
    let opts = EvalOptions {
        universe: UniverseSpec::Bounded(4),
    };
    assert!(!eval_closed(&h, &f, &opts).unwrap());
}

#[test]
fn non_safety_universal_sentences_are_outside_the_guarantee() {
    // ∀x ◇P(x) is a liveness formula: over the infinite universe it IS
    // satisfiable (enumerate the universe over infinite time), but the
    // grounding of Theorem 4.1 — sound only for safety sentences, as the
    // paper stresses after Lemma 4.1 — folds the fresh-element instance
    // to ⊥. The implementation documents this: the check still runs, the
    // verdict is the safety-approximation, and `syntactically_safe`
    // flags the caveat.
    let sc = Schema::builder().pred("P", 1).build();
    let p = sc.pred("P").unwrap();
    let f = Formula::forall("x", Formula::pred(p, vec![Term::var("x")]).eventually());
    assert!(matches!(classify(&f), FormulaClass::Universal { .. }));
    assert!(!is_syntactically_safe(&f));

    let h = History::new(sc.clone());
    let out =
        ticc::core::check_potential_satisfaction(&h, &f, &ticc::core::CheckOptions::default())
            .unwrap();
    assert!(!out.stats.syntactically_safe, "the caveat must be surfaced");
    // The safety-approximate verdict: no extension touching only
    // relevant elements satisfies ∀x◇P(x) (fresh elements can never be
    // covered), hence "not potentially satisfied" — exactly the
    // behaviour the paper's restriction to safety formulas forestalls.
    assert!(!out.potentially_satisfied);
}

#[test]
fn safety_counterpart_is_handled_correctly() {
    // The safety shape ∀x □¬P(x) over an empty history: satisfiable
    // (keep everything empty), and the checker says so.
    let sc = Schema::builder().pred("P", 1).build();
    let p = sc.pred("P").unwrap();
    let f = Formula::forall("x", Formula::pred(p, vec![Term::var("x")]).not().always());
    assert!(is_syntactically_safe(&f));
    let h = History::new(sc.clone());
    let out =
        ticc::core::check_potential_satisfaction(&h, &f, &ticc::core::CheckOptions::default())
            .unwrap();
    assert!(out.potentially_satisfied);
}
