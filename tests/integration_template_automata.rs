//! Compiled template automata — u32-state stepping through shared
//! explicit machines must be observationally *identical* to symbolic
//! progression, not merely equivalent.
//!
//! The compiled configuration (the default) subset-constructs each
//! residue's progression graph over support-restricted valuations at
//! build time, hash-conses isomorphic residues onto one template
//! machine, and thereafter advances every instantiation by a dense
//! table lookup with the phase-2 verdict precomputed per state. Both
//! halves are pure shortcuts: the automaton state must denote exactly
//! the residue progression would compute, and the per-state verdict
//! must equal what phase 2 would decide. This suite sweeps 120
//! randomized staggered sessions (fresh elements arriving mid-stream —
//! so delta re-grounding binds new units into live compiled sets —
//! plus deletions and re-submissions) through three engines fed
//! identical transactions:
//!
//! - **compiled** — template automata on (the default),
//! - **symbolic** — `template_automata(false)` (the ablation),
//! - **compiled ∥ 4** — the compiled configuration under
//!   `Threads::Fixed(4)`,
//!
//! and asserts bit-identical event streams, per-append statuses,
//! instantiation-level [`GroundStats`], earliest-violation instants,
//! and trigger firings — plus non-vacuity: the sweep must actually
//! take automaton appends and produce real violations. Directed cases
//! pin down template sharing (`templates_compiled < instantiations`),
//! the state-budget fallback, decompilation when a delta block's
//! support overlaps a bound unit, and snapshot round-trip lockstep.

use std::sync::Arc;
use ticc::core::{
    earliest_violation, Action, CheckOptions, ConstraintId, Engine, Threads, Trigger, TriggerEngine,
};
use ticc::fotl::parser::parse;
use ticc::tdb::rng::Rng;
use ticc::tdb::{History, Schema, Transaction, Value};

/// k = 1: the paper's once-only constraint.
const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
/// k = 2: once-only per pair (instantiation space `|M|^2`).
const PAIR_ONCE: &str = "forall x y. G (Rep(x, y) -> X G !Rep(x, y))";
/// k = 0: never violated here (elements stay far below 999), so at
/// least one constraint stays live all session — its single-unit
/// automaton goes dormant, which is exactly the steady state the
/// active-set bookkeeping exists for.
const CAP: &str = "G !Sub(999)";

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Rep", 2).build()
}

fn compiled_opts(threads: Threads) -> CheckOptions {
    CheckOptions::builder().threads(threads).build()
}

fn symbolic_opts() -> CheckOptions {
    CheckOptions::builder().template_automata(false).build()
}

/// Random staggered workload: fresh elements arrive mid-stream,
/// present facts may be deleted, old elements may be re-submitted.
/// Every engine always sees the identical transaction.
struct Driver {
    seen: Vec<Value>,
    sub_present: Vec<Value>,
    rep_present: Vec<(Value, Value)>,
    next_fresh: Value,
    max_elements: usize,
}

impl Driver {
    fn new(max_elements: usize) -> Self {
        Driver {
            seen: Vec::new(),
            sub_present: Vec::new(),
            rep_present: Vec::new(),
            next_fresh: 10,
            max_elements,
        }
    }

    fn pick(&mut self, rng: &mut Rng) -> Value {
        if self.seen.is_empty() || (self.seen.len() < self.max_elements && rng.gen_bool(0.3)) {
            let v = self.next_fresh;
            self.next_fresh += 1;
            self.seen.push(v);
            v
        } else {
            self.seen[rng.gen_range_usize(0..self.seen.len())]
        }
    }

    fn step(&mut self, sc: &Schema, rng: &mut Rng) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let rep = sc.pred("Rep").unwrap();
        let mut tx = Transaction::new();
        self.sub_present.retain(|&v| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(sub, vec![v]);
                false
            } else {
                true
            }
        });
        self.rep_present.retain(|&(a, b)| {
            if rng.gen_bool(0.4) {
                tx = std::mem::take(&mut tx).delete(rep, vec![a, b]);
                false
            } else {
                true
            }
        });
        for _ in 0..rng.gen_range_usize(0..3) {
            let v = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(sub, vec![v]);
            if !self.sub_present.contains(&v) {
                self.sub_present.push(v);
            }
        }
        for _ in 0..rng.gen_range_usize(0..2) {
            let a = self.pick(rng);
            let b = self.pick(rng);
            tx = std::mem::take(&mut tx).insert(rep, vec![a, b]);
            if !self.rep_present.contains(&(a, b)) {
                self.rep_present.push((a, b));
            }
        }
        tx
    }
}

#[test]
fn compiled_and_symbolic_agree_on_randomized_sessions() {
    let sc = schema();
    let mut total_auto_appends = 0u64;
    let mut total_auto_steps = 0u64;
    let mut violating_runs = 0usize;
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0xe16a ^ seed);
        let phis = [
            parse(&sc, ONCE_ONLY).unwrap(),
            parse(&sc, PAIR_ONCE).unwrap(),
            parse(&sc, CAP).unwrap(),
        ];
        let mut auto = Engine::new(sc.clone(), compiled_opts(Threads::Off));
        let mut sym = Engine::new(sc.clone(), symbolic_opts());
        let mut par = Engine::new(sc.clone(), compiled_opts(Threads::Fixed(4)));
        let mut ids: Vec<ConstraintId> = Vec::new();
        for (i, phi) in phis.iter().enumerate() {
            let a = auto.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let b = sym.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            let c = par.add_constraint(format!("c{i}"), phi.clone()).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
            ids.push(a);
        }

        let mut drv = Driver::new(6);
        let mut events = 0usize;
        for step in 0..rng.gen_range_usize(6..14) {
            let tx = drv.step(&sc, &mut rng);
            let ev_auto = auto.append(&tx).unwrap();
            let ev_sym = sym.append(&tx).unwrap();
            let ev_par = par.append(&tx).unwrap();
            assert_eq!(
                ev_auto, ev_sym,
                "seed {seed} step {step}: compiled vs symbolic events diverge"
            );
            assert_eq!(
                ev_auto, ev_par,
                "seed {seed} step {step}: compiled vs compiled∥4 events diverge"
            );
            events += ev_auto.len();
            for id in &ids {
                assert_eq!(
                    auto.status(*id),
                    sym.status(*id),
                    "seed {seed} step {step}: status diverges"
                );
                assert_eq!(auto.status(*id), par.status(*id), "seed {seed} step {step}");
            }
        }
        if events > 0 {
            violating_runs += 1;
        }

        // The groundings must come out bit-identical: compiling the
        // residue never changes which letters and instantiations the
        // grounding interns.
        for id in &ids {
            assert_eq!(
                auto.context(*id).grounding().stats,
                sym.context(*id).grounding().stats,
                "seed {seed}: GroundStats diverge for {id:?}"
            );
            assert_eq!(
                auto.context(*id).grounding().stats,
                par.context(*id).grounding().stats,
                "seed {seed}: GroundStats diverge (parallel) for {id:?}"
            );
        }

        // Semantic counters agree wherever the configurations share
        // work; the automaton only ever *removes* work (progression,
        // phase 2) from the compiled side.
        let sa = auto.stats();
        let ss = sym.stats();
        let sp = par.stats();
        assert_eq!(sa.appends, ss.appends, "seed {seed}");
        assert_eq!(sa.grounds, ss.grounds, "seed {seed}");
        assert_eq!(sa.delta_grounds, ss.delta_grounds, "seed {seed}");
        assert_eq!(sa.fast_appends, ss.fast_appends, "seed {seed}");
        assert_eq!(sa.letters, ss.letters, "seed {seed}");
        assert_eq!(sa.mappings, ss.mappings, "seed {seed}");
        assert!(sa.sat_checks <= ss.sat_checks, "seed {seed}");
        assert_eq!(ss.automaton_appends, 0, "seed {seed}: ablation compiled");
        // The parallel compiled engine behaves exactly like the
        // sequential compiled engine, append for append, step for step.
        assert_eq!(sa.automaton_appends, sp.automaton_appends, "seed {seed}");
        assert_eq!(sa.automaton_steps, sp.automaton_steps, "seed {seed}");
        assert_eq!(
            sa.encode_patched_atoms, sp.encode_patched_atoms,
            "seed {seed}"
        );
        assert_eq!(sa.templates_compiled, sp.templates_compiled, "seed {seed}");
        total_auto_appends += sa.automaton_appends;
        total_auto_steps += sa.automaton_steps;

        // Earliest-violation instants agree under both configurations.
        for phi in &phis {
            let a = earliest_violation(auto.history(), phi, &compiled_opts(Threads::Off)).unwrap();
            let b = earliest_violation(sym.history(), phi, &symbolic_opts()).unwrap();
            assert_eq!(a, b, "seed {seed}: earliest violation diverges");
        }
    }
    // Non-vacuity: the sweep must exercise the compiled path it claims
    // to verify, and produce real violations.
    assert!(total_auto_appends > 0, "no automaton appends in the sweep");
    assert!(total_auto_steps > 0, "no automaton steps in the sweep");
    assert!(
        violating_runs >= 20,
        "only {violating_runs}/120 runs violate"
    );
}

#[test]
fn trigger_engine_agrees_compiled_vs_symbolic() {
    let sc = schema();
    for seed in 0..25u64 {
        let mut rng = Rng::seed_from_u64(0x7e41 ^ seed);
        let mut auto = TriggerEngine::new(compiled_opts(Threads::Off));
        let mut sym = TriggerEngine::new(symbolic_opts());
        for (i, cond) in ["F (Sub(x) & X F Sub(x))", "F Rep(x, y)"]
            .iter()
            .enumerate()
        {
            let c = parse(&sc, cond).unwrap();
            auto.add(Trigger {
                name: format!("t{i}"),
                condition: c.clone(),
                action: Action::Log,
            })
            .unwrap();
            sym.add(Trigger {
                name: format!("t{i}"),
                condition: c,
                action: Action::Log,
            })
            .unwrap();
        }

        let mut h = History::new(sc.clone());
        let mut drv = Driver::new(5);
        for _ in 0..4 {
            let tx = drv.step(&sc, &mut rng);
            h.apply(&tx).unwrap();
            let f_auto = auto.evaluate(&h).unwrap();
            let f_sym = sym.evaluate(&h).unwrap();
            assert_eq!(f_auto, f_sym, "seed {seed}: fired lists diverge");
        }

        let sa = auto.stats();
        let ss = sym.stats();
        assert_eq!(sa.grounds, ss.grounds, "seed {seed}");
    }
}

/// All instantiations of one constraint are isomorphic modulo letter
/// renaming, so they share one compiled machine: the template count
/// stays flat while the bound-instantiation count grows with `|M|`.
#[test]
fn isomorphic_instantiations_share_one_template() {
    let sc = schema();
    let sub = sc.pred("Sub").unwrap();
    let mut e = Engine::new(sc.clone(), CheckOptions::default());
    e.add_constraint("once", parse(&sc, ONCE_ONLY).unwrap())
        .unwrap();
    // Rotate: each element is submitted once and retracted before the
    // next arrives, so the constraint stays live while `|M|` grows.
    for v in 0..40u64 {
        let mut tx = Transaction::new().insert(sub, vec![1000 + v]);
        if v > 0 {
            tx = tx.delete(sub, vec![1000 + v - 1]);
        }
        e.append(&tx).unwrap();
    }
    let s = e.stats();
    assert!(s.automaton_insts >= 40, "{s:?}");
    assert!(
        s.templates_compiled < s.automaton_insts,
        "no sharing: {} templates for {} instantiations",
        s.templates_compiled,
        s.automaton_insts
    );
    assert!(s.templates_compiled <= 4, "{s:?}");
}

/// With a state budget too small for any machine the engine silently
/// stays symbolic — identical events, zero automaton appends.
#[test]
fn state_budget_fallback_is_equivalent() {
    let sc = schema();
    let mut rng = Rng::seed_from_u64(0xb4d6e7);
    let tiny = CheckOptions::builder().automaton_state_budget(1).build();
    let mut small = Engine::new(sc.clone(), tiny);
    let mut def = Engine::new(sc.clone(), CheckOptions::default());
    for (i, phi) in [ONCE_ONLY, PAIR_ONCE].iter().enumerate() {
        let p = parse(&sc, phi).unwrap();
        small.add_constraint(format!("c{i}"), p.clone()).unwrap();
        def.add_constraint(format!("c{i}"), p).unwrap();
    }
    let mut drv = Driver::new(5);
    for step in 0..10 {
        let tx = drv.step(&sc, &mut rng);
        let a = small.append(&tx).unwrap();
        let b = def.append(&tx).unwrap();
        assert_eq!(a, b, "step {step}: budget fallback diverges");
    }
    // No machine fits one state, so nothing compiles and no unit ever
    // steps. (An append may still be accounted to the compiled path
    // while the context holds the trivial pre-data empty set.)
    assert_eq!(small.stats().templates_compiled, 0);
    assert_eq!(small.stats().automaton_steps, 0);
}

/// A delta block whose support letters intersect an already-bound
/// unit's cannot bind (per-unit verdicts would stop composing), so the
/// context decompiles — and the reconstructed symbolic residue must
/// carry the exact state the automaton held.
#[test]
fn support_overlap_decompiles_and_stays_exact() {
    let sc = schema();
    let sub = sc.pred("Sub").unwrap();
    let rep = sc.pred("Rep").unwrap();
    // Instantiations (x, y) and (x, y') share the letter Sub(x).
    let phi = parse(&sc, "forall x y. G (Rep(x, y) -> X G !Sub(x))").unwrap();
    let mut auto = Engine::new(sc.clone(), CheckOptions::default());
    let mut sym = Engine::new(sc.clone(), symbolic_opts());
    let a = auto.add_constraint("guard", phi.clone()).unwrap();
    let b = sym.add_constraint("guard", phi).unwrap();
    assert_eq!(a, b);
    let txs = [
        Transaction::new().insert(rep, vec![1, 2]),
        // Second pair with the same x: the fresh unit's Sub(1) letter
        // collides with the bound one — decompile.
        Transaction::new().insert(rep, vec![1, 3]),
        // The violation must still land, now on the symbolic path.
        Transaction::new().insert(sub, vec![1]),
    ];
    for (step, tx) in txs.iter().enumerate() {
        let ea = auto.append(tx).unwrap();
        let es = sym.append(tx).unwrap();
        assert_eq!(ea, es, "step {step}: events diverge across decompile");
        assert_eq!(auto.status(a), sym.status(a), "step {step}");
    }
    assert!(matches!(
        auto.status(a),
        ticc::core::Status::Violated { .. }
    ));
    assert_eq!(
        auto.stats().templates_compiled,
        0,
        "context should have decompiled: {:?}",
        auto.stats()
    );
}

/// Snapshot round trip under the compiled default: the restored engine
/// resumes u32-state stepping and stays in lockstep with the writer.
#[test]
fn snapshot_roundtrip_stays_in_lockstep() {
    let sc = schema();
    let mut rng = Rng::seed_from_u64(0x54a9);
    let mut fwd = Engine::new(sc.clone(), CheckOptions::default());
    for (i, phi) in [ONCE_ONLY, PAIR_ONCE, CAP].iter().enumerate() {
        fwd.add_constraint(format!("c{i}"), parse(&sc, phi).unwrap())
            .unwrap();
    }
    let mut drv = Driver::new(6);
    for _ in 0..6 {
        fwd.append(&drv.step(&sc, &mut rng)).unwrap();
    }
    let bytes = fwd.snapshot_bytes(&[]);
    let (mut back, _) = Engine::restore_bytes(&bytes, CheckOptions::default()).unwrap();
    assert_eq!(
        fwd.stats().templates_compiled,
        back.stats().templates_compiled
    );
    assert!(back.stats().templates_compiled >= 1, "{:?}", back.stats());
    for step in 0..8 {
        let tx = drv.step(&sc, &mut rng);
        let a = fwd.append(&tx).unwrap();
        let b = back.append(&tx).unwrap();
        assert_eq!(a, b, "step {step}: restored engine diverges");
    }
    for id in fwd.constraints() {
        assert_eq!(fwd.status(id), back.status(id));
    }
    assert_eq!(
        fwd.stats().automaton_appends,
        back.stats().automaton_appends
    );
    assert_eq!(fwd.stats().automaton_steps, back.stats().automaton_steps);
}
