//! Quickstart: register the paper's "an order can be submitted only
//! once" constraint and watch the monitor catch a violation at the
//! earliest possible moment.
//!
//! Run with: `cargo run --example quickstart`

use ticc::prelude::*;

fn main() {
    // Vocabulary: Sub(x) — "order x was submitted at this instant",
    //             Fill(x) — "order x was filled at this instant".
    let schema = Schema::builder().pred("Sub", 1).pred("Fill", 1).build();
    let sub = schema.pred("Sub").unwrap();
    let fill = schema.pred("Fill").unwrap();

    // The paper's first example constraint (Section 2):
    //     ∀x □(Sub(x) ⇒ ○□¬Sub(x))
    let phi = parse(&schema, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
    println!("constraint: forall x. G (Sub(x) -> X G !Sub(x))");

    let mut monitor = Monitor::new(schema.clone(), CheckOptions::default());
    let id = monitor.add_constraint("submitted-once", phi).unwrap();

    // A little order-processing session. Each transaction produces the
    // next database state (events are cleared before the next instant).
    let steps: Vec<(&str, Transaction)> = vec![
        ("submit #1", Transaction::new().insert(sub, vec![1])),
        (
            "fill #1",
            Transaction::new()
                .delete(sub, vec![1])
                .insert(fill, vec![1]),
        ),
        (
            "submit #2",
            Transaction::new()
                .delete(fill, vec![1])
                .insert(sub, vec![2]),
        ),
        (
            "re-submit #1 (violation!)",
            Transaction::new().delete(sub, vec![2]).insert(sub, vec![1]),
        ),
        ("more work", Transaction::new().delete(sub, vec![1])),
    ];

    for (label, tx) in steps {
        let events = monitor.append(&tx).unwrap();
        let t = monitor.history().len() - 1;
        println!(
            "t={t}: {label:<28} state = {}",
            monitor.history().state(t).display()
        );
        for e in events {
            println!(
                "      *** constraint '{}' violated — no extension of the \
                 first {} states can satisfy it",
                e.name, e.at
            );
        }
    }

    match monitor.status(id) {
        Status::Violated { at } => {
            println!("\nfinal status: VIOLATED (unavoidable after {at} states)")
        }
        Status::Satisfied => println!("\nfinal status: potentially satisfied"),
    }
    let s = monitor.stats();
    println!(
        "monitor stats: {} fast appends, {} regrounds, {} sat checks ({} cached)",
        s.fast_appends, s.regrounds, s.sat_checks, s.sat_cache_hits
    );
}
