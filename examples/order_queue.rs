//! The paper's FIFO constraint on a generated customer-order workload.
//!
//! Section 2's second example: *"orders should be filled in the order
//! that they are submitted"*:
//!
//! ```text
//! ∀x∀y □¬( x ≠ y ∧ Sub(x) ∧
//!          ((¬Fill(x)) U (Sub(y) ∧ ((¬Fill(x)) U (Fill(y) ∧ ¬Fill(x))))) )
//! ```
//!
//! We generate a reproducible order stream, inject an out-of-order fill
//! halfway, and let the checker find the earliest violated prefix.
//!
//! Run with: `cargo run --example order_queue`

use ticc::prelude::{check_potential_satisfaction, earliest_violation, parse, CheckOptions};
use ticc::tdb::workload::{OrderViolation, OrderWorkload};

const FIFO: &str = "forall x y. G !(x != y & Sub(x) & \
                   ((!Fill(x)) U (Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))";

fn main() {
    let schema = OrderWorkload::schema();
    let phi = parse(&schema, FIFO).unwrap();
    println!("constraint: {FIFO}\n");

    // A clean FIFO workload.
    let clean = OrderWorkload {
        instants: 14,
        submit_prob: 0.7,
        fill_prob: 0.5,
        violation: None,
        seed: 42,
    }
    .generate();
    let out = check_potential_satisfaction(&clean, &phi, &CheckOptions::default()).unwrap();
    println!(
        "clean workload ({} states, {} relevant orders): potentially satisfied = {}",
        clean.len(),
        clean.relevant().len(),
        out.potentially_satisfied
    );
    println!(
        "  grounding: |M| = {}, {} instances, formula tree size {}",
        out.stats.ground.m_size, out.stats.ground.mappings, out.stats.ground.formula_tree_size
    );

    // Same stream with an out-of-order fill injected at instant 7.
    let dirty = OrderWorkload {
        instants: 14,
        submit_prob: 0.7,
        fill_prob: 0.5,
        violation: Some((OrderViolation::OutOfOrderFill, 7)),
        seed: 42,
    }
    .generate();
    for (t, s) in dirty.states().iter().enumerate() {
        println!("t={t:<2} {}", s.display());
    }
    let out = check_potential_satisfaction(&dirty, &phi, &CheckOptions::default()).unwrap();
    println!(
        "\ninjected out-of-order fill: potentially satisfied = {}",
        out.potentially_satisfied
    );
    if !out.potentially_satisfied {
        let at = earliest_violation(&dirty, &phi, &CheckOptions::default())
            .unwrap()
            .expect("violated overall, so some prefix is violated");
        println!(
            "earliest violated prefix: first {at} states \
             (the fill at t={} made the FIFO breach unavoidable)",
            at - 1
        );
    }
}
