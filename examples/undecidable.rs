//! The undecidable side: Section 3's Turing-machine constructions.
//!
//! For biquantified formulas with a single internal quantifier, the
//! extension problem is Π⁰₂-complete (Theorem 3.2). This example builds
//! the reduction formulas `φ` (extended vocabulary) and `φ̃` (monadic,
//! `∀³tense(Σ1)`) for machines from the zoo, shows that the decidable
//! pipeline rightly *refuses* them, model-checks bounded encodings, and
//! runs the Σ⁰₂ semi-decision procedure — the best any checker can do.
//!
//! Run with: `cargo run --example undecidable`

use ticc::core::{ground, GroundMode};
use ticc::fotl::classify::classify;
use ticc::fotl::eval::{eval_closed, EvalOptions, UniverseSpec};
use ticc::tm::bounded::{semi_decide_repeating, SemiDecision};
use ticc::tm::phi::{phi, phi_safety};
use ticc::tm::phi_tilde::{add_canonical_w, machine_schema_with_w, phi_tilde, phi_tilde_parts};
use ticc::tm::{encode_config, machine_schema, zoo};

fn main() {
    let machine = zoo::shuttle();
    println!("machine: {} (repeats for every input)\n", machine.name());

    // --- φ over the extended vocabulary (Proposition 3.1) ---
    let schema = machine_schema(&machine);
    let f = phi(&machine, &schema);
    println!("φ classification: {:?}", classify(&f));
    println!("φ tree size: {} nodes", f.size());

    // The decidable checker must refuse it: extended vocabulary.
    let mut h = ticc::tdb::History::new(schema.clone());
    let c0 = ticc::tm::Config::initial(&machine, &[true]);
    h.push_state(encode_config(&machine, &schema, &c0));
    match ground(&h, &f, GroundMode::Folded) {
        Err(e) => println!("Theorem 4.2 pipeline refuses φ: {e}"),
        Ok(_) => unreachable!("φ uses ≤/succ/Zero"),
    }

    // Bounded model checking: a valid 8-step run satisfies the safety
    // groups of φ.
    let (_, run_h, run) = ticc::tm::encode_run(&machine, &[true], 8);
    let safety = phi_safety(&machine, &schema);
    let opts = EvalOptions {
        universe: UniverseSpec::Bounded(6),
    };
    println!(
        "\n8-step encoded run: {} states, {} leftmost visits",
        run_h.len(),
        run.leftmost_visits
    );
    println!(
        "bounded check of φ's safety groups on the run: {}",
        eval_closed(&run_h, &safety, &opts).unwrap()
    );

    // --- φ̃ over monadic predicates only (Theorem 3.2) ---
    let schema_w = machine_schema_with_w(&machine);
    let ft = phi_tilde(&machine, &schema_w);
    println!("\nφ̃ classification: {:?}", classify(&ft));
    println!("φ̃ tree size: {} nodes (monadic vocabulary only)", ft.size());
    let (_, mut run_hw, _) = {
        let r = ticc::tm::machine::run(&machine, &[true], 6);
        let mut hh = ticc::tdb::History::new(schema_w.clone());
        for c in &r.configs {
            hh.push_state(encode_config(&machine, &schema_w, c));
        }
        ((), hh, ())
    };
    add_canonical_w(&mut run_hw);
    let parts = phi_tilde_parts(&machine, &schema_w);
    let opts_w = EvalOptions {
        universe: UniverseSpec::Bounded(8),
    };
    println!(
        "bounded check of φ̃'s W1/W2/W3 + safety on the W-annotated run: {} {} {} {}",
        eval_closed(&run_hw, &parts.w1, &opts_w).unwrap(),
        eval_closed(&run_hw, &parts.w2, &opts_w).unwrap(),
        eval_closed(&run_hw, &parts.w3, &opts_w).unwrap(),
        eval_closed(&run_hw, &parts.phi_w_safety, &opts_w).unwrap(),
    );

    // --- the Σ⁰₂ semi-decision (proof of Theorem 3.1) ---
    println!("\nΣ⁰₂ semi-decision (visit targets, budget 10_000 steps):");
    for m in [zoo::shuttle(), zoo::runner(), zoo::halter(), zoo::picky()] {
        for input in [vec![true], vec![false]] {
            let verdict = semi_decide_repeating(&m, &input, 25, 10_000);
            let tag = match verdict {
                SemiDecision::ReachedTarget { steps } => {
                    format!("25 visits after {steps} steps (evidence FOR repeating)")
                }
                SemiDecision::Halted { steps, visits } => format!(
                    "halted after {steps} steps with {visits} visits (certainly NOT repeating)"
                ),
                SemiDecision::Undetermined { visits } => {
                    format!("budget exhausted at {visits} visits (UNDETERMINED — the Π⁰₂ face)")
                }
            };
            println!(
                "  {:<8} on {:?}: {}",
                m.name(),
                input.iter().map(|&b| u8::from(b)).collect::<Vec<_>>(),
                tag
            );
        }
    }
}
