//! The exponential lower-bound shape of Section 6.
//!
//! Section 6 argues that `|R_D|` cannot be removed from the exponent of
//! Theorem 4.2's bound: a single database state can seed a universal
//! constraint whose unique extension simulates an exponentially long
//! computation. The binary-counter family makes this concrete: with the
//! all-ones pattern forbidden, deciding non-extendability forces the
//! checker to unroll `2^n` counter states.
//!
//! Run with: `cargo run --release --example counter`

use std::time::Instant;
use ticc::core::counter::counter_instance;
use ticc::prelude::{check_potential_satisfaction, CheckOptions};

fn main() {
    println!("n-bit binary counter, single state D0 (all zeros), k = 0 external vars");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>10}",
        "bits", "|phi|", "sat?", "aut states", "time"
    );
    for bits in 1..=7 {
        let inst = counter_instance(bits, true);
        let t0 = Instant::now();
        let out =
            check_potential_satisfaction(&inst.history, &inst.constraint, &CheckOptions::default())
                .unwrap();
        let dt = t0.elapsed();
        println!(
            "{:>4} {:>10} {:>12} {:>12} {:>10.2?}",
            bits,
            inst.constraint.size(),
            out.potentially_satisfied,
            out.stats.sat.states,
            dt
        );
    }
    println!(
        "\nformula size grows polynomially in n, but the automaton the checker \
         must explore grows ~2^n — the Section 6 argument in action."
    );

    // Without the all-ones prohibition the same rules are satisfiable:
    // the witness is the counter run itself.
    let inst = counter_instance(3, false);
    let out =
        check_potential_satisfaction(&inst.history, &inst.constraint, &CheckOptions::default())
            .unwrap();
    println!(
        "\n3-bit counter without the all-ones prohibition: potentially satisfied = {}",
        out.potentially_satisfied
    );
    if let Some(w) = out.witness {
        let bit = inst.schema.pred("Bit").unwrap();
        println!("witness extension (decoded counter values):");
        for (i, s) in w.prefix.iter().chain(w.cycle.iter()).take(9).enumerate() {
            let val: u64 = (0..inst.bits)
                .filter(|&b| s.holds(bit, &[b as u64]))
                .map(|b| 1 << b)
                .sum();
            println!("  step {:>2}: counter = {val}", i + 1);
        }
    }
}
