//! History-less checking of past constraints (the Section 5 thread).
//!
//! For `∀*□ψ` constraints with `ψ` a past formula, potential
//! satisfaction can be monitored **without storing the history at
//! all**: one vector of subformula truth values per ground substitution,
//! updated by the `since`/`●` recurrences (Chomicki, ICDE 1992 — the
//! history-less evaluation the paper's Section 5 discusses as the
//! practical alternative).
//!
//! The audit constraint here: *every filled order was submitted at some
//! point in the past* — `∀x □(Fill(x) → ◈Sub(x))`.
//!
//! Run with: `cargo run --example history_less`

use ticc::core::past::{PastMonitor, PastStatus};
use ticc::fotl::parser::parse;
use ticc::tdb::{Schema, State};

fn main() {
    let schema = Schema::builder().pred("Sub", 1).pred("Fill", 1).build();
    let phi = parse(&schema, "forall x. G (Fill(x) -> O Sub(x))").unwrap();
    println!("constraint: forall x. G (Fill(x) -> O Sub(x))   [past matrix]");

    let mut monitor = PastMonitor::new(schema.clone(), vec![], &phi).unwrap();

    // A long stream of order traffic; the monitor never stores a state.
    let mk = |subs: &[u64], fills: &[u64]| {
        let mut s = State::empty(schema.clone());
        for &v in subs {
            s.insert_named("Sub", vec![v]).unwrap();
        }
        for &v in fills {
            s.insert_named("Fill", vec![v]).unwrap();
        }
        s
    };

    let stream: Vec<State> = vec![
        mk(&[1], &[]),
        mk(&[2], &[1]),
        mk(&[3], &[2]),
        mk(&[], &[3]),
        mk(&[4], &[]),
        mk(&[], &[4]),
    ];
    for (t, s) in stream.iter().enumerate() {
        let status = monitor.append(s);
        println!(
            "t={t}: {:<24} status = {:?}  (tracked substitutions: {}, history stored: none)",
            s.display(),
            status,
            monitor.tracked_substitutions()
        );
    }

    // Long quiet period: memory stays flat.
    for _ in 0..1_000 {
        monitor.append(&State::empty(schema.clone()));
    }
    println!(
        "\nafter 1000 more (empty) instants: {} instants consumed, \
         still only {} tracked substitutions — cost independent of history length",
        monitor.instants(),
        monitor.tracked_substitutions()
    );

    // Now an audit failure: order 99 filled without ever being submitted.
    let status = monitor.append(&mk(&[], &[99]));
    match status {
        PastStatus::Violated { at } => println!(
            "\nFill(99) without a prior Sub(99): VIOLATED at instant {at} \
             (detected from O(1)-per-element state, no history replay)"
        ),
        PastStatus::Satisfied => unreachable!(),
    }
}
