//! Condition–action triggers via the paper's duality.
//!
//! Section 2: a trigger *"if C then A"* fires at instant `t` for a
//! ground substitution `θ` iff `¬Cθ` is **not** potentially satisfied —
//! i.e. every possible future already makes `Cθ` true. Trigger firing is
//! the dual of constraint satisfaction: an integrity-checking trigger
//! fires exactly when integrity is violated.
//!
//! Here a trigger watches for double-submitted orders and inserts an
//! `Alert` fact naming the culprit.
//!
//! Run with: `cargo run --example triggers`

use ticc::fotl::Term;
use ticc::prelude::{parse, Action, CheckOptions, History, Schema, State, Trigger, TriggerEngine};

fn main() {
    let schema = Schema::builder()
        .pred("Sub", 1)
        .pred("Fill", 1)
        .pred("Alert", 1)
        .build();
    let alert = schema.pred("Alert").unwrap();

    // Condition C(x) = ◇(Sub(x) ∧ ○◇Sub(x)): "x is submitted twice".
    // ¬C(x) is the once-only integrity constraint, so the trigger fires
    // exactly when that constraint is violated for x.
    let condition = parse(&schema, "F (Sub(x) & X F Sub(x))").unwrap();
    let mut engine = TriggerEngine::new(CheckOptions::default());
    engine
        .add(Trigger {
            name: "double-submission".into(),
            condition,
            action: Action::Insert {
                pred: alert,
                args: vec![Term::var("x")],
            },
        })
        .unwrap();

    // Build a history where order 2 is submitted at t=1 and again t=3.
    let mut h = History::new(schema.clone());
    let instants: Vec<Vec<(&str, u64)>> = vec![
        vec![("Sub", 1)],
        vec![("Sub", 2)],
        vec![("Fill", 1)],
        vec![("Sub", 2)], // duplicate!
    ];
    for (t, facts) in instants.iter().enumerate() {
        let mut s = State::empty(schema.clone());
        for (p, v) in facts {
            s.insert_named(p, vec![*v]).unwrap();
        }
        h.push_state(s);

        let fired = engine.evaluate(&h).unwrap();
        println!("t={t}: state = {}", h.state(t).display());
        if fired.is_empty() {
            println!("      no trigger fires (violation not yet certain)");
        }
        for f in &fired {
            println!(
                "      trigger '{}' FIRES with θ = {:?}",
                f.name, f.substitution
            );
        }
        if !fired.is_empty() {
            let tx = engine.actions(&fired);
            let mut alert_state = h.last().unwrap().clone();
            tx.apply_to(&mut alert_state).unwrap();
            println!(
                "      executing actions: alert relation now {}",
                alert_state.display()
            );
        }
    }
}
