//! A small, dependency-free JSON layer for the wire protocol.
//!
//! The server speaks newline-free, length-prefixed JSON frames; this
//! module is the parser and printer for them. It is deliberately tiny:
//! objects keep insertion order (a `Vec` of pairs, no hashing), every
//! integer round-trips exactly through [`Json::U64`] / [`Json::I64`]
//! (constraint values are `u64`; `f64` would corrupt values above
//! 2^53), and parse failures carry a byte offset so a malformed frame
//! can be reported back to the client precisely.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case: values, counters).
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace), the only form the wire
    /// carries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(b) => return Err(format!("raw control byte 0x{b:02x} in string")),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if !fractional {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Json::I64(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

/// Convenience constructors for response building.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_wire_shapes() {
        let src = r#"{"op":"append","session":"a","insert":["Sub(1)"],"n":18446744073709551615,"neg":-3,"x":1.5,"flag":true,"none":null,"empty":[],"eo":{}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("append"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("neg"), Some(&Json::I64(-3)));
        assert_eq!(v.get("x"), Some(&Json::F64(1.5)));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let v = Json::Str("a\"b\\c\nd\tcontrol:\u{1}".to_owned());
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(parse(r#""A✓""#).unwrap(), Json::Str("A✓".to_owned()));
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").unwrap_err().contains("trailing"));
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn big_u64_does_not_go_through_f64() {
        let n = (1u64 << 53) + 1;
        let v = parse(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
    }
}
