//! The `ticc-server` binary: serve a multi-tenant constraint server,
//! or drive one as a line-oriented client.
//!
//! ```text
//! ticc-server serve --addr 127.0.0.1:7171 [--wal sessions.gwal]
//!                   [--max-sessions N] [--workers N] [--threads auto|off|N]
//!                   [--io-threads N] [--threads-per-conn]
//!                   [--idle-park-ms MS] [--session-inflight N] [--session-bytes N]
//! ticc-server client --addr 127.0.0.1:7171          # JSON lines on stdin
//! ticc-server soak --addr 127.0.0.1:7171 --conns N  # hold N idle connections
//! ```
//!
//! Serving defaults to the event-driven core (`--io-threads` poll
//! loops multiplexing all connections); `--threads-per-conn` selects
//! the legacy loop for A/B comparison. `--idle-park-ms` checkpoints
//! sessions idle past the deadline into parked snapshot bytes —
//! transparently resumed by their next op. `--session-inflight` /
//! `--session-bytes` set the default per-tenant quotas (wire error
//! code `quota` past either).
//!
//! Exit codes (documented for scripts):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean exit (`shutdown` op received, or client EOF) |
//! | 2    | bad flags / usage |
//! | 3    | the group WAL could not be opened or recovered |
//! | 4    | the listen address could not be bound |
//! | 5    | client: connection or protocol failure |
//!
//! The client sends the `ticc-wire-v1` handshake itself, then frames
//! each stdin line verbatim and prints one response line per request —
//! `printf '…\n…\n' | ticc-server client --addr …` is a full scripted
//! session.

use std::io::{BufRead, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;

use ticc_core::{CheckOptions, Threads};
use ticc_server::{json, wire, Limits, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("soak") => soak(&args[1..]),
        _ => {
            eprintln!("usage: ticc-server serve --addr <ip:port> [--wal <path>] [--max-sessions N] [--workers N] [--threads auto|off|N]");
            eprintln!("                         [--io-threads N] [--threads-per-conn] [--idle-park-ms MS] [--session-inflight N] [--session-bytes N]");
            eprintln!("       ticc-server client --addr <ip:port>   (JSON requests on stdin, one per line)");
            eprintln!("       ticc-server soak --addr <ip:port> --conns N   (hold N handshaken idle connections)");
            ExitCode::from(2)
        }
    }
}

struct Flags {
    addr: Option<String>,
    wal: Option<String>,
    limits: Limits,
    threads: Threads,
    threads_per_conn: bool,
    conns: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        addr: None,
        wal: None,
        limits: Limits::default(),
        threads: Threads::Auto,
        threads_per_conn: false,
        conns: 64,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => flags.addr = Some(value("--addr")?.clone()),
            "--wal" => flags.wal = Some(value("--wal")?.clone()),
            "--max-sessions" => {
                flags.limits.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|_| "--max-sessions needs an integer".to_owned())?;
            }
            "--workers" => {
                flags.limits.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_owned())?;
            }
            "--threads" => {
                flags.threads = Threads::parse(value("--threads")?)?;
            }
            "--io-threads" => {
                flags.limits.io_threads = value("--io-threads")?
                    .parse()
                    .map_err(|_| "--io-threads needs an integer".to_owned())?;
            }
            "--threads-per-conn" => flags.threads_per_conn = true,
            "--idle-park-ms" => {
                flags.limits.idle_park_ms = value("--idle-park-ms")?
                    .parse()
                    .map_err(|_| "--idle-park-ms needs an integer".to_owned())?;
            }
            "--session-inflight" => {
                flags.limits.max_session_inflight = value("--session-inflight")?
                    .parse()
                    .map_err(|_| "--session-inflight needs an integer".to_owned())?;
            }
            "--session-bytes" => {
                flags.limits.max_session_bytes = value("--session-bytes")?
                    .parse()
                    .map_err(|_| "--session-bytes needs an integer".to_owned())?;
            }
            "--conns" => {
                flags.conns = value("--conns")?
                    .parse()
                    .map_err(|_| "--conns needs an integer".to_owned())?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(flags)
}

fn serve(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ticc-server: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(addr) = flags.addr else {
        eprintln!("ticc-server: serve needs --addr <ip:port>");
        return ExitCode::from(2);
    };
    let opts = CheckOptions::builder()
        .threads(flags.threads)
        .durability(ticc_core::Durability::WalFsync)
        .build();
    let server = match &flags.wal {
        Some(path) => match Server::with_wal(opts, flags.limits, path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ticc-server: cannot open group WAL {path}: {e}");
                return ExitCode::from(3);
            }
        },
        None => Server::new(opts, flags.limits),
    };
    let parked = server.parked_sessions();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ticc-server: cannot bind {addr}: {e}");
            return ExitCode::from(4);
        }
    };
    let start = if flags.threads_per_conn {
        Server::start
    } else {
        ticc_server::mux::start_mux
    };
    let running = match start(Arc::new(server), listener) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ticc-server: cannot start: {e}");
            return ExitCode::from(4);
        }
    };
    eprintln!(
        "ticc-server: listening on {} ({} recovered session(s) parked)",
        running.addr,
        parked.len()
    );
    running.join();
    eprintln!("ticc-server: clean shutdown");
    ExitCode::SUCCESS
}

fn client(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ticc-server: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(addr) = flags.addr else {
        eprintln!("ticc-server: client needs --addr <ip:port>");
        return ExitCode::from(2);
    };
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ticc-server: cannot connect to {addr}: {e}");
            return ExitCode::from(5);
        }
    };
    let Ok(read_half) = stream.try_clone() else {
        return ExitCode::from(5);
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut ask = |payload: &str| -> Result<String, String> {
        wire::write_frame(&mut writer, payload.as_bytes()).map_err(|e| e.to_string())?;
        let bytes = wire::read_frame(&mut reader, wire::MAX_FRAME_BYTES)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "server closed the connection".to_owned())?;
        String::from_utf8(bytes).map_err(|e| e.to_string())
    };
    let hello = json::obj(vec![
        ("op", json::s("hello")),
        ("schema", json::s(wire::WIRE_SCHEMA)),
    ]);
    match ask(&hello.render()) {
        Ok(resp) => eprintln!("ticc-server: {resp}"),
        Err(e) => {
            eprintln!("ticc-server: handshake failed: {e}");
            return ExitCode::from(5);
        }
    }
    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match ask(line) {
            Ok(resp) => println!("{resp}"),
            Err(e) => {
                eprintln!("ticc-server: {e}");
                return ExitCode::from(5);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Holds `--conns` handshaken idle connections open, then — once all
/// are up — verifies each still answers a `status`-less round trip
/// (`hello` is stateless and always legal) and exits. Exercises the
/// multiplexer's idle-connection economy from scripts: the server-side
/// cost of this soak is pollfds and buffers, not threads.
fn soak(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ticc-server: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(addr) = flags.addr else {
        eprintln!("ticc-server: soak needs --addr <ip:port>");
        return ExitCode::from(2);
    };
    let hello = json::obj(vec![
        ("op", json::s("hello")),
        ("schema", json::s(wire::WIRE_SCHEMA)),
    ])
    .render();
    let mut conns = Vec::with_capacity(flags.conns);
    for i in 0..flags.conns {
        let mut stream = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ticc-server: soak connect {i}/{}: {e}", flags.conns);
                return ExitCode::from(5);
            }
        };
        // The frame header and payload go out as two small writes;
        // without this, Nagle holds the second behind a delayed ACK
        // (~40ms per handshake, ~20s across a 512-connection soak).
        let _ = stream.set_nodelay(true);
        if wire::write_frame(&mut stream, hello.as_bytes()).is_err()
            || !matches!(
                wire::read_frame(&mut stream, wire::MAX_FRAME_BYTES),
                Ok(Some(_))
            )
        {
            eprintln!("ticc-server: soak handshake {i}/{} failed", flags.conns);
            return ExitCode::from(5);
        }
        conns.push(stream);
    }
    eprintln!(
        "ticc-server: soak holding {} idle connection(s)",
        conns.len()
    );
    // Every connection proved live while all its siblings idle.
    for (i, stream) in conns.iter_mut().enumerate() {
        if wire::write_frame(stream, hello.as_bytes()).is_err()
            || !matches!(wire::read_frame(stream, wire::MAX_FRAME_BYTES), Ok(Some(_)))
        {
            eprintln!("ticc-server: soak conn {i} went dead under load");
            return ExitCode::from(5);
        }
    }
    println!("soak ok: {} connections served concurrently", conns.len());
    ExitCode::SUCCESS
}
