//! The event-driven serving core: a fixed pool of I/O threads
//! multiplexing nonblocking connections over `poll(2)`.
//!
//! The legacy loop ([`Server::start`]) spends one OS thread (and its
//! stack) per connection, almost all of it blocked in `read`. Here,
//! [`start_mux`] spends `Limits::io_threads` threads total: each owns
//! a *shard* of connections, sleeps in one `poll(2)` call over all of
//! them, and only touches sockets the kernel reports ready. Per idle
//! connection the cost is one pollfd and two empty buffers — not a
//! thread.
//!
//! Mechanics, per shard:
//!
//! - **Readiness, not completion.** Sockets are nonblocking; `poll`
//!   says which are readable/writable. Reads drain until
//!   `WouldBlock`, feeding an incremental [`wire::FrameDecoder`] —
//!   frames arrive split across reads or many-per-read, and the
//!   decoder yields them as they complete.
//! - **Ordered writes with backpressure.** Responses append to a
//!   per-connection write buffer flushed opportunistically and on
//!   `POLLOUT`. While a connection's buffer is above the high-water
//!   mark the shard stops *reading* from it (its pollfd drops
//!   `POLLIN`), so a slow reader throttles its own request stream
//!   instead of ballooning server memory.
//! - **A wake pipe per shard.** The accept thread hands new sockets
//!   to shards round-robin through a mutexed inbox, then writes one
//!   byte to the shard's loopback wake pair so the `poll` call
//!   returns immediately.
//! - **Idle parking.** Shard 0 doubles as the sweep timer: every few
//!   ticks it calls [`Server::park_idle_sessions`], checkpointing
//!   sessions idle past `Limits::idle_park_ms` into parked snapshot
//!   bytes. The next op on a parked name revives it transparently.
//!
//! Requests still execute on the I/O thread that decoded them (the
//! engine's own worker pool parallelises *within* an append); the
//! multiplexing win is thread/stack economy and connection scaling,
//! not extra compute. `poll(2)` is O(fds) per call — the right tool
//! up to a few thousand connections per shard, chosen over epoll for
//! portability (one syscall, no registration state machine).
//!
//! Raw `extern "C"` bindings are used for the one syscall std does
//! not expose; std already links libc, so this adds no dependency.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::{json, wire, Running, Server};

#[cfg(unix)]
mod sys {
    //! Hand-rolled `poll(2)` binding. `pollfd` layout is identical on
    //! every unix std supports: int fd, short events, short revents.
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// `poll(2)` over `fds`. `EINTR` is reported as zero readiness —
    /// the caller's loop re-polls.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

/// Serves connections on the event-driven core until a `shutdown` op
/// arrives: `Limits::io_threads` I/O threads, each multiplexing its
/// shard of nonblocking connections over `poll(2)`. Drop-in for
/// [`Server::start`] — same wire behaviour, same [`Running`] handle.
#[cfg(unix)]
pub fn start_mux(server: Arc<Server>, listener: TcpListener) -> io::Result<Running> {
    let addr = listener.local_addr()?;
    let _ = server.addr.set(addr);
    let shard_count = server.limits.io_threads.max(1);
    let mut shards = Vec::with_capacity(shard_count);
    let mut io_threads = Vec::with_capacity(shard_count);
    for i in 0..shard_count {
        let (wake_tx, wake_rx) = wake_pair()?;
        let shard = Arc::new(ShardQueue {
            incoming: Mutex::new(Vec::new()),
            wake_tx: Mutex::new(wake_tx),
        });
        shards.push(Arc::clone(&shard));
        let io_server = Arc::clone(&server);
        io_threads.push(
            std::thread::Builder::new()
                .name(format!("ticc-io-{i}"))
                .spawn(move || io_loop(io_server, shard, wake_rx, i == 0))?,
        );
    }
    let accept_server = Arc::clone(&server);
    let handle = std::thread::spawn(move || {
        let mut next = 0usize;
        for stream in listener.incoming() {
            if accept_server.is_shutting_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shard = &shards[next % shards.len()];
            next += 1;
            shard
                .incoming
                .lock()
                .expect("shard inbox lock")
                .push(stream);
            shard.wake();
        }
        // Shutdown: wake every shard so its poll returns and sees the
        // flag, then wait for the drains to finish.
        for shard in &shards {
            shard.wake();
        }
        for t in io_threads {
            let _ = t.join();
        }
    });
    Ok(Running {
        addr,
        server,
        handle,
    })
}

/// Non-unix hosts have no `poll(2)`: fall back to the legacy
/// thread-per-connection loop so the server still serves.
#[cfg(not(unix))]
pub fn start_mux(server: Arc<Server>, listener: TcpListener) -> io::Result<Running> {
    Server::start(server, listener)
}

#[cfg(unix)]
struct ShardQueue {
    incoming: Mutex<Vec<TcpStream>>,
    wake_tx: Mutex<TcpStream>,
}

#[cfg(unix)]
impl ShardQueue {
    fn wake(&self) {
        let tx = self.wake_tx.lock().expect("wake lock");
        let _ = (&*tx).write(&[1u8]);
    }
}

/// A loopback socket pair standing in for `pipe(2)` (which std does
/// not expose): writing one byte to `tx` makes `rx` poll readable.
/// The accept is verified against the connector's address so a stray
/// connection to the ephemeral port cannot impersonate the waker.
#[cfg(unix)]
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let tx_addr = tx.local_addr()?;
    loop {
        let (rx, peer) = listener.accept()?;
        if peer == tx_addr {
            rx.set_nonblocking(true)?;
            tx.set_nodelay(true)?;
            return Ok((tx, rx));
        }
    }
}

/// One multiplexed connection: its socket, the incremental frame
/// decoder accumulating reads, and the pending-response buffer.
#[cfg(unix)]
struct Conn {
    stream: TcpStream,
    decoder: wire::FrameDecoder,
    write_buf: Vec<u8>,
    write_pos: usize,
    hello_done: bool,
    /// Peer closed its send side (or framing broke): stop reading,
    /// drain pending writes, then drop.
    eof: bool,
    /// Unrecoverable socket error: drop immediately.
    dead: bool,
}

#[cfg(unix)]
impl Conn {
    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn queue_frame(&mut self, payload: &[u8]) {
        let len = payload.len() as u32;
        self.write_buf.extend_from_slice(&len.to_le_bytes());
        self.write_buf.extend_from_slice(payload);
    }

    /// Writes as much of the pending buffer as the socket accepts.
    fn flush(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
    }

    /// Blocking flush for the moments ordering matters more than
    /// readiness: the shutdown response, and final drains.
    fn flush_blocking(&mut self) {
        let _ = self.stream.set_nonblocking(false);
        if self.write_pos < self.write_buf.len() {
            if self
                .stream
                .write_all(&self.write_buf[self.write_pos..])
                .is_err()
            {
                self.dead = true;
            }
            self.write_buf.clear();
            self.write_pos = 0;
        }
        let _ = self.stream.set_nonblocking(true);
    }
}

/// Pending writes above this stop reads on the connection (its pollfd
/// drops `POLLIN`) until the peer drains responses.
#[cfg(unix)]
fn high_water(server: &Server) -> usize {
    server.limits.max_frame_bytes.max(1 << 20)
}

#[cfg(unix)]
fn io_loop(server: Arc<Server>, shard: Arc<ShardQueue>, wake_rx: TcpStream, sweeper: bool) {
    use std::os::unix::io::AsRawFd;

    // This thread is one worker of a pool of `limits.workers`: clamp
    // Threads::Auto engines to their share of the machine.
    ticc_core::par::set_pool_peers(server.limits.workers);
    let mut conns: Vec<Conn> = Vec::new();
    let mut pollfds: Vec<sys::PollFd> = Vec::new();
    let mut last_sweep = Instant::now();
    let sweep_every = Duration::from_millis((server.limits.idle_park_ms / 4).clamp(25, 1000));
    let mut stopping = false;
    loop {
        // Adopt connections the accept thread handed us.
        let adopted: Vec<TcpStream> = {
            let mut inbox = shard.incoming.lock().expect("shard inbox lock");
            inbox.drain(..).collect()
        };
        for stream in adopted {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            server.connections.fetch_add(1, Ordering::Relaxed);
            conns.push(Conn {
                stream,
                decoder: wire::FrameDecoder::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                hello_done: false,
                eof: false,
                dead: false,
            });
        }
        if server.is_shutting_down() {
            // Drain what we owe, then exit; no new reads.
            for c in conns.iter_mut() {
                c.flush_blocking();
            }
            return;
        }
        // Build the poll set: the wake pipe first, then every live
        // connection. A connection above the write high-water mark or
        // at EOF polls for writability only.
        pollfds.clear();
        pollfds.push(sys::PollFd {
            fd: wake_rx.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
        let hw = high_water(&server);
        for c in conns.iter() {
            let mut events = 0i16;
            if !c.eof && c.pending_write() <= hw {
                events |= sys::POLLIN;
            }
            if c.pending_write() > 0 {
                events |= sys::POLLOUT;
            }
            pollfds.push(sys::PollFd {
                fd: c.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        if sys::poll_fds(&mut pollfds, 100).is_err() {
            // poll itself failing (EBADF from a raced close) — drop
            // connections the kernel no longer recognises on the next
            // NVAL report; for now just retry.
            std::thread::yield_now();
            continue;
        }
        // Drain wake bytes; their only meaning is "look at your inbox
        // / the shutdown flag", handled at the loop top.
        if pollfds[0].revents & sys::POLLIN != 0 {
            let mut sink = [0u8; 64];
            loop {
                match (&wake_rx).read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        for (i, c) in conns.iter_mut().enumerate() {
            let revents = pollfds[i + 1].revents;
            if revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
                c.dead = true;
                continue;
            }
            if revents & sys::POLLOUT != 0 {
                c.flush();
            }
            if revents & (sys::POLLIN | sys::POLLHUP) != 0 && !c.eof && !c.dead {
                read_ready(&server, c, &mut stopping);
            }
            // Opportunistic flush: most responses fit the socket
            // buffer, so they leave now instead of next tick.
            if c.pending_write() > 0 && !c.dead {
                c.flush();
            }
        }
        conns.retain(|c| !(c.dead || c.eof && c.pending_write() == 0));
        if stopping {
            // We answered a shutdown op: wake the accept loop (it may
            // be blocked with no inbound connection coming) and our
            // sibling shards via the server's own listener address.
            // op_shutdown already connected once; poll's timeout
            // bounds sibling latency regardless.
            for c in conns.iter_mut() {
                c.flush_blocking();
            }
            return;
        }
        if sweeper && server.limits.idle_park_ms > 0 && last_sweep.elapsed() >= sweep_every {
            server.park_idle_sessions(Duration::from_millis(server.limits.idle_park_ms));
            last_sweep = Instant::now();
        }
    }
}

/// Reads everything the socket currently has, decodes complete
/// frames, and executes them in arrival order. Responses are queued
/// on the connection's write buffer — order is preserved end to end.
#[cfg(unix)]
fn read_ready(server: &Arc<Server>, c: &mut Conn, stopping: &mut bool) {
    let mut chunk = [0u8; 64 << 10];
    loop {
        match c.stream.read(&mut chunk) {
            Ok(0) => {
                c.eof = true;
                break;
            }
            Ok(n) => c.decoder.extend(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
    loop {
        let payload = match c.decoder.next_frame(server.limits.max_frame_bytes) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(e) => {
                // An oversize length prefix means framing can no
                // longer be trusted: answer once, then hang up.
                let resp = wire::err("parse", e).render();
                c.queue_frame(resp.as_bytes());
                c.eof = true;
                break;
            }
        };
        let frame_bytes = payload.len();
        let resp = match std::str::from_utf8(&payload) {
            Ok(text) => match json::parse(text) {
                Ok(req) => {
                    let (resp, stop) = server.dispatch_sized(&req, frame_bytes, &mut c.hello_done);
                    if stop {
                        *stopping = true;
                    }
                    resp
                }
                Err(parse_err) => wire::err("parse", parse_err).render(),
            },
            Err(_) => wire::err("parse", "frame is not UTF-8").render(),
        };
        c.queue_frame(resp.as_bytes());
        if *stopping {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Limits;
    use ticc_core::CheckOptions;

    fn serve_mux(limits: Limits) -> Running {
        let server = Arc::new(Server::new(CheckOptions::default(), limits));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        start_mux(server, listener).expect("start mux")
    }

    fn frame_roundtrip(stream: &mut TcpStream, req: &str) -> String {
        wire::write_frame(stream, req.as_bytes()).expect("write");
        let payload = wire::read_frame(stream, 1 << 20)
            .expect("read")
            .expect("frame");
        String::from_utf8(payload).expect("utf8")
    }

    #[test]
    fn mux_serves_split_and_coalesced_frames() {
        let running = serve_mux(Limits::default());
        let mut stream = TcpStream::connect(running.addr).expect("connect");
        // Hello split into single bytes across writes: the incremental
        // decoder must reassemble it.
        let hello = format!("{{\"op\":\"hello\",\"schema\":\"{}\"}}", wire::WIRE_SCHEMA);
        let mut framed = (hello.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(hello.as_bytes());
        for b in &framed {
            stream
                .write_all(std::slice::from_ref(b))
                .expect("write byte");
            stream.flush().expect("flush");
        }
        let resp = wire::read_frame(&mut stream, 1 << 20)
            .expect("read")
            .expect("frame");
        let resp = String::from_utf8(resp).expect("utf8");
        assert!(resp.contains("\"ok\":true"), "split hello failed: {resp}");
        // Two requests coalesced into one write: two responses, in
        // order.
        let open = "{\"op\":\"open\",\"session\":\"s\",\"preds\":[[\"P\",1]]}";
        let status = "{\"op\":\"status\",\"session\":\"s\"}";
        let mut both = Vec::new();
        wire::write_frame(&mut both, open.as_bytes()).expect("frame");
        wire::write_frame(&mut both, status.as_bytes()).expect("frame");
        stream.write_all(&both).expect("write both");
        let first = wire::read_frame(&mut stream, 1 << 20)
            .expect("read")
            .expect("frame");
        let second = wire::read_frame(&mut stream, 1 << 20)
            .expect("read")
            .expect("frame");
        let first = String::from_utf8(first).expect("utf8");
        let second = String::from_utf8(second).expect("utf8");
        assert!(
            first.contains("\"session\":\"s\""),
            "open answer out of order: {first}"
        );
        assert!(
            second.contains("\"constraints\""),
            "status answer out of order: {second}"
        );
        let _ = frame_roundtrip(&mut stream, "{\"op\":\"shutdown\"}");
        running.join();
    }

    #[test]
    fn mux_answers_many_idle_connections() {
        let limits = Limits {
            io_threads: 2,
            ..Limits::default()
        };
        let running = serve_mux(limits);
        let mut conns: Vec<TcpStream> = (0..32)
            .map(|_| TcpStream::connect(running.addr).expect("connect"))
            .collect();
        // Handshake every connection; they then sit idle.
        let hello = format!("{{\"op\":\"hello\",\"schema\":\"{}\"}}", wire::WIRE_SCHEMA);
        for c in conns.iter_mut() {
            let resp = frame_roundtrip(c, &hello);
            assert!(resp.contains("\"ok\":true"));
        }
        // A late arrival still gets served while the others idle.
        let mut active = TcpStream::connect(running.addr).expect("connect");
        let resp = frame_roundtrip(&mut active, &hello);
        assert!(resp.contains("\"ok\":true"));
        let resp = frame_roundtrip(
            &mut active,
            "{\"op\":\"open\",\"session\":\"live\",\"preds\":[[\"P\",1]]}",
        );
        assert!(resp.contains("\"ok\":true"), "open failed: {resp}");
        let resp = frame_roundtrip(
            &mut active,
            "{\"op\":\"append\",\"session\":\"live\",\"insert\":[\"P(1)\"]}",
        );
        assert!(resp.contains("\"t\":0"), "append failed: {resp}");
        let _ = frame_roundtrip(&mut active, "{\"op\":\"shutdown\"}");
        running.join();
    }
}
