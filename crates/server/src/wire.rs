//! `ticc-wire-v1` — the server's length-prefixed JSON frame protocol.
//!
//! Every frame, in both directions, is
//!
//! ```text
//! [u32 LE payload length][payload: one compact JSON document, UTF-8]
//! ```
//!
//! Requests are objects with an `"op"` field; responses always carry
//! `"ok"` (`true` plus op-specific fields, or `false` plus `"error"`
//! and a stable machine-readable `"code"`). The protocol itself is
//! versioned through the `hello` handshake: the client's first frame
//! must be `{"op":"hello","schema":"ticc-wire-v1"}`, and a server that
//! does not speak that schema refuses with code `unsupported-schema`
//! rather than guessing.
//!
//! | op           | request fields                                        | success fields |
//! |--------------|-------------------------------------------------------|----------------|
//! | `hello`      | `schema`                                              | `schema`, `server` |
//! | `open`       | `session`, opt. `preds` `[[name,arity],…]`, `consts` `[[name,value],…]`, `constraints`/`triggers` `[[name,src],…]`, per-tenant knobs `history_window`, `max_inflight`, `max_pending_bytes` | `session`, `resumed`, `states`, `constraints` |
//! | `append`     | `session`, opt. `insert`/`delete` (arrays of `"Pred(v,…)"` facts in the store codec's text grammar; inserts apply first) and/or ordered `ops` `[["+"\|"-", fact],…]` | `t`, `events`, `fired` |
//! | `append_batch` | `session`, `txs` (array of transaction objects, each the `append` shape) — commits consecutive states in one constraint sweep and one group-commit window | `results` (array of `{t, events, fired}`) |
//! | `status`     | `session`                                             | `constraints` array |
//! | `stats`      | `session`                                             | `stats` (a `ticc-engine-stats-v2` object with the `server` object filled in) |
//! | `checkpoint` | `session`                                             | `bytes` |
//! | `close`      | `session`                                             | `session` (checkpoints, parks the checkpoint for reopen, unregisters) |
//! | `shutdown`   | opt. `checkpoint` (default `true`)                    | — (server stops accepting, drains, exits) |
//!
//! Error codes: `unsupported-schema`, `parse` (unreadable frame),
//! `bad-frame` (readable JSON, wrong shape), `unknown-session`,
//! `session-limit`, `backpressure` (global admission control refused
//! the append; retry later), `quota` (this *session's* per-tenant
//! inflight/byte quota refused the append; retry later), `engine`
//! (the constraint pipeline itself failed). Backpressure and quota
//! are explicit, immediate responses — the server never queues
//! unboundedly.

use std::io::{self, Read, Write};

use crate::json::{self, Json};

/// The one wire schema this build speaks.
pub const WIRE_SCHEMA: &str = "ticc-wire-v1";

/// Hard ceiling a frame length prefix may claim, independent of the
/// configurable per-server limit (keeps a corrupt prefix from
/// allocating gigabytes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Reads one frame. `Ok(None)` is a clean EOF *between* frames;
/// mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > max_bytes.min(MAX_FRAME_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes} byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes a JSON document as one frame.
pub fn write_json(w: &mut impl Write, v: &Json) -> io::Result<()> {
    write_frame(w, v.render().as_bytes())
}

/// Reads one frame and parses it as JSON.
pub fn read_json(r: &mut impl Read, max_bytes: usize) -> io::Result<Option<Result<Json, String>>> {
    let Some(payload) = read_frame(r, max_bytes)? else {
        return Ok(None);
    };
    let text = match std::str::from_utf8(&payload) {
        Ok(t) => t,
        Err(_) => return Ok(Some(Err("frame is not UTF-8".to_owned()))),
    };
    Ok(Some(json::parse(text)))
}

/// Incremental frame decoder for the event-driven serving core:
/// nonblocking reads deliver bytes in arbitrary chunks (a frame can
/// arrive split across reads, or many frames in one read), so the
/// decoder accumulates bytes and yields complete frames as they
/// materialise. The buffer is compacted as frames are consumed;
/// steady-state decoding reuses its capacity.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder (no buffer allocated until bytes arrive).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds freshly read bytes into the decoder.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: consumed frames at the front of the
        // buffer are dead weight the next read would otherwise pile
        // on top of.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame's payload, `Ok(None)` if more
    /// bytes are needed, or an error when the length prefix exceeds
    /// `max_bytes` (the connection is beyond recovery — framing can no
    /// longer be trusted).
    pub fn next_frame(&mut self, max_bytes: usize) -> Result<Option<Vec<u8>>, String> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > max_bytes.min(MAX_FRAME_BYTES) {
            return Err(format!(
                "frame of {len} bytes exceeds the {max_bytes} byte limit"
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A success response scaffold: `{"ok":true, …fields}`.
pub fn ok(fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(fields);
    json::obj(pairs)
}

/// An error response: `{"ok":false,"code":…,"error":…}`.
pub fn err(code: &str, message: impl Into<String>) -> Json {
    json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", json::s(code)),
        ("error", Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"hello\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"{\"op\":\"hello\"}"[..])
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"second"[..])
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversize_and_torn_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0x41; 100]).unwrap();
        let mut r = &buf[..];
        assert!(read_frame(&mut r, 10).is_err(), "over the limit");
        // Mid-frame EOF: length says 100, only 50 bytes follow.
        let mut torn = buf[..54].to_vec();
        torn.truncate(54);
        assert!(read_frame(&mut &torn[..], 1024).is_err());
    }

    #[test]
    fn response_scaffolds_render_stable_shapes() {
        let o = ok(vec![("t", Json::U64(3))]);
        assert_eq!(o.render(), "{\"ok\":true,\"t\":3}");
        let e = err("backpressure", "429 too many staged bytes");
        assert_eq!(
            e.render(),
            "{\"ok\":false,\"code\":\"backpressure\",\"error\":\"429 too many staged bytes\"}"
        );
    }
}
