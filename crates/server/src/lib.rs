//! `ticc-server` — a multi-tenant constraint server.
//!
//! Hosts many independent [`Session`]s (one temporal database, one
//! set of constraints and triggers each) in one long-lived process,
//! spoken to over the [`wire`] protocol (`ticc-wire-v1`: length-
//! prefixed JSON frames over TCP). Connections are served by the
//! event-driven [`mux`] core by default — a fixed pool of I/O threads
//! multiplexing nonblocking sockets over `poll(2)` — with the legacy
//! thread-per-connection loop ([`Server::start`]) kept for A/B
//! benching. Several properties distinguish it from "a shell per
//! client":
//!
//! - **Group-commit durability.** All sessions log into one shared
//!   [`GroupWal`]; a `Durability::WalFsync` append waits for its
//!   commit window, not its own fsync, so one disk flush acknowledges
//!   appends from many sessions at once. The ack contract (an
//!   acknowledged append survives any crash) is the store layer's,
//!   proven byte-exhaustively in `ticc-store`.
//! - **Admission control, not queues.** A configurable ceiling on
//!   concurrently checking appends and on staged-but-unflushed log
//!   bytes; past either, the server answers `backpressure` immediately
//!   instead of buffering unboundedly. Clients retry; memory stays
//!   bounded.
//! - **Fair parallelism.** Worker threads register the pool size via
//!   [`set_pool_peers`], so a session running `Threads::Auto` claims
//!   its share of `available_parallelism`, not the whole machine
//!   multiplied by every concurrent connection.
//! - **Per-tenant quotas.** Beyond the global ceilings, each session
//!   carries its own inflight/pending-byte budget; one tenant
//!   saturating its quota gets `quota` refusals while its neighbours
//!   keep committing.
//! - **Idle-session parking.** Sessions idle past a deadline are
//!   checkpointed to parked snapshot bytes and dropped from memory;
//!   the next op on the name transparently resumes them, counters and
//!   all.
//!
//! Stats are the `ticc-engine-stats-v2` schema with the `server`
//! object filled in; [`upgrade_stats`] adapts v1 documents for readers
//! that migrated.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ticc_core::par::set_pool_peers;
use ticc_core::{
    stats_json_with, CheckOptions, Committed, GroupWal, HistoryBudget, ParkedSession, Session,
    Status, STATS_SCHEMA, STATS_SCHEMA_V1,
};
use ticc_fotl::parser::parse as parse_formula;
use ticc_store::codec::parse_fact;
use ticc_tdb::{Transaction, Value};

pub mod json;
pub mod mux;
pub mod wire;

use json::Json;

/// Admission-control and resource limits. Zero is honoured literally
/// (`max_inflight_appends: 0` refuses every append) — useful in tests.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Live sessions the registry will hold.
    pub max_sessions: usize,
    /// Appends allowed to be inside the engine+log path at once,
    /// across all sessions; beyond this the server answers
    /// `backpressure`.
    pub max_inflight_appends: usize,
    /// Staged-but-unflushed group-log bytes beyond which appends get
    /// `backpressure`.
    pub max_pending_bytes: usize,
    /// Largest request frame accepted.
    pub max_frame_bytes: usize,
    /// Expected concurrently-working connections; feeds
    /// [`set_pool_peers`] so `Threads::Auto` engines split the machine
    /// instead of each assuming all of it.
    pub workers: usize,
    /// I/O threads multiplexing connections in the event-driven core
    /// ([`mux`]). Each owns a shard of connections; clamped to ≥ 1.
    pub io_threads: usize,
    /// Idle deadline in milliseconds after which the mux loop parks a
    /// session (checkpoint to snapshot bytes, drop from memory; the
    /// next op resumes it transparently). `0` disables the sweep.
    pub idle_park_ms: u64,
    /// Default per-session cap on concurrently-inflight appends; an
    /// `open` may lower (or raise, up to the global ceiling) its own
    /// with `"max_inflight"`. Past it the tenant gets `quota`.
    pub max_session_inflight: usize,
    /// Default per-session cap on request bytes admitted but not yet
    /// answered; `open`'s `"max_pending_bytes"` overrides per tenant.
    pub max_session_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_sessions: 4096,
            max_inflight_appends: 256,
            max_pending_bytes: 8 << 20,
            max_frame_bytes: 1 << 20,
            workers: 8,
            io_threads: 4,
            idle_park_ms: 0,
            max_session_inflight: 64,
            max_session_bytes: 4 << 20,
        }
    }
}

/// A recovered-but-unopened session: the group log knows its name and
/// holds its snapshot/suffix, but no client has attached yet. A clean
/// `close` re-parks its closing checkpoint here, so a later open of
/// the same name resumes from it — served state and crash-recovered
/// state stay identical.
struct Parked {
    snapshot: Option<Vec<u8>>,
    suffix: Vec<Vec<u8>>,
    /// Set when the entry came from the idle sweep rather than the
    /// group log or a clean close: a full [`ParkedSession`] (snapshot
    /// + options + counters) that resumes without WAL replay.
    resume: Option<ParkedSession>,
}

/// Per-session admission-control state. Lives as long as the tenant
/// has been seen this process lifetime (parking does not reset it —
/// quotas and idleness are properties of the tenant, not the resident
/// session object).
struct Tenant {
    inflight: AtomicUsize,
    pending_bytes: AtomicUsize,
    max_inflight: AtomicUsize,
    max_bytes: AtomicUsize,
    /// Milliseconds since server start at the last op touching this
    /// tenant; drives the idle-parking sweep.
    last_op_ms: AtomicU64,
}

/// RAII release of a tenant's admitted inflight/byte budget.
struct TenantGuard<'a> {
    tenant: &'a Tenant,
    bytes: usize,
}

impl Drop for TenantGuard<'_> {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::SeqCst);
        self.tenant
            .pending_bytes
            .fetch_sub(self.bytes, Ordering::SeqCst);
    }
}

/// One registry entry. The `Option` is the session's liveness: a slot
/// holding `None` is either still being built by an `open` (which
/// holds the slot lock throughout) or was emptied by a `close`. Ops
/// that find `None` answer `unknown-session`; the slot shape lets a
/// close take the session out without the remove/re-insert window a
/// plain `HashMap<String, Arc<Mutex<Session>>>` registry had.
type Slot = Arc<Mutex<Option<Session>>>;

/// The shared server state behind every connection thread.
pub struct Server {
    opts: CheckOptions,
    limits: Limits,
    wal: Option<Arc<GroupWal>>,
    sessions: Mutex<HashMap<String, Slot>>,
    parked: Mutex<HashMap<String, Parked>>,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    started: Instant,
    inflight: AtomicUsize,
    connections: AtomicU64,
    frames: AtomicU64,
    backpressure: AtomicU64,
    quota_refusals: AtomicU64,
    parks: AtomicU64,
    resumes: AtomicU64,
    shutdown: AtomicBool,
    addr: OnceLock<SocketAddr>,
}

impl Server {
    /// An ephemeral server: sessions live in memory only.
    pub fn new(opts: CheckOptions, limits: Limits) -> Self {
        Self {
            opts,
            limits,
            wal: None,
            sessions: Mutex::new(HashMap::new()),
            parked: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            started: Instant::now(),
            inflight: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            backpressure: AtomicU64::new(0),
            quota_refusals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            addr: OnceLock::new(),
        }
    }

    /// A durable server over a shared group-commit log at `path`.
    /// Sessions found in the log are parked until a client re-opens
    /// them by name.
    pub fn with_wal(
        opts: CheckOptions,
        limits: Limits,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, ticc_store::StoreError> {
        let (wal, recovered) = GroupWal::open_or_create(path)?;
        let mut server = Self::new(opts, limits);
        let parked = recovered
            .sessions
            .into_iter()
            .map(|s| {
                (
                    s.name,
                    Parked {
                        snapshot: s.snapshot,
                        suffix: s.suffix,
                        resume: None,
                    },
                )
            })
            .collect();
        server.wal = Some(Arc::new(wal));
        server.parked = Mutex::new(parked);
        Ok(server)
    }

    /// Names of sessions recovered from the log and awaiting a client.
    pub fn parked_sessions(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .parked
            .lock()
            .expect("parked lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Whether a `shutdown` op has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The group WAL's counters, when the server has one.
    pub fn group_stats(&self) -> Option<ticc_store::GroupStats> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// The `server` object of the v2 stats schema, as a JSON document.
    pub fn server_stats_json(&self) -> String {
        let sessions = self.sessions.lock().expect("sessions lock").len();
        let parked = self.parked.lock().expect("parked lock").len();
        let group = match &self.wal {
            Some(wal) => {
                let g = wal.stats();
                format!(
                    "{{\"frames\":{},\"windows\":{},\"fsyncs\":{},\"batched_frames\":{},\
                     \"max_batch\":{},\"bytes_written\":{},\"recovered_sessions\":{},\
                     \"truncated_bytes\":{}}}",
                    g.frames,
                    g.windows,
                    g.fsyncs,
                    g.batched_frames,
                    g.max_batch,
                    g.bytes_written,
                    g.recovered_sessions,
                    g.truncated_bytes
                )
            }
            None => "null".to_owned(),
        };
        format!(
            "{{\"schema\":\"{}\",\"sessions\":{sessions},\"parked\":{parked},\
             \"connections\":{},\"frames\":{},\"inflight\":{},\"backpressure\":{},\
             \"quota_refusals\":{},\"parks\":{},\"resumes\":{},\
             \"workers\":{},\"io_threads\":{},\"group\":{group},\
             \"limits\":{{\"max_sessions\":{},\"max_inflight_appends\":{},\
             \"max_pending_bytes\":{},\"max_frame_bytes\":{},\
             \"max_session_inflight\":{},\"max_session_bytes\":{},\
             \"idle_park_ms\":{}}}}}",
            wire::WIRE_SCHEMA,
            self.connections.load(Ordering::Relaxed),
            self.frames.load(Ordering::Relaxed),
            self.inflight.load(Ordering::Relaxed),
            self.backpressure.load(Ordering::Relaxed),
            self.quota_refusals.load(Ordering::Relaxed),
            self.parks.load(Ordering::Relaxed),
            self.resumes.load(Ordering::Relaxed),
            self.limits.workers,
            self.limits.io_threads,
            self.limits.max_sessions,
            self.limits.max_inflight_appends,
            self.limits.max_pending_bytes,
            self.limits.max_frame_bytes,
            self.limits.max_session_inflight,
            self.limits.max_session_bytes,
            self.limits.idle_park_ms,
        )
    }

    fn session(&self, name: &str) -> Option<Slot> {
        self.sessions
            .lock()
            .expect("sessions lock")
            .get(name)
            .cloned()
    }

    /// Milliseconds since the server started — the monotonic stamp
    /// tenants carry in `last_op_ms`.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The tenant record for `name`, created on first sight with the
    /// server-wide default quotas.
    fn tenant(&self, name: &str) -> Arc<Tenant> {
        let mut tenants = self.tenants.lock().expect("tenants lock");
        let tenant = tenants.entry(name.to_owned()).or_insert_with(|| {
            Arc::new(Tenant {
                inflight: AtomicUsize::new(0),
                pending_bytes: AtomicUsize::new(0),
                max_inflight: AtomicUsize::new(self.limits.max_session_inflight),
                max_bytes: AtomicUsize::new(self.limits.max_session_bytes),
                last_op_ms: AtomicU64::new(self.now_ms()),
            })
        });
        Arc::clone(tenant)
    }

    /// Stamps tenant liveness — any op naming the session counts as
    /// activity for the idle-parking sweep.
    fn touch_tenant(&self, req: &Json) {
        if let Some(name) = req.get("session").and_then(Json::as_str) {
            let tenants = self.tenants.lock().expect("tenants lock");
            if let Some(t) = tenants.get(name) {
                t.last_op_ms.store(self.now_ms(), Ordering::Relaxed);
            }
        }
    }

    /// Admits `bytes` of request work against the tenant's quota.
    /// Charges first, then checks: on refusal the guard's drop undoes
    /// the charge, so a racing admit never double-spends the budget.
    fn admit_tenant<'a>(&self, tenant: &'a Tenant, bytes: usize) -> Result<TenantGuard<'a>, Json> {
        let inflight = tenant.inflight.fetch_add(1, Ordering::SeqCst);
        let pending = tenant.pending_bytes.fetch_add(bytes, Ordering::SeqCst);
        let guard = TenantGuard { tenant, bytes };
        let max_inflight = tenant.max_inflight.load(Ordering::Relaxed);
        if inflight >= max_inflight {
            self.quota_refusals.fetch_add(1, Ordering::Relaxed);
            return Err(wire::err(
                "quota",
                format!(
                    "session quota: {inflight} request(s) already in flight (limit {max_inflight})"
                ),
            ));
        }
        let max_bytes = tenant.max_bytes.load(Ordering::Relaxed);
        if pending + bytes > max_bytes {
            self.quota_refusals.fetch_add(1, Ordering::Relaxed);
            return Err(wire::err(
                "quota",
                format!(
                    "session quota: {} request byte(s) pending would exceed the {max_bytes} byte limit",
                    pending + bytes
                ),
            ));
        }
        Ok(guard)
    }

    /// Dispatches one request; returns the rendered response and
    /// whether the connection must stop serving (shutdown accepted).
    /// `frame_bytes` is the size of the request frame on the wire —
    /// the unit the per-tenant byte quota charges.
    pub fn dispatch_sized(
        &self,
        req: &Json,
        frame_bytes: usize,
        hello_done: &mut bool,
    ) -> (String, bool) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.touch_tenant(req);
        self.dispatch_inner(req, frame_bytes, hello_done)
    }

    /// [`Server::dispatch_sized`] with the frame size taken from the
    /// rendered request — the in-process convenience used by unit tests.
    pub fn dispatch(&self, req: &Json, hello_done: &mut bool) -> (String, bool) {
        let bytes = req.render().len();
        self.dispatch_sized(req, bytes, hello_done)
    }

    fn dispatch_inner(
        &self,
        req: &Json,
        frame_bytes: usize,
        hello_done: &mut bool,
    ) -> (String, bool) {
        let Some(op) = req.get("op").and_then(Json::as_str) else {
            return (wire::err("bad-frame", "missing \"op\"").render(), false);
        };
        if !*hello_done && op != "hello" {
            return (
                wire::err(
                    "bad-frame",
                    format!(
                        "handshake required: send {{\"op\":\"hello\",\"schema\":\"{}\"}} first",
                        wire::WIRE_SCHEMA
                    ),
                )
                .render(),
                false,
            );
        }
        match op {
            "hello" => {
                let schema = req.get("schema").and_then(Json::as_str).unwrap_or("");
                if schema != wire::WIRE_SCHEMA {
                    return (
                        wire::err(
                            "unsupported-schema",
                            format!(
                                "this server speaks {}, client offered '{schema}'",
                                wire::WIRE_SCHEMA
                            ),
                        )
                        .render(),
                        false,
                    );
                }
                *hello_done = true;
                (
                    wire::ok(vec![
                        ("schema", json::s(wire::WIRE_SCHEMA)),
                        (
                            "server",
                            json::s(concat!("ticc-server/", env!("CARGO_PKG_VERSION"))),
                        ),
                    ])
                    .render(),
                    false,
                )
            }
            "open" => (self.op_open(req).render(), false),
            "append" => (self.op_append(req, frame_bytes).render(), false),
            "append_batch" => (self.op_append_batch(req, frame_bytes).render(), false),
            "status" => (self.op_status(req).render(), false),
            "stats" => (self.op_stats(req), false),
            "checkpoint" => (self.op_checkpoint(req).render(), false),
            "close" => (self.op_close(req).render(), false),
            "shutdown" => {
                let checkpoint = req
                    .get("checkpoint")
                    .and_then(Json::as_bool)
                    .unwrap_or(true);
                let resp = self.op_shutdown(checkpoint);
                (resp.render(), true)
            }
            other => (
                wire::err("bad-frame", format!("unknown op '{other}'")).render(),
                false,
            ),
        }
    }

    fn op_open(&self, req: &Json) -> Json {
        let Some(name) = req.get("session").and_then(Json::as_str) else {
            return wire::err("bad-frame", "open needs a \"session\" name");
        };
        // Bounded retry: a concurrent close can empty a slot between
        // our registry lookup and the slot lock; loop back to find (or
        // create) its successor. Lock order everywhere: the registry
        // lock is never held while waiting on a slot lock, so a close
        // holding its slot while it parks/unregisters cannot deadlock
        // against us.
        for _ in 0..8 {
            let mut built_resumed: Option<bool> = None;
            let (slot, fresh) = {
                let mut sessions = self.sessions.lock().expect("sessions lock");
                match sessions.get(name) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        if sessions.len() >= self.limits.max_sessions {
                            return wire::err(
                                "session-limit",
                                format!(
                                    "the server holds its maximum of {} session(s)",
                                    self.limits.max_sessions
                                ),
                            );
                        }
                        let slot: Slot = Arc::new(Mutex::new(None));
                        sessions.insert(name.to_owned(), Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            let mut guard = slot.lock().expect("session lock");
            if guard.is_none() {
                if !fresh {
                    // Emptied by a concurrent close (or a concurrent
                    // open whose build failed): go look again.
                    drop(guard);
                    std::thread::yield_now();
                    continue;
                }
                // We created the placeholder: build the session while
                // holding only the slot lock, so WAL replay and group
                // registration never stall other sessions' registry
                // lookups. Concurrent ops on this name block on the
                // slot until the build lands.
                match self.build_session(name, req) {
                    Ok((session, was_resumed)) => {
                        *guard = Some(session);
                        built_resumed = Some(was_resumed);
                    }
                    Err(resp) => {
                        drop(guard);
                        let mut sessions = self.sessions.lock().expect("sessions lock");
                        if sessions.get(name).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                            sessions.remove(name);
                        }
                        return resp;
                    }
                }
            }
            let session = guard.as_mut().expect("slot just checked/filled");
            // Constraints and triggers are idempotent by name so a
            // client can resend its full `open` after a reconnect.
            if let Err(resp) = register_formulas(session, req) {
                return resp;
            }
            // Tenant quotas: created on first open, re-tunable on any
            // later one. Values are clamped to the global ceilings —
            // a tenant cannot grant itself more than the server has.
            let tenant = self.tenant(name);
            if let Some(mi) = req.get("max_inflight").and_then(Json::as_u64) {
                let mi = (mi as usize).min(self.limits.max_inflight_appends);
                tenant.max_inflight.store(mi, Ordering::Relaxed);
            }
            if let Some(mb) = req.get("max_pending_bytes").and_then(Json::as_u64) {
                let mb = (mb as usize).min(self.limits.max_pending_bytes);
                tenant.max_bytes.store(mb, Ordering::Relaxed);
            }
            tenant.last_op_ms.store(self.now_ms(), Ordering::Relaxed);
            let resumed = built_resumed.unwrap_or_else(|| {
                session.stats().commits == 0 && session.history().is_some_and(|h| !h.is_empty())
            });
            return wire::ok(vec![
                ("session", json::s(name)),
                ("resumed", Json::Bool(resumed)),
                (
                    "states",
                    Json::U64(session.history().map_or(0, |h| h.len() as u64)),
                ),
                (
                    "constraints",
                    Json::U64(session.constraints().count() as u64),
                ),
            ]);
        }
        wire::err(
            "engine",
            format!("session '{name}' is churning under concurrent open/close; retry"),
        )
    }

    /// Builds a new session from an `open` request: group binding,
    /// parked recovery state, and up-front declarations. The parked
    /// entry is only consumed on success — a failed open (bad
    /// declarations, corrupt replay) leaves the recovered state
    /// available for the next attempt.
    fn build_session(&self, name: &str, req: &Json) -> Result<(Session, bool), Json> {
        // Per-tenant memory budget: `"history_window": n` caps the
        // resident history to the last n instants (0 / absent =
        // server-wide default, normally unbounded). Budgets change
        // memory shape only — statuses and events stay bit-identical.
        let mut opts = self.opts;
        if let Some(window) = req.get("history_window").and_then(Json::as_u64) {
            if window > 0 {
                opts.history_budget = HistoryBudget::Window(window as usize);
            }
        }
        // An idle-parked entry carries a full ParkedSession (options
        // and counters included) and resumes without WAL replay; the
        // other parked shapes (crash recovery, clean close) rebuild
        // from snapshot + suffix. Either way the entry is consumed
        // only on success.
        let parked_entry = {
            let parked = self.parked.lock().expect("parked lock");
            parked
                .get(name)
                .map(|p| (p.resume.clone(), p.snapshot.clone(), p.suffix.clone()))
        };
        let had_parked = parked_entry.is_some();
        let mut builder = match &parked_entry {
            // `.resume` before `.group`: group registration binds the
            // builder's name at call time.
            Some((Some(ps), _, _)) => Session::builder().resume(ps.clone()),
            _ => Session::builder().name(name).options(opts),
        };
        if let Some(wal) = &self.wal {
            builder = builder.group(Arc::clone(wal));
        }
        if let Some((None, snapshot, suffix)) = parked_entry {
            if let Some(snap) = snapshot {
                builder = builder.snapshot(snap);
            }
            builder = builder.replay(suffix);
        }
        let preds = decl_list(req, "preds").map_err(|e| wire::err("bad-frame", e))?;
        for (pname, arity) in preds {
            builder = builder.pred(&pname, arity as usize);
        }
        let consts = decl_list(req, "consts").map_err(|e| wire::err("bad-frame", e))?;
        for (cname, value) in consts {
            builder = builder.constant(&cname, value);
        }
        let (session, summary) = builder
            .open()
            .map_err(|e| wire::err("engine", e.to_string()))?;
        if had_parked {
            self.parked.lock().expect("parked lock").remove(name);
        }
        Ok((session, summary.resumed))
    }

    fn op_append(&self, req: &Json, frame_bytes: usize) -> Json {
        let Some(slot) = named_session(self, req) else {
            return unknown_session(req);
        };
        // Admission control — refuse before touching the engine.
        let inflight = self.inflight.fetch_add(1, Ordering::SeqCst);
        // RAII decrement on every exit path, including errors.
        let _inflight = InflightGuard(&self.inflight);
        if inflight >= self.limits.max_inflight_appends {
            self.backpressure.fetch_add(1, Ordering::Relaxed);
            return wire::err(
                "backpressure",
                format!(
                    "{} append(s) already in flight (limit {})",
                    inflight, self.limits.max_inflight_appends
                ),
            );
        }
        if let Some(wal) = &self.wal {
            if wal.pending_bytes() > self.limits.max_pending_bytes {
                self.backpressure.fetch_add(1, Ordering::Relaxed);
                return wire::err(
                    "backpressure",
                    format!(
                        "{} staged log byte(s) awaiting flush (limit {})",
                        wal.pending_bytes(),
                        self.limits.max_pending_bytes
                    ),
                );
            }
        }
        // Per-tenant quota, after the global ceilings: one session
        // saturating its own budget answers `quota` without consuming
        // global admission capacity for long.
        let name = req.get("session").and_then(Json::as_str).unwrap_or("");
        let tenant = self.tenant(name);
        let _tenant = match self.admit_tenant(&tenant, frame_bytes) {
            Ok(guard) => guard,
            Err(resp) => return resp,
        };
        let mut guard = slot.lock().expect("session lock");
        let Some(session) = guard.as_mut() else {
            return unknown_session(req);
        };
        let Some(schema) = session.schema() else {
            return wire::err(
                "engine",
                "the session has no schema yet (open it with preds)",
            );
        };
        let tx = match parse_tx(&schema, req) {
            Ok(tx) => tx,
            Err(resp) => return resp,
        };
        let committed = match session.append(&tx) {
            Ok(c) => c,
            Err(e) => return wire::err("engine", e.to_string()),
        };
        drop(guard);
        wire::ok(committed_fields(&committed))
    }

    /// `append_batch`: the `txs` array of transaction objects (each
    /// the same `insert`/`delete`/`ops` shape as `append`) committed
    /// as consecutive states in one constraint sweep —
    /// [`Session::append_batch`], so a group-backed server pays one
    /// commit window for the whole batch and the pooled engine steps
    /// each constraint through all of them without per-transaction
    /// barriers. Admission control counts the batch as one in-flight
    /// append.
    fn op_append_batch(&self, req: &Json, frame_bytes: usize) -> Json {
        let Some(slot) = named_session(self, req) else {
            return unknown_session(req);
        };
        let inflight = self.inflight.fetch_add(1, Ordering::SeqCst);
        let _inflight = InflightGuard(&self.inflight);
        if inflight >= self.limits.max_inflight_appends {
            self.backpressure.fetch_add(1, Ordering::Relaxed);
            return wire::err(
                "backpressure",
                format!(
                    "{} append(s) already in flight (limit {})",
                    inflight, self.limits.max_inflight_appends
                ),
            );
        }
        if let Some(wal) = &self.wal {
            if wal.pending_bytes() > self.limits.max_pending_bytes {
                self.backpressure.fetch_add(1, Ordering::Relaxed);
                return wire::err(
                    "backpressure",
                    format!(
                        "{} staged log byte(s) awaiting flush (limit {})",
                        wal.pending_bytes(),
                        self.limits.max_pending_bytes
                    ),
                );
            }
        }
        let name = req.get("session").and_then(Json::as_str).unwrap_or("");
        let tenant = self.tenant(name);
        let _tenant = match self.admit_tenant(&tenant, frame_bytes) {
            Ok(guard) => guard,
            Err(resp) => return resp,
        };
        let mut guard = slot.lock().expect("session lock");
        let Some(session) = guard.as_mut() else {
            return unknown_session(req);
        };
        let Some(schema) = session.schema() else {
            return wire::err(
                "engine",
                "the session has no schema yet (open it with preds)",
            );
        };
        let Some(items) = req.get("txs").and_then(Json::as_arr) else {
            return wire::err(
                "bad-frame",
                "append_batch needs a \"txs\" array of transaction objects",
            );
        };
        let mut txs = Vec::with_capacity(items.len());
        for item in items {
            match parse_tx(&schema, item) {
                Ok(tx) => txs.push(tx),
                Err(resp) => return resp,
            }
        }
        let committed = match session.append_batch(&txs) {
            Ok(c) => c,
            Err(e) => return wire::err("engine", e.to_string()),
        };
        drop(guard);
        let results: Vec<Json> = committed
            .iter()
            .map(|c| json::obj(committed_fields(c)))
            .collect();
        wire::ok(vec![("results", Json::Arr(results))])
    }

    fn op_status(&self, req: &Json) -> Json {
        let Some(slot) = named_session(self, req) else {
            return unknown_session(req);
        };
        let guard = slot.lock().expect("session lock");
        let Some(session) = guard.as_ref() else {
            return unknown_session(req);
        };
        let constraints: Vec<Json> = session
            .constraints()
            .map(|(id, name, _)| match session.status(id) {
                Status::Satisfied => json::obj(vec![
                    ("name", json::s(name)),
                    ("status", json::s("potentially-satisfied")),
                ]),
                Status::Violated { at } => json::obj(vec![
                    ("name", json::s(name)),
                    ("status", json::s("violated")),
                    ("at", Json::U64(at as u64)),
                ]),
            })
            .collect();
        wire::ok(vec![("constraints", Json::Arr(constraints))])
    }

    fn op_stats(&self, req: &Json) -> String {
        let Some(slot) = named_session(self, req) else {
            return unknown_session(req).render();
        };
        let guard = slot.lock().expect("session lock");
        let Some(session) = guard.as_ref() else {
            return unknown_session(req).render();
        };
        let stats = stats_json_with(&session.stats(), Some(&self.server_stats_json()));
        format!("{{\"ok\":true,\"stats\":{stats}}}")
    }

    fn op_checkpoint(&self, req: &Json) -> Json {
        let Some(slot) = named_session(self, req) else {
            return unknown_session(req);
        };
        let mut guard = slot.lock().expect("session lock");
        let Some(session) = guard.as_mut() else {
            return unknown_session(req);
        };
        match session.checkpoint() {
            Ok(bytes) => wire::ok(vec![("bytes", Json::U64(bytes))]),
            Err(e) => wire::err("engine", e.to_string()),
        }
    }

    fn op_close(&self, req: &Json) -> Json {
        let Some(name) = req.get("session").and_then(Json::as_str) else {
            return wire::err("bad-frame", "close needs a \"session\" name");
        };
        let Some(slot) = self.session(name) else {
            return unknown_session(req);
        };
        let mut guard = slot.lock().expect("session lock");
        let Some(session) = guard.as_mut() else {
            return unknown_session(req);
        };
        // Checkpoint and flush in place: on failure the session stays
        // open and usable rather than being dropped with its state.
        let snapshot = match session.close_snapshot() {
            Ok(snapshot) => snapshot,
            Err(e) => return wire::err("engine", e.to_string()),
        };
        *guard = None;
        // Park the closing checkpoint before the name leaves the
        // registry, all under the slot lock: a concurrent open of this
        // name blocks on the slot until the parked entry exists, so a
        // reopen resumes from the checkpointed state instead of
        // binding a fresh empty session to the same group-log id
        // (which would lose the served state live and splice it with
        // new transactions on crash recovery).
        if let Some(snap) = snapshot {
            self.parked.lock().expect("parked lock").insert(
                name.to_owned(),
                Parked {
                    snapshot: Some(snap),
                    suffix: Vec::new(),
                    resume: None,
                },
            );
        }
        {
            let mut sessions = self.sessions.lock().expect("sessions lock");
            if sessions.get(name).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                sessions.remove(name);
            }
        }
        // A closed tenant's quota state goes with it; a later open of
        // the same name starts from the server defaults.
        self.tenants.lock().expect("tenants lock").remove(name);
        drop(guard);
        wire::ok(vec![("session", json::s(name))])
    }

    /// Transparently revives an idle-parked session so the op that
    /// named it proceeds as if the session had never left memory.
    /// Only the idle sweep's entries (`resume: Some`) revive this way:
    /// an explicitly closed or crash-recovered session still requires
    /// an `open`, exactly as before parking existed. Returns the live
    /// slot, or `None` when nothing idle-parked holds the name. Uses
    /// the same placeholder-slot discipline as `op_open`, so racing
    /// revives and opens serialize on the slot lock, never the
    /// registry lock.
    fn revive_parked(&self, name: &str) -> Option<Slot> {
        {
            let parked = self.parked.lock().expect("parked lock");
            match parked.get(name) {
                Some(p) if p.resume.is_some() => {}
                _ => return None,
            }
        }
        for _ in 0..8 {
            let (slot, fresh) = {
                let mut sessions = self.sessions.lock().expect("sessions lock");
                match sessions.get(name) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        if sessions.len() >= self.limits.max_sessions {
                            return None;
                        }
                        let slot: Slot = Arc::new(Mutex::new(None));
                        sessions.insert(name.to_owned(), Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            let mut guard = slot.lock().expect("session lock");
            if guard.is_none() {
                if !fresh {
                    drop(guard);
                    std::thread::yield_now();
                    continue;
                }
                // Re-check now that we own the placeholder: a racing
                // open may have consumed the parked entry while we
                // were acquiring the slot. Building from nothing here
                // would conjure a fresh empty session under a name
                // that had state.
                let still_parked = self
                    .parked
                    .lock()
                    .expect("parked lock")
                    .get(name)
                    .is_some_and(|p| p.resume.is_some());
                if !still_parked {
                    drop(guard);
                    let mut sessions = self.sessions.lock().expect("sessions lock");
                    if sessions.get(name).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                        sessions.remove(name);
                    }
                    return None;
                }
                // A bare revive carries no declarations — rebuild from
                // the parked state alone (an empty request object).
                let empty = json::obj(vec![]);
                match self.build_session(name, &empty) {
                    Ok((session, _)) => {
                        *guard = Some(session);
                        self.resumes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        drop(guard);
                        let mut sessions = self.sessions.lock().expect("sessions lock");
                        if sessions.get(name).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                            sessions.remove(name);
                        }
                        return None;
                    }
                }
            }
            drop(guard);
            return Some(slot);
        }
        None
    }

    /// Parks sessions idle for at least `idle_for`: checkpoint to
    /// snapshot bytes ([`Session::park`]), drop the live session, and
    /// hold the bytes for transparent resume. Busy sessions (slot
    /// locked, staged ops, inflight requests) are skipped — the sweep
    /// never blocks serving. Returns how many sessions were parked.
    pub fn park_idle_sessions(&self, idle_for: Duration) -> usize {
        let now = self.now_ms();
        let idle_ms = idle_for.as_millis() as u64;
        let candidates: Vec<(String, Slot)> = {
            let sessions = self.sessions.lock().expect("sessions lock");
            sessions
                .iter()
                .map(|(n, s)| (n.clone(), Arc::clone(s)))
                .collect()
        };
        let mut parked_count = 0;
        for (name, slot) in candidates {
            // Idleness is tenant state: any inflight request or a
            // recent op keeps the session resident.
            let idle = {
                let tenants = self.tenants.lock().expect("tenants lock");
                match tenants.get(&name) {
                    Some(t) => {
                        t.inflight.load(Ordering::SeqCst) == 0
                            && now.saturating_sub(t.last_op_ms.load(Ordering::Relaxed)) >= idle_ms
                    }
                    // No tenant record (opened before quotas existed
                    // in this process — cannot happen — or raced with
                    // close): leave it alone.
                    None => false,
                }
            };
            if !idle {
                continue;
            }
            // try_lock: a busy session is by definition not idle.
            let Ok(mut guard) = slot.try_lock() else {
                continue;
            };
            let Some(session) = guard.as_mut() else {
                continue;
            };
            // Re-check under the slot lock — an op may have landed
            // between the tenant check and the lock.
            {
                let tenants = self.tenants.lock().expect("tenants lock");
                let still_idle = tenants.get(&name).is_some_and(|t| {
                    t.inflight.load(Ordering::SeqCst) == 0
                        && now.saturating_sub(t.last_op_ms.load(Ordering::Relaxed)) >= idle_ms
                });
                if !still_idle {
                    continue;
                }
            }
            let ps = match session.park() {
                Ok(ps) => ps,
                // Unparkable (never froze a schema, staged ops):
                // leave it resident.
                Err(_) => continue,
            };
            *guard = None;
            // Same ordering as op_close: the parked entry exists
            // before the name leaves the registry, all under the slot
            // lock, so a racing op revives from the parked bytes
            // instead of finding nothing.
            self.parked.lock().expect("parked lock").insert(
                name.clone(),
                Parked {
                    snapshot: None,
                    suffix: Vec::new(),
                    resume: Some(ps),
                },
            );
            {
                let mut sessions = self.sessions.lock().expect("sessions lock");
                if sessions.get(&name).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                    sessions.remove(&name);
                }
            }
            drop(guard);
            self.parks.fetch_add(1, Ordering::Relaxed);
            parked_count += 1;
        }
        parked_count
    }

    fn op_shutdown(&self, checkpoint: bool) -> Json {
        if checkpoint {
            let slots: Vec<Slot> = self
                .sessions
                .lock()
                .expect("sessions lock")
                .values()
                .cloned()
                .collect();
            for slot in slots {
                let mut guard = slot.lock().expect("session lock");
                let Some(session) = guard.as_mut() else {
                    continue;
                };
                if session.has_store() && session.history().is_some() {
                    if let Err(e) = session.checkpoint() {
                        return wire::err("engine", format!("shutdown checkpoint failed: {e}"));
                    }
                }
            }
        }
        if let Some(wal) = &self.wal {
            if let Err(e) = wal.flush() {
                return wire::err("engine", format!("final flush failed: {e}"));
            }
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so the process can exit.
        if let Some(addr) = self.addr.get() {
            let _ = TcpStream::connect(addr);
        }
        wire::ok(vec![("stopping", Json::Bool(true))])
    }

    /// Serves connections until a `shutdown` op arrives. Returns the
    /// bound address immediately; join the handle to wait for exit.
    pub fn start(server: Arc<Server>, listener: TcpListener) -> std::io::Result<Running> {
        let addr = listener.local_addr()?;
        let _ = server.addr.set(addr);
        let accept_server = Arc::clone(&server);
        let handle = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_server.is_shutting_down() {
                    break;
                }
                // Reap finished connection threads so a long-lived
                // server's handle list tracks live connections, not
                // every connection it ever accepted.
                conns.retain(|c| !c.is_finished());
                let Ok(stream) = stream else { continue };
                let conn_server = Arc::clone(&accept_server);
                conns.push(std::thread::spawn(move || conn_server.handle_conn(stream)));
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(Running {
            addr,
            server,
            handle,
        })
    }

    fn handle_conn(self: Arc<Self>, stream: TcpStream) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        // This thread is one worker of a pool of `limits.workers`:
        // clamp Threads::Auto engines to their share of the machine.
        set_pool_peers(self.limits.workers);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let mut hello_done = false;
        loop {
            let req = match wire::read_json(&mut reader, self.limits.max_frame_bytes) {
                Ok(Some(Ok(req))) => req,
                Ok(Some(Err(parse_err))) => {
                    let resp = wire::err("parse", parse_err);
                    if wire::write_json(&mut writer, &resp).is_err() {
                        return;
                    }
                    continue;
                }
                Ok(None) | Err(_) => return,
            };
            let (resp, stop) = self.dispatch(&req, &mut hello_done);
            if wire::write_frame(&mut writer, resp.as_bytes()).is_err() {
                return;
            }
            if stop {
                return;
            }
        }
    }
}

/// A started server: its bound address plus the accept-loop handle.
pub struct Running {
    pub addr: SocketAddr,
    pub server: Arc<Server>,
    handle: JoinHandle<()>,
}

impl Running {
    /// Blocks until the accept loop exits (a client sent `shutdown`).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn named_session(server: &Server, req: &Json) -> Option<Slot> {
    let name = req.get("session").and_then(Json::as_str)?;
    // Transparent resume: a name that is not live but is parked (idle
    // sweep, clean close, crash recovery) revives before the op runs —
    // clients never observe parking.
    server.session(name).or_else(|| server.revive_parked(name))
}

fn unknown_session(req: &Json) -> Json {
    match req.get("session").and_then(Json::as_str) {
        Some(name) => wire::err("unknown-session", format!("no open session named '{name}'")),
        None => wire::err("bad-frame", "missing \"session\" name"),
    }
}

/// Parses one transaction description against the schema. Facts use
/// the store codec's text grammar. Two spellings: unordered
/// `insert`/`delete` arrays (inserts apply first), or the ordered
/// `ops` array of `[verb, fact]` pairs for transactions where
/// intra-transaction order matters. The same shape serves the
/// top-level `append` request and each entry of `append_batch`'s
/// `txs` array.
fn parse_tx(schema: &ticc_tdb::Schema, src: &Json) -> Result<Transaction, Json> {
    let mut ops: Vec<(bool, &str)> = Vec::new();
    for (field, insert) in [("insert", true), ("delete", false)] {
        let Some(items) = src.get(field) else {
            continue;
        };
        let Some(items) = items.as_arr() else {
            return Err(wire::err(
                "bad-frame",
                format!("\"{field}\" must be an array of facts"),
            ));
        };
        for item in items {
            let Some(fact) = item.as_str() else {
                return Err(wire::err(
                    "bad-frame",
                    format!("\"{field}\" entries are \"Pred(v,…)\" strings"),
                ));
            };
            ops.push((insert, fact));
        }
    }
    if let Some(items) = src.get("ops") {
        let Some(items) = items.as_arr() else {
            return Err(wire::err(
                "bad-frame",
                "\"ops\" must be an array of [verb, fact] pairs",
            ));
        };
        for item in items {
            let Some([verb, fact]) = item.as_arr() else {
                return Err(wire::err(
                    "bad-frame",
                    "\"ops\" entries are [verb, fact] pairs",
                ));
            };
            let (Some(verb), Some(fact)) = (verb.as_str(), fact.as_str()) else {
                return Err(wire::err(
                    "bad-frame",
                    "\"ops\" entries are [verb, fact] string pairs",
                ));
            };
            let insert = match verb {
                "insert" | "+" => true,
                "delete" | "-" => false,
                other => {
                    return Err(wire::err(
                        "bad-frame",
                        format!("\"ops\" verb is insert/+/delete/-, got '{other}'"),
                    ))
                }
            };
            ops.push((insert, fact));
        }
    }
    let mut tx = Transaction::new();
    for (insert, fact) in ops {
        let (pred, tuple) = match parse_fact(schema, fact) {
            Ok(parsed) => parsed,
            Err(e) => return Err(wire::err("bad-frame", e)),
        };
        tx = if insert {
            tx.insert(pred, tuple)
        } else {
            tx.delete(pred, tuple)
        };
    }
    Ok(tx)
}

/// Renders one committed state as the wire's `t`/`events`/`fired`
/// fields (the `append` response body; one `results` entry for
/// `append_batch`).
fn committed_fields(committed: &Committed) -> Vec<(&'static str, Json)> {
    let events: Vec<Json> = committed
        .events
        .iter()
        .map(|e| {
            json::obj(vec![
                ("constraint", json::s(&e.name)),
                ("at", Json::U64(e.at as u64)),
            ])
        })
        .collect();
    let fired: Vec<Json> = committed
        .fired
        .iter()
        .map(|f| {
            let subst: Vec<(String, Json)> = f
                .substitution
                .iter()
                .map(|(v, val)| (v.clone(), Json::U64(*val)))
                .collect();
            json::obj(vec![
                ("trigger", json::s(&f.name)),
                ("subst", Json::Obj(subst)),
            ])
        })
        .collect();
    vec![
        ("t", Json::U64(committed.t as u64)),
        ("events", Json::Arr(events)),
        ("fired", Json::Arr(fired)),
    ]
}

/// Reads `[["name", n], …]` declaration lists from a request field.
fn decl_list(req: &Json, field: &str) -> Result<Vec<(String, Value)>, String> {
    let Some(items) = req.get(field) else {
        return Ok(Vec::new());
    };
    let Some(items) = items.as_arr() else {
        return Err(format!(
            "\"{field}\" must be an array of [name, value] pairs"
        ));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let pair = item
            .as_arr()
            .ok_or_else(|| format!("\"{field}\" entries are [name, value] pairs"))?;
        let [name, value] = pair else {
            return Err(format!("\"{field}\" entries are [name, value] pairs"));
        };
        let name = name
            .as_str()
            .ok_or_else(|| format!("\"{field}\" names are strings"))?;
        let value = value
            .as_u64()
            .ok_or_else(|| format!("\"{field}\" values are non-negative integers"))?;
        out.push((name.to_owned(), value));
    }
    Ok(out)
}

/// Registers the request's `constraints`/`triggers` (name + formula
/// source) on the session, skipping names it already has.
fn register_formulas(session: &mut Session, req: &Json) -> Result<(), Json> {
    for (field, is_constraint) in [("constraints", true), ("triggers", false)] {
        let Some(items) = req.get(field) else {
            continue;
        };
        let Some(items) = items.as_arr() else {
            return Err(wire::err(
                "bad-frame",
                format!("\"{field}\" must be an array of [name, formula] pairs"),
            ));
        };
        for item in items {
            let Some([name, src]) = item.as_arr() else {
                return Err(wire::err(
                    "bad-frame",
                    format!("\"{field}\" entries are [name, formula] pairs"),
                ));
            };
            let (Some(name), Some(src)) = (name.as_str(), src.as_str()) else {
                return Err(wire::err(
                    "bad-frame",
                    format!("\"{field}\" entries are [name, formula] pairs"),
                ));
            };
            let already = if is_constraint {
                session.constraints().any(|(_, n, _)| n == name)
            } else {
                session.trigger_defs().iter().any(|(n, _)| n == name)
            };
            if already {
                continue;
            }
            session
                .freeze()
                .map_err(|e| wire::err("engine", e.to_string()))?;
            let schema = session
                .schema()
                .ok_or_else(|| wire::err("engine", "no schema to parse against"))?;
            let phi =
                parse_formula(&schema, src).map_err(|e| wire::err("engine", e.to_string()))?;
            let result = if is_constraint {
                session.add_constraint(name, phi).map(|_| ())
            } else {
                session.add_trigger(name, phi)
            };
            result.map_err(|e| wire::err("engine", e.to_string()))?;
        }
    }
    Ok(())
}

/// Accept-and-upgrade reader for engine stats documents: v2 passes
/// through, v1 (`ticc-engine-stats-v1`, which predates the `session`
/// and `server` objects) is upgraded in place — schema rewritten,
/// missing objects added as `null`. Anything else is refused.
pub fn upgrade_stats(doc: &Json) -> Result<Json, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "stats document has no \"schema\" field".to_owned())?;
    match schema {
        s if s == STATS_SCHEMA => Ok(doc.clone()),
        s if s == STATS_SCHEMA_V1 => {
            let Json::Obj(pairs) = doc else {
                return Err("stats document is not an object".to_owned());
            };
            let mut pairs = pairs.clone();
            for (k, v) in &mut pairs {
                if k == "schema" {
                    *v = json::s(STATS_SCHEMA);
                }
            }
            for key in ["session", "server"] {
                if doc.get(key).is_none() {
                    pairs.push((key.to_owned(), Json::Null));
                }
            }
            Ok(Json::Obj(pairs))
        }
        other => Err(format!(
            "unknown stats schema '{other}' (this reader speaks {STATS_SCHEMA} and upgrades {STATS_SCHEMA_V1})"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, BufWriter};

    fn request(server: &Server, hello: &mut bool, src: &str) -> Json {
        let req = json::parse(src).unwrap();
        let (resp, _) = server.dispatch(&req, hello);
        json::parse(&resp).unwrap()
    }

    fn ok_true(resp: &Json) -> bool {
        resp.get("ok").and_then(Json::as_bool) == Some(true)
    }

    #[test]
    fn handshake_is_mandatory_and_versioned() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = false;
        let r = request(&server, &mut hello, r#"{"op":"open","session":"a"}"#);
        assert!(!ok_true(&r));
        assert_eq!(r.get("code").unwrap().as_str(), Some("bad-frame"));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"hello","schema":"ticc-wire-v99"}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("unsupported-schema"));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"hello","schema":"ticc-wire-v1"}"#,
        );
        assert!(ok_true(&r), "{r:?}");
        assert_eq!(r.get("schema").unwrap().as_str(), Some("ticc-wire-v1"));
    }

    #[test]
    fn open_append_violation_status_round_trip() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","forall x. G (Sub(x) -> X G !Sub(x))"]],"triggers":[["dup","F (Sub(x) & X F Sub(x))"]]}"#,
        );
        assert!(ok_true(&r), "{r:?}");
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#,
        );
        assert!(ok_true(&r), "{r:?}");
        assert_eq!(r.get("t").unwrap().as_u64(), Some(0));
        assert_eq!(r.get("events").unwrap().as_arr().unwrap().len(), 0);
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","delete":["Sub(1)"]}"#,
        );
        assert!(ok_true(&r), "{r:?}");
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#,
        );
        let events = r.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1, "resubmission violates: {r:?}");
        assert_eq!(events[0].get("constraint").unwrap().as_str(), Some("once"));
        let fired = r.get("fired").unwrap().as_arr().unwrap();
        assert_eq!(fired[0].get("trigger").unwrap().as_str(), Some("dup"));
        assert_eq!(
            fired[0].get("subst").unwrap().get("x").unwrap().as_u64(),
            Some(1)
        );
        let r = request(&server, &mut hello, r#"{"op":"status","session":"a"}"#);
        let cs = r.get("constraints").unwrap().as_arr().unwrap();
        assert_eq!(cs[0].get("status").unwrap().as_str(), Some("violated"));
    }

    #[test]
    fn open_history_window_bounds_the_session() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["cap","G !Sub(999)"]],"history_window":2}"#,
        );
        assert!(ok_true(&r), "{r:?}");
        // Steady churn: enough appends for the window(2) budget to
        // truncate (hysteresis fires past 2x the target).
        for i in 0..12u64 {
            let req = if i == 0 {
                r#"{"op":"append","session":"a","insert":["Sub(0)"]}"#.to_owned()
            } else {
                format!(
                    r#"{{"op":"append","session":"a","ops":[["-","Sub({})"],["+","Sub({i})"]]}}"#,
                    i - 1
                )
            };
            let r = request(&server, &mut hello, &req);
            assert!(ok_true(&r), "{r:?}");
        }
        let r = request(&server, &mut hello, r#"{"op":"stats","session":"a"}"#);
        let hist = r.get("stats").unwrap().get("history").unwrap();
        let spilled = hist.get("spilled_instants").unwrap().as_u64().unwrap();
        let resident = hist.get("resident_states").unwrap().as_u64().unwrap();
        assert!(
            hist.get("truncations").unwrap().as_u64().unwrap() > 0,
            "window(2) session should have truncated: {hist:?}"
        );
        assert_eq!(spilled + resident, 12, "every instant resident or spilled");
        // The budget is per-session: a second tenant opened without
        // the knob stays unbounded.
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"b","preds":[["Sub",1]]}"#
        )));
        for _ in 0..12 {
            let r = request(
                &server,
                &mut hello,
                r#"{"op":"append","session":"b","ops":[["+","Sub(1)"],["-","Sub(1)"]]}"#,
            );
            assert!(ok_true(&r), "{r:?}");
        }
        let r = request(&server, &mut hello, r#"{"op":"stats","session":"b"}"#);
        let hist = r.get("stats").unwrap().get("history").unwrap();
        assert_eq!(hist.get("truncations").unwrap().as_u64(), Some(0));
        assert_eq!(hist.get("spilled_instants").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn append_batch_commits_consecutive_states() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","forall x. G (Sub(x) -> X G !Sub(x))"]]}"#
        )));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append_batch","session":"a","txs":[
                {"insert":["Sub(1)"]},
                {"delete":["Sub(1)"],"insert":["Sub(2)"]},
                {"delete":["Sub(2)"],"insert":["Sub(1)"]}]}"#,
        );
        assert!(ok_true(&r), "{r:?}");
        let results = r.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("t").unwrap().as_u64(), Some(0));
        assert_eq!(results[0].get("events").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(results[2].get("t").unwrap().as_u64(), Some(2));
        let events = results[2].get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1, "re-submission violates: {r:?}");
        assert_eq!(events[0].get("constraint").unwrap().as_str(), Some("once"));
        // Malformed entries refuse the whole batch before any commit.
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append_batch","session":"a","txs":[{"insert":[7]}]}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("bad-frame"));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append_batch","session":"a"}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("bad-frame"));
    }

    #[test]
    fn admission_control_answers_backpressure_and_limits() {
        let limits = Limits {
            max_sessions: 1,
            max_inflight_appends: 0,
            ..Limits::default()
        };
        let server = Server::new(CheckOptions::default(), limits);
        let mut hello = true;
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["P",1]]}"#
        )));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"b","preds":[["P",1]]}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("session-limit"));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["P(1)"]}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("backpressure"));
        // Rejections must not leak inflight slots.
        assert_eq!(server.inflight.load(Ordering::SeqCst), 0);
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"ghost","insert":["P(1)"]}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("unknown-session"));
    }

    #[test]
    fn close_then_reopen_ephemeral_is_fresh() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["P",1]]}"#
        )));
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["P(1)"]}"#
        )));
        let r = request(&server, &mut hello, r#"{"op":"close","session":"a"}"#);
        assert!(ok_true(&r), "{r:?}");
        // Closed means gone: ops answer unknown-session, and a second
        // close does too.
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["P(1)"]}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("unknown-session"));
        let r = request(&server, &mut hello, r#"{"op":"close","session":"a"}"#);
        assert_eq!(r.get("code").unwrap().as_str(), Some("unknown-session"));
        // No durable backend, so the reopen starts fresh.
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["P",1]]}"#,
        );
        assert!(ok_true(&r), "{r:?}");
        assert_eq!(r.get("resumed").unwrap().as_bool(), Some(false));
        assert_eq!(r.get("states").unwrap().as_u64(), Some(0));
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ticc-server-{tag}-{}.wal", std::process::id()))
    }

    #[test]
    fn close_parks_wal_backed_session_for_reopen() {
        use ticc_core::Durability;
        let path = tmp("close-park");
        let _ = std::fs::remove_file(&path);
        let opts = CheckOptions::builder()
            .durability(Durability::WalFsync)
            .build();
        let server = Server::with_wal(opts, Limits::default(), &path).unwrap();
        let mut hello = true;
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","forall x. G (Sub(x) -> X G !Sub(x))"]]}"#
        )));
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#
        )));
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"close","session":"a"}"#
        )));
        // The closing checkpoint is parked: the live reopen resumes
        // the durably checkpointed state (schema, history, constraint
        // residues) instead of binding a fresh empty session to the
        // same group-log id.
        assert_eq!(server.parked_sessions(), vec!["a".to_owned()]);
        let r = request(&server, &mut hello, r#"{"op":"open","session":"a"}"#);
        assert!(ok_true(&r), "{r:?}");
        assert_eq!(r.get("resumed").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("states").unwrap().as_u64(), Some(1));
        assert_eq!(r.get("constraints").unwrap().as_u64(), Some(1));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#,
        );
        assert_eq!(
            r.get("events").unwrap().as_arr().unwrap().len(),
            1,
            "restored constraint catches the resubmission: {r:?}"
        );
        // Crash-recovered state matches the served state: snapshot
        // plus the reopened session's logged transaction, nothing
        // merged from a phantom fresh session.
        drop(server);
        let server = Server::with_wal(opts, Limits::default(), &path).unwrap();
        assert_eq!(server.parked_sessions(), vec!["a".to_owned()]);
        let r = request(&server, &mut hello, r#"{"op":"open","session":"a"}"#);
        assert!(ok_true(&r), "{r:?}");
        assert_eq!(r.get("resumed").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("states").unwrap().as_u64(), Some(2));
        assert_eq!(r.get("constraints").unwrap().as_u64(), Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_carry_the_server_object() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["P",1]]}"#,
        );
        request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["P(1)"]}"#,
        );
        let r = request(&server, &mut hello, r#"{"op":"stats","session":"a"}"#);
        assert!(ok_true(&r), "{r:?}");
        let stats = r.get("stats").unwrap();
        assert_eq!(stats.get("schema").unwrap().as_str(), Some(STATS_SCHEMA));
        assert_eq!(stats.get("appends").unwrap().as_u64(), Some(1));
        let sv = stats.get("server").unwrap();
        assert_eq!(sv.get("sessions").unwrap().as_u64(), Some(1));
        assert_eq!(sv.get("schema").unwrap().as_str(), Some(wire::WIRE_SCHEMA));
        assert_eq!(sv.get("group"), Some(&Json::Null), "ephemeral server");
    }

    #[test]
    fn v1_stats_documents_upgrade() {
        let v1 =
            json::parse(r#"{"schema":"ticc-engine-stats-v1","appends":7,"store":{"tx_frames":1}}"#)
                .unwrap();
        let up = upgrade_stats(&v1).unwrap();
        assert_eq!(up.get("schema").unwrap().as_str(), Some(STATS_SCHEMA));
        assert_eq!(up.get("appends").unwrap().as_u64(), Some(7));
        assert_eq!(up.get("session"), Some(&Json::Null));
        assert_eq!(up.get("server"), Some(&Json::Null));
        // v2 passes through untouched; unknown schemas are refused.
        assert_eq!(upgrade_stats(&up).unwrap(), up);
        let v9 = json::parse(r#"{"schema":"ticc-engine-stats-v9"}"#).unwrap();
        assert!(upgrade_stats(&v9).is_err());
    }

    #[test]
    fn per_tenant_quota_refuses_with_quota_code() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        // A tenant that allows itself zero inflight appends: every
        // append answers `quota`, its neighbour keeps committing.
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"starved","preds":[["P",1]],"max_inflight":0}"#
        )));
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"fine","preds":[["P",1]]}"#
        )));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"starved","insert":["P(1)"]}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("quota"), "{r:?}");
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"fine","insert":["P(1)"]}"#,
        );
        assert!(ok_true(&r), "neighbour unaffected: {r:?}");
        // Byte quota: a 1-byte budget refuses any real frame. The
        // refusal must release its reservation — a later re-open with
        // a sane budget commits.
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"starved","max_pending_bytes":1,"max_inflight":8}"#
        )));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"starved","insert":["P(1)"]}"#,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("quota"), "{r:?}");
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"starved","max_pending_bytes":1000000}"#
        )));
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"starved","insert":["P(1)"]}"#,
        );
        assert!(ok_true(&r), "refusals released their budget: {r:?}");
        assert!(server.quota_refusals.load(Ordering::Relaxed) >= 2);
        // Quota values clamp to the global ceilings.
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"greedy","max_inflight":99999999}"#
        )));
        let t = server.tenant("greedy");
        assert_eq!(
            t.max_inflight.load(Ordering::Relaxed),
            server.limits.max_inflight_appends
        );
    }

    #[test]
    fn idle_sessions_park_and_resume_transparently() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","forall x. G (Sub(x) -> X G !Sub(x))"]]}"#
        )));
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#
        )));
        // Zero idle deadline: everything idle parks right now.
        assert_eq!(server.park_idle_sessions(Duration::ZERO), 1);
        assert_eq!(server.parks.load(Ordering::Relaxed), 1);
        assert_eq!(server.sessions.lock().unwrap().len(), 0, "not resident");
        assert_eq!(server.parked_sessions(), vec!["a".to_owned()]);
        // The next op revives it transparently — same history, same
        // constraint residues, no explicit open.
        let r = request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#,
        );
        assert!(ok_true(&r), "transparent resume: {r:?}");
        assert_eq!(r.get("t").unwrap().as_u64(), Some(1));
        assert_eq!(
            r.get("events").unwrap().as_arr().unwrap().len(),
            1,
            "resumed constraint catches the resubmission: {r:?}"
        );
        assert_eq!(server.resumes.load(Ordering::Relaxed), 1);
        assert!(server.parked_sessions().is_empty(), "entry consumed");
        // Counters survive the park/resume cycle (the stats document
        // reports lifetime commits, not since-resume commits).
        let r = request(&server, &mut hello, r#"{"op":"stats","session":"a"}"#);
        let stats = r.get("stats").unwrap();
        assert_eq!(
            stats
                .get("session")
                .unwrap()
                .get("commits")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        // A busy (recently touched) session does not park under a
        // real deadline.
        assert_eq!(server.park_idle_sessions(Duration::from_secs(3600)), 0);
        assert_eq!(server.sessions.lock().unwrap().len(), 1, "still resident");
    }

    #[test]
    fn explicit_open_also_resumes_an_idle_parked_session() {
        let server = Server::new(CheckOptions::default(), Limits::default());
        let mut hello = true;
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"open","session":"a","preds":[["P",1]]}"#
        )));
        assert!(ok_true(&request(
            &server,
            &mut hello,
            r#"{"op":"append","session":"a","insert":["P(1)"]}"#
        )));
        assert_eq!(server.park_idle_sessions(Duration::ZERO), 1);
        let r = request(&server, &mut hello, r#"{"op":"open","session":"a"}"#);
        assert!(ok_true(&r), "{r:?}");
        assert_eq!(r.get("resumed").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("states").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn served_over_tcp_end_to_end() {
        let server = Arc::new(Server::new(CheckOptions::default(), Limits::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let running = Server::start(Arc::clone(&server), listener).unwrap();
        let stream = TcpStream::connect(running.addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut ask = |src: &str| -> Json {
            wire::write_frame(&mut writer, src.as_bytes()).unwrap();
            let bytes = wire::read_frame(&mut reader, 1 << 20).unwrap().unwrap();
            json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap()
        };
        assert!(ok_true(&ask(r#"{"op":"hello","schema":"ticc-wire-v1"}"#)));
        assert!(ok_true(&ask(
            r#"{"op":"open","session":"a","preds":[["P",1]],"constraints":[["cap","G !P(9)"]]}"#
        )));
        let r = ask(r#"{"op":"append","session":"a","insert":["P(9)"]}"#);
        assert_eq!(r.get("events").unwrap().as_arr().unwrap().len(), 1);
        // A malformed frame gets a parse error, then the connection keeps working.
        let r = ask("{not json");
        assert_eq!(r.get("code").unwrap().as_str(), Some("parse"));
        let r = ask(r#"{"op":"status","session":"a"}"#);
        assert!(ok_true(&r));
        assert!(ok_true(&ask(r#"{"op":"shutdown"}"#)));
        running.join();
    }
}
