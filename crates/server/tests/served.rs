//! Served-vs-in-process equivalence and crash fault injection.
//!
//! The server must be a transparent multiplexer: a session driven over
//! the wire (JSON frames, group-commit WAL, admission control) must
//! produce **bit-identical** events and stats to the same transaction
//! sequence driven through an in-process [`Session`] — 120 seeded
//! random workloads check exactly that. And a crash mid-commit-window
//! must honour the store layer's ack contract end to end: no
//! acknowledged append may be lost, unacknowledged ones may be.

use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use ticc_core::{CheckOptions, Durability, Session};
use ticc_fotl::parser::parse;
use ticc_server::json::{self, Json};
use ticc_server::{wire, Limits, Server};
use ticc_tdb::Transaction;

const CONSTRAINT: &str = "forall x. G (Sub(x) -> X G !Sub(x))";
const TRIGGER: &str = "F (Sub(x) & X F Sub(x))";

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One pseudo-random workload: per commit, 1–2 insert/delete ops over
/// Sub with values in 0..3.
fn workload(seed: u64) -> Vec<Vec<(bool, u64)>> {
    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let commits = 3 + (splitmix64(&mut rng) % 4) as usize;
    (0..commits)
        .map(|_| {
            let ops = 1 + (splitmix64(&mut rng) % 2) as usize;
            (0..ops)
                .map(|_| {
                    let insert = !splitmix64(&mut rng).is_multiple_of(3);
                    let value = splitmix64(&mut rng) % 3;
                    (insert, value)
                })
                .collect()
        })
        .collect()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        };
        let r = c.ask(r#"{"op":"hello","schema":"ticc-wire-v1"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        c
    }

    fn ask(&mut self, payload: &str) -> Json {
        wire::write_frame(&mut self.writer, payload.as_bytes()).unwrap();
        let bytes = wire::read_frame(&mut self.reader, 8 << 20)
            .unwrap()
            .unwrap();
        json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap()
    }

    fn ok(&mut self, payload: &str) -> Json {
        let r = self.ask(payload);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{payload} -> {r:?}");
        r
    }
}

/// Strips everything legitimately allowed to differ between a served
/// and an in-process run: wall-clock timers (`*_ns`), the physical
/// store counters, the injected `server` object, and the `durable`
/// flag.
fn strip_volatile(v: &Json) -> Json {
    match v {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| {
                    !k.ends_with("_ns") && k != "store" && k != "server" && k != "durable"
                })
                .map(|(k, val)| (k.clone(), strip_volatile(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

/// Renders a committed step as comparable JSON (the wire's own shape).
fn step_json(t: usize, events: &[(String, usize)], fired: &[(String, Vec<(String, u64)>)]) -> Json {
    json::obj(vec![
        ("t", Json::U64(t as u64)),
        (
            "events",
            Json::Arr(
                events
                    .iter()
                    .map(|(name, at)| {
                        json::obj(vec![
                            ("constraint", json::s(name.clone())),
                            ("at", Json::U64(*at as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fired",
            Json::Arr(
                fired
                    .iter()
                    .map(|(name, subst)| {
                        json::obj(vec![
                            ("trigger", json::s(name.clone())),
                            (
                                "subst",
                                Json::Obj(
                                    subst
                                        .iter()
                                        .map(|(v, val)| (v.clone(), Json::U64(*val)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// How the determinism suite serves its connections.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Legacy thread-per-connection loop.
    Legacy,
    /// Event-driven `poll(2)` multiplexer.
    Mux,
    /// Multiplexer, with every session force-parked mid-stream after
    /// its second commit — the suite then also proves transparent
    /// resume preserves the event stream bit for bit.
    MuxForcedParking,
}

/// The served-vs-in-process determinism suite: 120 seeded workloads,
/// each driven over the wire and through an in-process [`Session`],
/// asserting bit-identical event streams (and, when no forced parking
/// perturbs engine counters, bit-identical stats documents).
fn determinism_suite(tag: &str, mode: Mode) {
    let wal_path = std::env::temp_dir().join(format!(
        "ticc-served-determinism-{tag}-{}.gwal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal_path);
    let opts = CheckOptions::builder()
        .durability(Durability::WalFsync)
        .build();
    let server = Arc::new(Server::with_wal(opts, Limits::default(), &wal_path).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let running = match mode {
        Mode::Legacy => Server::start(Arc::clone(&server), listener).unwrap(),
        Mode::Mux | Mode::MuxForcedParking => {
            ticc_server::mux::start_mux(Arc::clone(&server), listener).unwrap()
        }
    };
    let mut client = Client::connect(running.addr);

    for seed in 0..120u64 {
        let script = workload(seed);
        let name = format!("s{seed}");

        // Served run.
        let open = format!(
            r#"{{"op":"open","session":"{name}","preds":[["Sub",1]],"constraints":[["once","{CONSTRAINT}"]],"triggers":[["dup","{TRIGGER}"]]}}"#
        );
        client.ok(&open);
        let mut served_steps = Vec::new();
        for (i, commit) in script.iter().enumerate() {
            if mode == Mode::MuxForcedParking && i == 2 {
                // Force the idle sweep mid-stream: the session leaves
                // memory as parked snapshot bytes, and the next append
                // below must revive it with nothing observably
                // different.
                let parked = running.server.park_idle_sessions(std::time::Duration::ZERO);
                assert!(parked >= 1, "seed {seed}: nothing parked mid-stream");
            }
            // The ordered `ops` spelling: intra-transaction order is
            // part of the workload's semantics.
            let ops: Vec<String> = commit
                .iter()
                .map(|(ins, v)| format!("[\"{}\",\"Sub({v})\"]", if *ins { "+" } else { "-" }))
                .collect();
            let req = format!(
                r#"{{"op":"append","session":"{name}","ops":[{}]}}"#,
                ops.join(",")
            );
            let r = client.ok(&req);
            served_steps.push(json::obj(vec![
                ("t", r.get("t").unwrap().clone()),
                ("events", r.get("events").unwrap().clone()),
                ("fired", r.get("fired").unwrap().clone()),
            ]));
        }
        let served_stats = strip_volatile(
            client
                .ok(&format!(r#"{{"op":"stats","session":"{name}"}}"#))
                .get("stats")
                .unwrap(),
        );
        let served_status = client.ok(&format!(r#"{{"op":"status","session":"{name}"}}"#));

        // In-process run: same workload through the Session API, no
        // wire, no group log.
        let (mut session, _) = Session::builder().pred("Sub", 1).open().unwrap();
        let schema = session.schema().unwrap();
        let phi = parse(&schema, CONSTRAINT).unwrap();
        session.add_constraint("once", phi).unwrap();
        let trig = parse(&schema, TRIGGER).unwrap();
        session.add_trigger("dup", trig).unwrap();
        let sub = schema.pred("Sub").unwrap();
        let mut local_steps = Vec::new();
        for commit in &script {
            let mut tx = Transaction::new();
            for (insert, v) in commit {
                tx = if *insert {
                    tx.insert(sub, vec![*v])
                } else {
                    tx.delete(sub, vec![*v])
                };
            }
            let c = session.append(&tx).unwrap();
            let events: Vec<(String, usize)> =
                c.events.iter().map(|e| (e.name.clone(), e.at)).collect();
            let fired: Vec<(String, Vec<(String, u64)>)> = c
                .fired
                .iter()
                .map(|f| {
                    (
                        f.name.clone(),
                        f.substitution
                            .iter()
                            .map(|(v, val)| (v.clone(), *val))
                            .collect(),
                    )
                })
                .collect();
            local_steps.push(step_json(c.t, &events, &fired));
        }
        let local_stats = strip_volatile(&json::parse(&session.stats_json()).unwrap());

        assert_eq!(
            served_steps, local_steps,
            "seed {seed}: served and in-process event streams diverge"
        );
        // Constraint verdicts must agree mode-independently.
        let statuses = served_status.get("constraints").unwrap().as_arr().unwrap();
        let local_violated = session
            .constraints()
            .any(|(id, _, _)| matches!(session.status(id), ticc_core::Status::Violated { .. }));
        assert_eq!(
            statuses[0].get("status").unwrap().as_str() == Some("violated"),
            local_violated,
            "seed {seed}: served and in-process verdicts diverge"
        );
        if mode != Mode::MuxForcedParking {
            // A park/resume cycle legitimately resets *engine*-level
            // counters (the resumed engine starts from its snapshot),
            // so the full stats document is only compared when no
            // forced parking perturbed it. Event streams and verdicts
            // above are compared in every mode.
            assert_eq!(
                served_stats, local_stats,
                "seed {seed}: served and in-process stats diverge"
            );
        } else {
            // Session-lifetime counters must survive parking even so.
            assert_eq!(
                served_stats.get("session"),
                local_stats.get("session"),
                "seed {seed}: session counters lost across park/resume"
            );
        }
    }

    // The whole suite ran through one shared group log: group commit
    // must actually have logged every acknowledged append.
    let group = server.server_stats_json();
    let group = json::parse(&group).unwrap();
    let frames = group
        .get("group")
        .unwrap()
        .get("frames")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(frames > 120, "group log saw all sessions' frames: {frames}");

    client.ok(r#"{"op":"shutdown","checkpoint":false}"#);
    running.join();
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn served_sessions_match_in_process_across_120_seeds() {
    determinism_suite("legacy", Mode::Legacy);
}

#[test]
fn served_sessions_match_in_process_across_120_seeds_mux() {
    determinism_suite("mux", Mode::Mux);
}

#[test]
fn served_sessions_match_in_process_with_parking_forced_mid_stream() {
    determinism_suite("mux-park", Mode::MuxForcedParking);
}

#[test]
fn crash_mid_commit_window_loses_only_unacked_appends() {
    let wal_path =
        std::env::temp_dir().join(format!("ticc-served-crash-{}.gwal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let opts = CheckOptions::builder()
        .durability(Durability::WalFsync)
        .build();

    // Phase 1: serve, append 5 acknowledged states, remember the file
    // length at the third ack.
    let cut;
    {
        let server = Arc::new(Server::with_wal(opts, Limits::default(), &wal_path).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let running = ticc_server::mux::start_mux(Arc::clone(&server), listener).unwrap();
        let mut client = Client::connect(running.addr);
        client.ok(&format!(
            r#"{{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","{CONSTRAINT}"]]}}"#
        ));
        let mut len_at_ack = Vec::new();
        for req in [
            r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#,
            r#"{"op":"append","session":"a","delete":["Sub(1)"]}"#,
            r#"{"op":"append","session":"a","insert":["Sub(2)"]}"#,
            r#"{"op":"append","session":"a","delete":["Sub(2)"]}"#,
            r#"{"op":"append","session":"a","insert":["Sub(3)"]}"#,
        ] {
            client.ok(req);
            // The ack means the frame is fsynced: its bytes are on disk
            // *now*, before the response reached us.
            len_at_ack.push(std::fs::metadata(&wal_path).unwrap().len());
        }
        cut = len_at_ack[2];
        // Crash: stop without the shutdown checkpoint, then tear the
        // file back to the third ack — appends 4 and 5 were "mid
        // window" from the client's perspective.
        client.ok(r#"{"op":"shutdown","checkpoint":false}"#);
        running.join();
    }
    let full = std::fs::metadata(&wal_path).unwrap().len();
    assert!(cut < full, "later appends extended the file past the cut");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    file.set_len(cut).unwrap();
    drop(file);

    // Phase 2: restart on the torn file. The session is parked (it was
    // never checkpointed); re-opening with the schema replays the
    // logged suffix. The three acknowledged states must all be there.
    let server = Arc::new(Server::with_wal(opts, Limits::default(), &wal_path).unwrap());
    assert_eq!(server.parked_sessions(), vec!["a".to_owned()]);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let running = ticc_server::mux::start_mux(Arc::clone(&server), listener).unwrap();
    let mut client = Client::connect(running.addr);
    let r = client.ok(&format!(
        r#"{{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","{CONSTRAINT}"]]}}"#
    ));
    assert_eq!(
        r.get("states").unwrap().as_u64(),
        Some(3),
        "exactly the acked prefix: {r:?}"
    );
    // The recovered states are live constraint state, not just rows:
    // re-inserting Sub(1) (inserted at t=0) violates `once`.
    let r = client.ok(r#"{"op":"append","session":"a","insert":["Sub(1)"]}"#);
    assert_eq!(
        r.get("events").unwrap().as_arr().unwrap().len(),
        1,
        "restored history still enforces the constraint: {r:?}"
    );
    client.ok(r#"{"op":"shutdown","checkpoint":false}"#);
    running.join();
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn checkpointed_server_restart_resumes_without_redeclaration() {
    let wal_path =
        std::env::temp_dir().join(format!("ticc-served-resume-{}.gwal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let opts = CheckOptions::builder()
        .durability(Durability::WalFsync)
        .build();
    {
        let server = Arc::new(Server::with_wal(opts, Limits::default(), &wal_path).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let running = ticc_server::mux::start_mux(Arc::clone(&server), listener).unwrap();
        let mut client = Client::connect(running.addr);
        client.ok(&format!(
            r#"{{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","{CONSTRAINT}"]],"triggers":[["dup","{TRIGGER}"]]}}"#
        ));
        client.ok(r#"{"op":"append","session":"a","insert":["Sub(7)"]}"#);
        let r = client.ok(r#"{"op":"checkpoint","session":"a"}"#);
        assert!(r.get("bytes").unwrap().as_u64().unwrap() > 0);
        // One more append after the checkpoint: must replay on resume.
        client.ok(r#"{"op":"append","session":"a","delete":["Sub(7)"]}"#);
        client.ok(r#"{"op":"shutdown"}"#);
        running.join();
    }
    let server = Arc::new(Server::with_wal(opts, Limits::default(), &wal_path).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let running = ticc_server::mux::start_mux(Arc::clone(&server), listener).unwrap();
    let mut client = Client::connect(running.addr);
    // No preds, no constraint sources: the checkpoint carries the whole
    // session, including the trigger definitions in the app blob.
    let r = client.ok(r#"{"op":"open","session":"a"}"#);
    assert_eq!(r.get("states").unwrap().as_u64(), Some(2), "{r:?}");
    assert_eq!(r.get("constraints").unwrap().as_u64(), Some(1), "{r:?}");
    let r = client.ok(r#"{"op":"append","session":"a","insert":["Sub(7)"]}"#);
    assert_eq!(
        r.get("events").unwrap().as_arr().unwrap().len(),
        1,
        "resubmission after resume violates: {r:?}"
    );
    assert_eq!(
        r.get("fired").unwrap().as_arr().unwrap().len(),
        1,
        "restored trigger fires: {r:?}"
    );
    client.ok(r#"{"op":"shutdown"}"#);
    running.join();
    let _ = std::fs::remove_file(&wal_path);
}
