//! A zoo of small machines with known behaviour, used throughout the
//! tests and benchmarks of the Section 3 constructions.

use crate::machine::{Dir, Machine, BLANK, SYM0, SYM1};

/// Shuttles forever between cells 0 and 1: the canonical *repeating*
/// machine (infinite run, leftmost cell visited infinitely often), for
/// every input.
pub fn shuttle() -> Machine {
    let mut m = Machine::new("shuttle", &["go", "back"], &[]);
    for s in [BLANK, SYM0, SYM1] {
        m = m.rule(0, s, 1, s, Dir::R); // go → right
        m = m.rule(1, s, 0, s, Dir::L); // back → left
    }
    m
}

/// Runs right forever: infinite run but the leftmost cell is visited
/// only initially — *not* repeating.
pub fn runner() -> Machine {
    let mut m = Machine::new("runner", &["run"], &[]);
    for s in [BLANK, SYM0, SYM1] {
        m = m.rule(0, s, 0, s, Dir::R);
    }
    m
}

/// Halts immediately (no transitions at all).
pub fn halter() -> Machine {
    Machine::new("halter", &["stop"], &[])
}

/// Repeats iff the input's first symbol is `1`: on `1…` it shuttles, on
/// `0…` it runs right forever, on the empty input it halts. Used to
/// exercise input-dependence of the repeating-behaviour problem.
pub fn picky() -> Machine {
    let mut m = Machine::new("picky", &["start", "go", "back", "run"], &[]);
    // start: dispatch on first symbol. Entering shuttle mode in "back"
    // makes the head return to cell 0 immediately and then bounce
    // between cells 0 and 1 forever.
    m = m.rule(0, SYM1, 2, SYM1, Dir::R); // shuttle mode
    m = m.rule(0, SYM0, 3, SYM0, Dir::R); // runner mode
                                          // (start on blank: halt — empty input)
    for s in [BLANK, SYM0, SYM1] {
        m = m.rule(1, s, 2, s, Dir::R);
        m = m.rule(2, s, 1, s, Dir::L);
        m = m.rule(3, s, 3, s, Dir::R);
    }
    m
}

/// Erases the input (rewrites 0/1 to blank, moving right), then returns
/// to the origin and halts there. Finite run with exactly two leftmost
/// visits (initial + final) for non-empty inputs — halting, not
/// repeating. Exercises symbol writes in the encodings.
pub fn eraser() -> Machine {
    let mut m = Machine::new("eraser", &["wipe", "home"], &[]);
    m = m.rule(0, SYM0, 0, BLANK, Dir::R);
    m = m.rule(0, SYM1, 0, BLANK, Dir::R);
    m = m.rule(0, BLANK, 1, BLANK, Dir::L);
    m = m.rule(1, BLANK, 1, BLANK, Dir::L);
    // At cell 0 (now blank) it keeps trying to move left and falls off…
    // instead: park by halting (no rule for "home" at cell 0 is wrong —
    // "home" on blank loops left until it falls off at 0). To halt at
    // the origin we give "home" no blank rule once there; but the scan
    // can't see the position. Falling off *is* the halt here, which the
    // simulator reports distinctly; the run is finite either way.
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{run, RunEnd};

    #[test]
    fn picky_dispatches_on_input() {
        let m = picky();
        let on1 = run(&m, &[true, false], 200);
        assert_eq!(on1.end, RunEnd::Running);
        assert!(on1.leftmost_visits > 10);
        let on0 = run(&m, &[false, true], 200);
        assert_eq!(on0.end, RunEnd::Running);
        assert_eq!(on0.leftmost_visits, 1);
        let empty = run(&m, &[], 200);
        assert_eq!(empty.end, RunEnd::Halted);
    }

    #[test]
    fn eraser_erases_and_stops() {
        let m = eraser();
        let r = run(&m, &[true, true, false], 200);
        assert!(matches!(r.end, RunEnd::FellOff));
        let last = r.configs.last().unwrap();
        assert_eq!(last.significant_len(), last.head + 1);
        assert!(last.tape.iter().all(|&s| s == BLANK));
    }
}
