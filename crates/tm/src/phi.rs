//! The formula `φ` of Proposition 3.1.
//!
//! A universal formula `∀x ∀y ∀z ψ` (quantifier-free matrix `ψ`) over
//! the machine's monadic encoding vocabulary *extended* by `≤`, `succ`
//! and `Zero`, whose temporal models are exactly the encodings of
//! repeating computations of the machine. The matrix is the conjunction
//! of four groups, mirroring the Appendix:
//!
//! 1. **uniqueness** — at every instant, at most one cell predicate per
//!    element, and at most one head overall;
//! 2. **initial** — instant 0 encodes an initial configuration
//!    `q0 w B^ω`, `w ∈ {0,1}*`;
//! 3. **steps** — consecutive states encode consecutive configurations:
//!    per-transition rules for the head cell and its two neighbours,
//!    frame rules for cells away from the head, boundary rules for cell
//!    0 (including "no move left from cell 0" and "no halting pair ever
//!    appears" — in infinite time a halting configuration has no
//!    successor);
//! 4. **repeating** — the head returns to cell 0 infinitely often:
//!    `Zero(x) → □◇ head(x)`.
//!
//! Rigid atoms (`succ`, `Zero`, `≤`) are kept **outside** the temporal
//! operators (`guard → □(…)`), which is equivalent (they are rigid) and
//! is what makes the `≤_W` substitution of [`crate::phi_tilde`]
//! semantically faithful at instant 0.

use crate::encode::{cell_contents, cell_pred, Cell};
use crate::machine::{Dir, Machine, Sym, BLANK};
use std::sync::Arc;
use ticc_fotl::{Atom, Formula, Term};
use ticc_tdb::Schema;

/// The four groups of `φ`, each already in `∀x∀y∀z(matrix)` form.
pub struct PhiParts {
    /// Group 1: at-most-one content per cell, at most one head.
    pub uniqueness: Formula,
    /// Group 2: instant 0 encodes an initial configuration.
    pub initial: Formula,
    /// Group 3: successive states encode successive configurations.
    pub steps: Formula,
    /// Group 4: the leftmost cell is scanned infinitely often.
    pub repeating: Formula,
}

impl PhiParts {
    /// `φ` itself: the conjunction, re-prenexed to a single `∀x∀y∀z`.
    pub fn conjunction(&self) -> Formula {
        // Each part is ∀x∀y∀z M_i; conjunction commutes with the shared
        // universal prefix.
        let matrices: Vec<Formula> = [
            &self.uniqueness,
            &self.initial,
            &self.steps,
            &self.repeating,
        ]
        .iter()
        .map(|f| strip3(f))
        .collect();
        close3(Formula::and_all(matrices))
    }
}

/// Wraps a matrix in the canonical `∀x∀y∀z` prefix.
fn close3(matrix: Formula) -> Formula {
    Formula::forall_many(["x", "y", "z"], matrix)
}

fn strip3(f: &Formula) -> Formula {
    let (vars, body) = ticc_fotl::classify::external_prefix(f);
    assert_eq!(vars, vec!["x", "y", "z"], "phi parts share the ∀xyz prefix");
    body.clone()
}

/// Builds the groups of `φ` for a machine over its encoding schema
/// (from [`crate::encode::machine_schema`]).
pub fn phi_parts(machine: &Machine, schema: &Arc<Schema>) -> PhiParts {
    let b = Builder { machine, schema };
    PhiParts {
        uniqueness: close3(b.uniqueness()),
        initial: close3(b.initial()),
        steps: close3(b.steps()),
        repeating: close3(b.repeating()),
    }
}

/// `φ` in one piece (Proposition 3.1).
pub fn phi(machine: &Machine, schema: &Arc<Schema>) -> Formula {
    phi_parts(machine, schema).conjunction()
}

/// The safety part of `φ` (groups 1–3): used for bounded model checking
/// on finite encodings, where the liveness group 4 cannot yet be
/// witnessed.
pub fn phi_safety(machine: &Machine, schema: &Arc<Schema>) -> Formula {
    let p = phi_parts(machine, schema);
    let m = Formula::and_all([strip3(&p.uniqueness), strip3(&p.initial), strip3(&p.steps)]);
    close3(m)
}

/// Weak next: `○⊤ → ○f`. On infinite time this is equivalent to `○f`
/// (there is always a next instant), but on the finite traces used for
/// bounded model checking it is vacuously true at the last state, which
/// is the right reading for the step rules ("IF there is a next
/// configuration, it looks like this").
pub(crate) fn wnext(f: Formula) -> Formula {
    Formula::True.next().implies(f.next())
}

struct Builder<'a> {
    machine: &'a Machine,
    schema: &'a Arc<Schema>,
}

impl Builder<'_> {
    fn var(&self, v: &str) -> Term {
        Term::var(v)
    }

    /// `content(cell)(v)`: the cell holds exactly this content. The
    /// plain blank is "no predicate true".
    fn has(&self, cell: Cell, v: &str) -> Formula {
        match cell_pred(self.machine, self.schema, cell) {
            Some(p) => Formula::pred(p, vec![self.var(v)]),
            None => {
                // blank: none of the cell predicates hold
                Formula::and_all(cell_contents(self.machine).into_iter().map(|c| {
                    let p = cell_pred(self.machine, self.schema, c).expect("non-blank");
                    Formula::pred(p, vec![self.var(v)]).not()
                }))
            }
        }
    }

    /// `head(v)`: some composite predicate holds.
    fn head(&self, v: &str) -> Formula {
        Formula::or_all(
            cell_contents(self.machine)
                .into_iter()
                .filter(|c| matches!(c, Cell::Head(_, _)))
                .map(|c| {
                    let p = cell_pred(self.machine, self.schema, c).expect("composite");
                    Formula::pred(p, vec![self.var(v)])
                }),
        )
    }

    /// `plain(v)`: no composite predicate holds.
    fn plain(&self, v: &str) -> Formula {
        self.head(v).not()
    }

    fn zero(&self, v: &str) -> Formula {
        Formula::Atom(Atom::Zero(self.var(v)))
    }

    fn succ(&self, a: &str, b: &str) -> Formula {
        Formula::Atom(Atom::Succ(self.var(a), self.var(b)))
    }

    fn leq(&self, a: &str, b: &str) -> Formula {
        Formula::Atom(Atom::Leq(self.var(a), self.var(b)))
    }

    /// All plain symbol contents (including the blank).
    fn plain_contents(&self) -> Vec<Cell> {
        (0..self.machine.num_symbols() as Sym)
            .map(Cell::Plain)
            .collect()
    }

    fn uniqueness(&self) -> Formula {
        let contents = cell_contents(self.machine);
        let mut conj = Vec::new();
        for (i, &a) in contents.iter().enumerate() {
            for &b in &contents[i + 1..] {
                conj.push(self.has(a, "x").and(self.has(b, "x")).not());
            }
        }
        let per_cell = Formula::and_all(conj).always();
        // At most one head: head(x) ∧ head(y) → x = y (equality is
        // rigid, so it may stay under □).
        let one_head = self
            .head("x")
            .and(self.head("y"))
            .implies(Formula::eq(self.var("x"), self.var("y")))
            .always();
        per_cell.and(one_head)
    }

    fn initial(&self) -> Formula {
        // Zero(x) → ⋁_{σ ∈ {B,0,1}} H_{q0,σ}(x)  (at instant 0).
        let q0 = self.machine.initial();
        let head0 = Formula::or_all(
            [BLANK, crate::machine::SYM0, crate::machine::SYM1]
                .into_iter()
                .map(|s| self.has(Cell::Head(q0, s), "x")),
        );
        let start = self.zero("x").implies(head0);
        // Input shape: ¬Zero(x) ∧ x ≤ y ∧ ¬blank(y) → 0/1 at both x, y.
        let in01 = |v: &str| {
            self.has(Cell::Plain(crate::machine::SYM0), v)
                .or(self.has(Cell::Plain(crate::machine::SYM1), v))
        };
        let blank_y = self.has(Cell::Plain(BLANK), "y");
        let shape = self
            .zero("x")
            .not()
            .and(self.leq("x", "y"))
            .and(blank_y.not())
            .implies(in01("y").and(in01("x")));
        start.and(shape)
    }

    fn steps(&self) -> Formula {
        let m = self.machine;
        let mut rules: Vec<Formula> = Vec::new();
        for q in 0..m.num_states() as u16 {
            for s in 0..m.num_symbols() as Sym {
                let here = Cell::Head(q, s);
                match m.transition(q, s) {
                    None => {
                        // Halting pair: in infinite time it can never
                        // appear.
                        rules.push(self.has(here, "x").not().always());
                    }
                    Some(t) => {
                        // Head cell: becomes the written symbol.
                        rules.push(
                            self.has(here, "x")
                                .implies(wnext(self.has(Cell::Plain(t.write), "x")))
                                .always(),
                        );
                        // Neighbour rules, one per plain content b.
                        for b_cell in self.plain_contents() {
                            let Cell::Plain(b) = b_cell else {
                                unreachable!()
                            };
                            // Before-head window (x, y) = (b, head):
                            // left cell becomes H_{p,b} on L, stays on R.
                            let before_next = match t.dir {
                                Dir::L => self.has(Cell::Head(t.state, b), "x"),
                                Dir::R => self.has(b_cell, "x"),
                            };
                            rules.push(
                                self.succ("x", "y").implies(
                                    self.has(b_cell, "x")
                                        .and(self.has(here, "y"))
                                        .implies(wnext(before_next))
                                        .always(),
                                ),
                            );
                            // After-head window (y, z) = (head, b):
                            // right cell becomes H_{p,b} on R, stays on L.
                            let after_next = match t.dir {
                                Dir::R => self.has(Cell::Head(t.state, b), "z"),
                                Dir::L => self.has(b_cell, "z"),
                            };
                            rules.push(
                                self.succ("y", "z").implies(
                                    self.has(here, "y")
                                        .and(self.has(b_cell, "z"))
                                        .implies(wnext(after_next))
                                        .always(),
                                ),
                            );
                        }
                        // Moving left from cell 0 is impossible.
                        if t.dir == Dir::L {
                            rules.push(self.zero("x").implies(self.has(here, "x").not().always()));
                        }
                    }
                }
            }
        }
        // Frame rules: a cell with plain neighbours keeps its content.
        for b_cell in self.plain_contents() {
            rules.push(
                self.succ("x", "y").and(self.succ("y", "z")).implies(
                    self.plain("x")
                        .and(self.has(b_cell, "y"))
                        .and(self.plain("z"))
                        .implies(wnext(self.has(b_cell, "y")))
                        .always(),
                ),
            );
            // Boundary frame for cell 0: plain (0, 1) window.
            rules.push(
                self.zero("x").and(self.succ("x", "y")).implies(
                    self.has(b_cell, "x")
                        .and(self.plain("x"))
                        .and(self.plain("y"))
                        .implies(wnext(self.has(b_cell, "x")))
                        .always(),
                ),
            );
        }
        Formula::and_all(rules)
    }

    fn repeating(&self) -> Formula {
        self.zero("x").implies(self.head("x").eventually().always())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_run, machine_schema};
    use crate::zoo;
    use ticc_fotl::classify::{classify, FormulaClass};
    use ticc_fotl::eval::{eval_closed, EvalOptions, UniverseSpec};

    fn opts(n: u64) -> EvalOptions {
        EvalOptions {
            universe: UniverseSpec::Bounded(n),
        }
    }

    #[test]
    fn phi_is_universal_forall3_over_extended_vocab() {
        let m = zoo::shuttle();
        let sc = machine_schema(&m);
        let f = phi(&m, &sc);
        assert_eq!(classify(&f), FormulaClass::Universal { external: 3 });
        assert!(f.uses_extended_vocabulary());
        assert!(f.check_arities(&sc).is_ok());
    }

    #[test]
    fn valid_run_satisfies_safety_part() {
        let m = zoo::shuttle();
        let sc = machine_schema(&m);
        let (_, h, _) = encode_run(&m, &[true], 6);
        let safety = phi_safety(&m, &sc);
        assert!(eval_closed(&h, &safety, &opts(5)).unwrap());
    }

    #[test]
    fn corrupted_run_violates_safety_part() {
        let m = zoo::shuttle();
        let (sc, mut h, _) = encode_run(&m, &[true], 6);
        // Corrupt state 3: drop the head fact entirely (the frame rules
        // then contradict the next state's head reappearance) — or
        // simpler: add a stray symbol fact that breaks uniqueness with
        // whatever is at cell 0.
        let p = sc.pred("S_0").unwrap();
        let mut s3 = h.state(3).clone();
        s3.insert(p, vec![0]).unwrap();
        let mut states: Vec<_> = h.states().to_vec();
        states[3] = s3;
        let mut h2 = ticc_tdb::History::new(sc.clone());
        for st in states {
            h2.push_state(st);
        }
        h = h2;
        let safety = phi_safety(&m, &sc);
        assert!(!eval_closed(&h, &safety, &opts(5)).unwrap());
    }

    #[test]
    fn runner_run_satisfies_safety_but_not_bounded_repeating() {
        // The runner is a legal machine; its encodings satisfy groups
        // 1–3. Group 4 (□◇head-at-0) is already falsified on the finite
        // prefix read strongly: after leaving cell 0 the head never
        // returns within the trace.
        let m = zoo::runner();
        let sc = machine_schema(&m);
        let (_, h, _) = encode_run(&m, &[true, false], 5);
        let parts = phi_parts(&m, &sc);
        assert!(eval_closed(&h, &parts.uniqueness, &opts(7)).unwrap());
        assert!(eval_closed(&h, &parts.initial, &opts(7)).unwrap());
        assert!(eval_closed(&h, &parts.steps, &opts(7)).unwrap());
        assert!(!eval_closed(&h, &parts.repeating, &opts(7)).unwrap());
    }

    #[test]
    fn shuttle_prefix_achieves_bounded_repeating() {
        // On a finite trace the strong semantics of □◇ cannot hold at
        // the last instants; but ◇head-at-0 from instant 0 does, and the
        // head-at-0 count grows with the prefix (the Σ⁰₂ shape).
        let m = zoo::shuttle();
        let sc = machine_schema(&m);
        let (_, h, r) = encode_run(&m, &[true], 10);
        assert!(r.leftmost_visits >= 5);
        let b = Builder {
            machine: &m,
            schema: &sc,
        };
        let visit0 = Formula::forall("x", b.zero("x").implies(b.head("x").eventually()));
        assert!(eval_closed(&h, &visit0, &opts(4)).unwrap());
        let _ = h;
    }

    #[test]
    fn wrong_initial_state_violates_initial_group() {
        let m = zoo::shuttle();
        let sc = machine_schema(&m);
        // Encode a configuration whose head is at cell 1: not initial.
        let c = crate::machine::Config {
            state: 0,
            head: 1,
            tape: vec![crate::machine::SYM1, crate::machine::SYM0],
        };
        let st = crate::encode::encode_config(&m, &sc, &c);
        let mut h = ticc_tdb::History::new(sc.clone());
        h.push_state(st);
        let parts = phi_parts(&m, &sc);
        assert!(!eval_closed(&h, &parts.initial, &opts(5)).unwrap());
    }

    #[test]
    fn halting_machine_encoding_violates_steps() {
        // The halter's initial configuration contains a halting pair;
        // group 3 forbids it outright.
        let m = zoo::halter();
        let sc = machine_schema(&m);
        let (_, h, _) = encode_run(&m, &[true], 5);
        let parts = phi_parts(&m, &sc);
        assert!(!eval_closed(&h, &parts.steps, &opts(4)).unwrap());
    }
}
