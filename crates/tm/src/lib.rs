//! Deterministic Turing machines and the Section 3 constructions.
//!
//! Section 3 of Chomicki & Niwiński (PODS 1993) proves that temporal
//! integrity checking for biquantified formulas with a single internal
//! quantifier is Π⁰₂-complete, by encoding *repeating computations* of a
//! deterministic Turing machine (computations that are infinite and
//! visit the leftmost tape cell infinitely often) into temporal
//! databases. This crate implements every ingredient:
//!
//! * [`machine`] — single-tape deterministic machines (tape infinite to
//!   the right, input alphabet `{0, 1}`, blank `B`), configurations and
//!   stepping, with leftmost-visit tracking;
//! * [`encode`] — the Appendix encoding of configurations as database
//!   states over monadic predicates. We use the classic *composite-cell*
//!   variant (the head cell carries a combined `(state, symbol)`
//!   predicate) so that three consecutive cells always determine the
//!   middle cell of the successor configuration — the property the
//!   Appendix sketch appeals to; see `DESIGN.md` for the exact relation
//!   to the paper's `αqβ` string encoding;
//! * [`phi`] — the formula `φ` of Proposition 3.1 over the extended
//!   vocabulary (`≤`, `succ`, `Zero`): a `∀≤3` universal formula whose
//!   models are exactly the encodings of repeating computations;
//! * [`phi_tilde`] — the monadic formula `φ̃` of Theorem 3.2: the `W`
//!   predicate, the temporally defined ordering `≤_W`/`S_W`/`Z_W`, the
//!   formulas `W1 W2 W3`, and the relativised `φ_W`; a `∀³tense(Σ1)`
//!   biquantified formula;
//! * [`bounded`] — the Σ⁰₂ semi-decision procedure from the proof of
//!   Theorem 3.1: a deterministic machine's prefix has at most one
//!   prolongation, so "extendible to a repeating computation" is
//!   semi-decided by simulating with a visit/step budget;
//! * [`zoo`] — small machines with known behaviour (repeating,
//!   diverging right, halting, input-dependent).

pub mod bounded;
pub mod encode;
pub mod machine;
pub mod phi;
pub mod phi_tilde;
pub mod zoo;

pub use bounded::{semi_decide_repeating, SemiDecision};
pub use encode::{decode_config, encode_config, encode_run, machine_schema};
pub use machine::{Config, Dir, Machine, StepOutcome};
