//! Encoding configurations as database states (Appendix).
//!
//! The vocabulary is monadic: a predicate `S_σ` for each non-blank tape
//! symbol `σ`, and a predicate `H_q_σ` for each (state, scanned-symbol)
//! pair. A database state encodes a configuration by making, for each
//! cell `i`, exactly the predicate of that cell true about the universe
//! element `i`: `S_σ(i)` for a plain cell holding `σ` (blank cells
//! satisfy nothing), `H_q_σ(i)` for the head cell. This is the
//! *composite-cell* variant of the paper's `α q β` string encoding: the
//! state symbol is fused with the scanned cell instead of inserted
//! before it, which restores the Appendix's "three consecutive positions
//! determine the middle of the next configuration" property for
//! deterministic machines (see DESIGN.md).

use crate::machine::{Config, Machine, StateId, Sym, BLANK};
use std::sync::Arc;
use ticc_tdb::{History, PredId, Schema, State, Value};

/// The cell content alphabet of the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// A plain tape cell holding a symbol (possibly the blank).
    Plain(Sym),
    /// The head cell: control state + scanned symbol.
    Head(StateId, Sym),
}

/// Name of the predicate for a (non-blank-plain) cell content.
pub fn cell_pred_name(machine: &Machine, cell: Cell) -> Option<String> {
    match cell {
        Cell::Plain(s) if s == BLANK => None,
        Cell::Plain(s) => Some(format!("S_{}", machine.symbol_name(s))),
        Cell::Head(q, s) => Some(format!(
            "H_{}_{}",
            machine.state_name(q),
            machine.symbol_name(s)
        )),
    }
}

/// Every cell content that has a predicate, in deterministic order.
pub fn cell_contents(machine: &Machine) -> Vec<Cell> {
    let mut out = Vec::new();
    for s in 1..machine.num_symbols() as Sym {
        out.push(Cell::Plain(s));
    }
    for q in 0..machine.num_states() as StateId {
        for s in 0..machine.num_symbols() as Sym {
            out.push(Cell::Head(q, s));
        }
    }
    out
}

/// Builds the monadic schema for a machine's encoding.
pub fn machine_schema(machine: &Machine) -> Arc<Schema> {
    let mut b = Schema::builder();
    for cell in cell_contents(machine) {
        let name = cell_pred_name(machine, cell).expect("cell_contents has no plain blank");
        b = b.pred(&name, 1);
    }
    b.build()
}

/// The predicate id for a cell content (None for the plain blank, which
/// is encoded by the absence of facts).
pub fn cell_pred(machine: &Machine, schema: &Schema, cell: Cell) -> Option<PredId> {
    let name = cell_pred_name(machine, cell)?;
    Some(schema.pred(&name).expect("schema built for this machine"))
}

/// Encodes one configuration as a database state.
pub fn encode_config(machine: &Machine, schema: &Arc<Schema>, config: &Config) -> State {
    let mut st = State::empty(schema.clone());
    let len = config.significant_len();
    for i in 0..len {
        let cell = if i == config.head {
            Cell::Head(config.state, config.symbol_at(i))
        } else {
            Cell::Plain(config.symbol_at(i))
        };
        if let Some(p) = cell_pred(machine, schema, cell) {
            st.insert(p, vec![i as Value]).expect("monadic");
        }
    }
    st
}

/// Decodes a database state back into a configuration. Returns `None`
/// if the state is not a valid encoding (no head, several heads, or a
/// cell with several contents).
pub fn decode_config(machine: &Machine, schema: &Schema, state: &State) -> Option<Config> {
    let mut cells: std::collections::BTreeMap<Value, Cell> = std::collections::BTreeMap::new();
    for cell in cell_contents(machine) {
        let p = cell_pred(machine, schema, cell)?;
        for tuple in state.relation(p).iter() {
            if cells.insert(tuple[0], cell).is_some() {
                return None; // two contents on one cell
            }
        }
    }
    let mut head: Option<(usize, StateId, Sym)> = None;
    let max_cell = cells.keys().next_back().copied().unwrap_or(0);
    let mut tape = vec![BLANK; max_cell as usize + 1];
    for (&i, &cell) in &cells {
        match cell {
            Cell::Plain(s) => tape[i as usize] = s,
            Cell::Head(q, s) => {
                if head.is_some() {
                    return None; // two heads
                }
                head = Some((i as usize, q, s));
                tape[i as usize] = s;
            }
        }
    }
    let (head, state_id, _) = head?;
    Some(Config {
        state: state_id,
        head,
        tape,
    })
}

/// Simulates `machine` on `input` for up to `steps` moves and encodes
/// every configuration, yielding the temporal database of the run.
pub fn encode_run(
    machine: &Machine,
    input: &[bool],
    steps: usize,
) -> (Arc<Schema>, History, crate::machine::RunResult) {
    let schema = machine_schema(machine);
    let result = crate::machine::run(machine, input, steps);
    let mut h = History::new(schema.clone());
    for c in &result.configs {
        h.push_state(encode_config(machine, &schema, c));
    }
    (schema, h, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run;
    use crate::zoo;

    #[test]
    fn schema_has_one_pred_per_content() {
        let m = zoo::shuttle(); // 2 states × 3 symbols + 2 plain
        let sc = machine_schema(&m);
        assert_eq!(sc.pred_count(), 2 + 2 * 3);
        assert!(sc.pred("S_0").is_some());
        assert!(sc.pred("H_go_B").is_some());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = zoo::shuttle();
        let sc = machine_schema(&m);
        let r = run(&m, &[true, false, true], 20);
        for c in &r.configs {
            let st = encode_config(&m, &sc, c);
            let back = decode_config(&m, &sc, &st).expect("valid encoding");
            assert_eq!(back.state, c.state);
            assert_eq!(back.head, c.head);
            let n = c.significant_len().max(back.significant_len());
            for i in 0..n {
                assert_eq!(back.symbol_at(i), c.symbol_at(i), "cell {i}");
            }
        }
    }

    #[test]
    fn corrupted_state_rejected() {
        let m = zoo::shuttle();
        let sc = machine_schema(&m);
        let c = Config::initial(&m, &[true]);
        let mut st = encode_config(&m, &sc, &c);
        // Add a second head.
        let h = sc.pred("H_back_0").unwrap();
        st.insert(h, vec![3]).unwrap();
        assert!(decode_config(&m, &sc, &st).is_none());
    }

    #[test]
    fn empty_input_still_has_head() {
        let m = zoo::halter();
        let sc = machine_schema(&m);
        let c = Config::initial(&m, &[]);
        let st = encode_config(&m, &sc, &c);
        assert_eq!(st.tuple_count(), 1, "head-on-blank composite at cell 0");
        let back = decode_config(&m, &sc, &st).unwrap();
        assert_eq!(back.head, 0);
    }

    #[test]
    fn encode_run_builds_history() {
        let m = zoo::shuttle();
        let (_sc, h, r) = encode_run(&m, &[true], 9);
        assert_eq!(h.len(), r.configs.len());
        assert_eq!(h.len(), 10);
    }
}
