//! The Σ⁰₂ semi-decision procedure (proof of Theorem 3.1).
//!
//! The extension problem for `φ` is Π⁰₂-complete, so no algorithm
//! decides it. The proof of Theorem 3.1 gives its exact arithmetical
//! shape: a word `w` induces a repeating behaviour iff *for each `n`*
//! there is a finite prolongation of the (unique, deterministic)
//! computation with at least `n` leftmost-cell visits. Fixing `n` makes
//! the inner question semi-decidable by plain simulation — which is what
//! this module implements, with explicit step budgets. This is the best
//! possible procedure, and experiment E9 measures it.

use crate::machine::{run, Machine, RunEnd};

/// Outcome of a budgeted semi-decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiDecision {
    /// The computation reached the target number of leftmost visits
    /// within the budget (after `steps` moves): *positive* evidence.
    ReachedTarget {
        /// Moves consumed when the target was reached.
        steps: usize,
    },
    /// The machine halted (or fell off the left edge): *negative*
    /// certificate — the computation is finite, hence not repeating.
    Halted {
        /// Moves executed before halting.
        steps: usize,
        /// Leftmost visits accumulated.
        visits: usize,
    },
    /// Budget exhausted with the machine still running short of the
    /// target: **undetermined** (the Π⁰₂ face of the problem — no budget
    /// settles it in general).
    Undetermined {
        /// Leftmost visits accumulated within the budget.
        visits: usize,
    },
}

/// Semi-decides "does `input` induce ≥ `target_visits` leftmost visits"
/// within `step_budget` moves.
pub fn semi_decide_repeating(
    machine: &Machine,
    input: &[bool],
    target_visits: usize,
    step_budget: usize,
) -> SemiDecision {
    let mut config = crate::machine::Config::initial(machine, input);
    let mut visits = usize::from(config.head == 0);
    if visits >= target_visits {
        return SemiDecision::ReachedTarget { steps: 0 };
    }
    for step in 1..=step_budget {
        match config.step_mut(machine) {
            crate::machine::StepKind::Moved => {
                if config.head == 0 {
                    visits += 1;
                    if visits >= target_visits {
                        return SemiDecision::ReachedTarget { steps: step };
                    }
                }
            }
            crate::machine::StepKind::Halted | crate::machine::StepKind::FellOff => {
                return SemiDecision::Halted {
                    steps: step - 1,
                    visits,
                }
            }
        }
    }
    SemiDecision::Undetermined { visits }
}

/// The step index of each leftmost visit within `step_budget` moves —
/// the "visit profile" whose unboundedness characterises repeating
/// behaviour.
pub fn visit_profile(machine: &Machine, input: &[bool], step_budget: usize) -> Vec<usize> {
    let r = run(machine, input, step_budget);
    r.configs
        .iter()
        .enumerate()
        .filter(|(_, c)| c.head == 0)
        .map(|(i, _)| i)
        .collect()
}

/// Convenience: true iff the bounded run is *consistent with* repeating
/// behaviour (still running and visits keep arriving). `None` when the
/// run halted (definitely not repeating), `Some(visits)` otherwise.
pub fn bounded_visits(machine: &Machine, input: &[bool], step_budget: usize) -> Option<usize> {
    let r = run(machine, input, step_budget);
    match r.end {
        RunEnd::Halted | RunEnd::FellOff => None,
        RunEnd::Running => Some(r.leftmost_visits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn shuttle_reaches_any_target() {
        let m = zoo::shuttle();
        for target in [1, 5, 50] {
            match semi_decide_repeating(&m, &[true], target, 10_000) {
                SemiDecision::ReachedTarget { steps } => {
                    assert!(steps <= 2 * target, "shuttle visits every 2 steps")
                }
                other => panic!("expected target reached, got {other:?}"),
            }
        }
    }

    #[test]
    fn runner_is_undetermined_forever() {
        let m = zoo::runner();
        match semi_decide_repeating(&m, &[true], 2, 10_000) {
            SemiDecision::Undetermined { visits } => assert_eq!(visits, 1),
            other => panic!("expected undetermined, got {other:?}"),
        }
    }

    #[test]
    fn halter_gives_negative_certificate() {
        let m = zoo::halter();
        match semi_decide_repeating(&m, &[true], 2, 10_000) {
            SemiDecision::Halted { steps, visits } => {
                assert_eq!(steps, 0);
                assert_eq!(visits, 1);
            }
            other => panic!("expected halted, got {other:?}"),
        }
    }

    #[test]
    fn picky_depends_on_input() {
        let m = zoo::picky();
        assert!(matches!(
            semi_decide_repeating(&m, &[true], 10, 1_000),
            SemiDecision::ReachedTarget { .. }
        ));
        assert!(matches!(
            semi_decide_repeating(&m, &[false], 10, 1_000),
            SemiDecision::Undetermined { .. }
        ));
        assert!(matches!(
            semi_decide_repeating(&m, &[], 10, 1_000),
            SemiDecision::Halted { .. }
        ));
    }

    #[test]
    fn visit_profile_is_periodic_for_shuttle() {
        let m = zoo::shuttle();
        let p = visit_profile(&m, &[true], 20);
        assert_eq!(p[0], 0);
        // Visits at steps 0, 2, 4, … (go right, come back).
        for w in p.windows(2) {
            assert_eq!(w[1] - w[0], 2);
        }
    }

    #[test]
    fn bounded_visits_distinguishes_the_zoo() {
        assert!(bounded_visits(&zoo::halter(), &[true], 100).is_none());
        assert_eq!(bounded_visits(&zoo::runner(), &[true], 100), Some(1));
        assert!(bounded_visits(&zoo::shuttle(), &[true], 100).unwrap() > 10);
    }

    #[test]
    fn target_zero_or_initial_visit_trivially_reached() {
        let m = zoo::halter();
        assert!(matches!(
            semi_decide_repeating(&m, &[], 1, 10),
            SemiDecision::ReachedTarget { steps: 0 }
        ));
    }
}
