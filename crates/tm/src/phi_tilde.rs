//! The monadic formula `φ̃` of Theorem 3.2.
//!
//! Section 3 transforms `φ` (which needs `≤`, `succ`, `Zero`) into a
//! formula over **monadic database predicates only**, by introducing a
//! fresh monadic predicate `W` and *defining* an ordering of type `ω`
//! temporally:
//!
//! * `W1 ≡ ∀x∀y □((W(x) ∧ W(y)) → x = y)` — at most one `W`-element per
//!   state;
//! * `W2 ≡ □∃x W(x)` — at least one per state (the single internal
//!   existential quantifier that pushes the formula into
//!   `∀³tense(Σ1)`);
//! * `W3 ≡ ∀x □(W(x) → ○□¬W(x))` — each element is `W` in at most one
//!   state;
//! * `x ≤_W y ≡ ◇(W(x) ∧ ◇W(y))`, `S_W(x,y) ≡ ◇(W(x) ∧ ○W(y))`,
//!   `Z_W(x) ≡ W(x)` — the induced ordering, successor and zero, all
//!   read at instant 0;
//! * `φ_W` — `φ` with every extended-vocabulary atom replaced by its
//!   `W`-definition, relativised to `◇W(x1) ∧ ◇W(x2) ∧ ◇W(x3)`.
//!
//! `φ̃ ≡ φ_W ∧ W1 ∧ W2 ∧ W3`, re-prenexed to `∀x∀y∀z (tense(Σ1))`.
//! The substitution is sound because [`crate::phi`] keeps all rigid
//! atoms outside the temporal operators, so every replaced atom is
//! evaluated at instant 0, where `≤_W` means what it should.

use crate::machine::Machine;
use crate::phi;
use std::sync::Arc;
use ticc_fotl::{Atom, Formula, Term};
use ticc_tdb::{PredId, Schema};

/// The pieces of `φ̃`.
pub struct PhiTildeParts {
    /// `W1`: at most one `W` per state.
    pub w1: Formula,
    /// `W2`: at least one `W` per state (`□∃x W(x)`).
    pub w2: Formula,
    /// `W3`: each element is `W` at most once.
    pub w3: Formula,
    /// The relativised safety groups of `φ_W` (groups 1–3).
    pub phi_w_safety: Formula,
    /// The relativised repeating group of `φ_W`.
    pub phi_w_repeating: Formula,
}

impl PhiTildeParts {
    /// `φ̃` in one piece.
    pub fn conjunction(&self) -> Formula {
        // w2 is closed; the others are ∀-prefixed — conjoin under one
        // shared ∀x∀y∀z prefix (adding vacuous quantifiers is harmless).
        let strip = |f: &Formula| {
            let (_, body) = ticc_fotl::classify::external_prefix(f);
            body.clone()
        };
        Formula::forall_many(
            ["x", "y", "z"],
            Formula::and_all([
                strip(&self.phi_w_safety),
                strip(&self.phi_w_repeating),
                strip(&self.w1),
                self.w2.clone(),
                strip(&self.w3),
            ]),
        )
    }
}

/// The machine's encoding schema extended with the `W` predicate.
pub fn machine_schema_with_w(machine: &Machine) -> Arc<Schema> {
    let mut b = Schema::builder();
    for cell in crate::encode::cell_contents(machine) {
        let name =
            crate::encode::cell_pred_name(machine, cell).expect("cell_contents skips plain blank");
        b = b.pred(&name, 1);
    }
    b.pred("W", 1).build()
}

fn w_atom(w: PredId, t: Term) -> Formula {
    Formula::pred(w, vec![t])
}

/// `x ≤_W y ≡ ◇(W(x) ∧ ◇W(y))`.
pub fn leq_w(w: PredId, x: Term, y: Term) -> Formula {
    w_atom(w, x).and(w_atom(w, y).eventually()).eventually()
}

/// `S_W(x, y) ≡ ◇(W(x) ∧ ○W(y))`.
pub fn succ_w(w: PredId, x: Term, y: Term) -> Formula {
    w_atom(w, x).and(w_atom(w, y).next()).eventually()
}

/// `Z_W(x) ≡ W(x)` (read at instant 0).
pub fn zero_w(w: PredId, x: Term) -> Formula {
    w_atom(w, x)
}

/// Replaces every extended-vocabulary atom by its `W`-definition.
fn substitute_extended(f: &Formula, w: PredId) -> Formula {
    match f {
        Formula::Atom(Atom::Leq(a, b)) => leq_w(w, a.clone(), b.clone()),
        Formula::Atom(Atom::Succ(a, b)) => succ_w(w, a.clone(), b.clone()),
        Formula::Atom(Atom::Zero(a)) => zero_w(w, a.clone()),
        Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
        Formula::Not(g) => substitute_extended(g, w).not(),
        Formula::And(a, b) => substitute_extended(a, w).and(substitute_extended(b, w)),
        Formula::Or(a, b) => substitute_extended(a, w).or(substitute_extended(b, w)),
        Formula::Implies(a, b) => substitute_extended(a, w).implies(substitute_extended(b, w)),
        Formula::Next(g) => substitute_extended(g, w).next(),
        Formula::Until(a, b) => substitute_extended(a, w).until(substitute_extended(b, w)),
        Formula::Prev(g) => substitute_extended(g, w).prev(),
        Formula::Since(a, b) => substitute_extended(a, w).since(substitute_extended(b, w)),
        Formula::Forall(v, g) => Formula::forall(v.clone(), substitute_extended(g, w)),
        Formula::Exists(v, g) => Formula::exists(v.clone(), substitute_extended(g, w)),
    }
}

/// Relativises a `∀x∀y∀z M` formula to the `W`-ordered elements:
/// `∀x∀y∀z ((◇W(x) ∧ ◇W(y) ∧ ◇W(z)) → M_W)`.
fn relativise(f: &Formula, w: PredId) -> Formula {
    let (vars, body) = ticc_fotl::classify::external_prefix(f);
    let vars: Vec<String> = vars.into_iter().map(str::to_owned).collect();
    let guard = Formula::and_all(
        vars.iter()
            .map(|v| w_atom(w, Term::var(v.clone())).eventually()),
    );
    let body_w = substitute_extended(body, w);
    Formula::forall_many(vars, guard.implies(body_w))
}

/// Builds the pieces of `φ̃` for a machine over the `W`-extended schema
/// (from [`machine_schema_with_w`]).
pub fn phi_tilde_parts(machine: &Machine, schema: &Arc<Schema>) -> PhiTildeParts {
    let w = schema.pred("W").expect("schema must include W");
    let x = || Term::var("x");
    let y = || Term::var("y");

    let w1 = Formula::forall_many(
        ["x", "y"],
        w_atom(w, x())
            .and(w_atom(w, y()))
            .implies(Formula::eq(x(), y()))
            .always(),
    );
    let w2 = Formula::exists("x", w_atom(w, x())).always();
    // Weak next (equivalent on infinite time; finite-trace friendly,
    // see `phi::wnext`).
    let w3 = Formula::forall(
        "x",
        w_atom(w, x())
            .implies(crate::phi::wnext(w_atom(w, x()).not().always()))
            .always(),
    );

    let parts = phi::phi_parts(machine, schema);
    let safety = {
        // Conjoin groups 1–3 under the shared prefix before
        // relativising.
        let strip = |f: &Formula| {
            let (_, b) = ticc_fotl::classify::external_prefix(f);
            b.clone()
        };
        Formula::forall_many(
            ["x", "y", "z"],
            Formula::and_all([
                strip(&parts.uniqueness),
                strip(&parts.initial),
                strip(&parts.steps),
            ]),
        )
    };
    PhiTildeParts {
        w1,
        w2,
        w3,
        phi_w_safety: relativise(&safety, w),
        phi_w_repeating: relativise(&parts.repeating, w),
    }
}

/// `φ̃` (Theorem 3.2): a `∀³tense(Σ1)` formula over monadic predicates
/// only.
pub fn phi_tilde(machine: &Machine, schema: &Arc<Schema>) -> Formula {
    phi_tilde_parts(machine, schema).conjunction()
}

/// Adds the canonical `W` facts to an encoded run: element `t` is `W`
/// at instant `t` (the identity ordering), turning an encoding of a
/// computation into a model candidate for `φ̃`.
pub fn add_canonical_w(history: &mut ticc_tdb::History) {
    let w = history.schema().pred("W").expect("W in schema");
    let len = history.len();
    let states: Vec<ticc_tdb::State> = history.states().to_vec();
    let mut fresh = ticc_tdb::History::new(history.schema().clone());
    for (t, mut s) in states.into_iter().enumerate() {
        s.insert(w, vec![t as u64]).expect("monadic");
        fresh.push_state(s);
    }
    let _ = len;
    *history = fresh;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_config;
    use crate::machine::run;
    use crate::zoo;
    use ticc_fotl::classify::{classify, FormulaClass};
    use ticc_fotl::eval::{eval_closed, EvalOptions, UniverseSpec};

    fn opts(n: u64) -> EvalOptions {
        EvalOptions {
            universe: UniverseSpec::Bounded(n),
        }
    }

    fn encoded_run_with_w(
        machine: &Machine,
        input: &[bool],
        steps: usize,
    ) -> (Arc<Schema>, ticc_tdb::History) {
        let schema = machine_schema_with_w(machine);
        let r = run(machine, input, steps);
        let mut h = ticc_tdb::History::new(schema.clone());
        for c in &r.configs {
            h.push_state(encode_config(machine, &schema, c));
        }
        add_canonical_w(&mut h);
        (schema, h)
    }

    #[test]
    fn phi_tilde_is_biquantified_sigma1_and_monadic() {
        let m = zoo::shuttle();
        let sc = machine_schema_with_w(&m);
        let f = phi_tilde(&m, &sc);
        assert!(
            !f.uses_extended_vocabulary(),
            "φ̃ must be over database predicates only"
        );
        match classify(&f) {
            FormulaClass::Biquantified {
                external,
                internal_level,
                internal_quantifiers,
            } => {
                assert_eq!(external, 3);
                assert_eq!(internal_level, 1);
                assert_eq!(internal_quantifiers, 1, "only W2's ∃");
            }
            other => panic!("expected ∀³tense(Σ1), got {other:?}"),
        }
        assert_eq!(sc.max_arity(), 1, "monadic vocabulary");
    }

    #[test]
    fn w_formulas_hold_on_canonical_runs() {
        let m = zoo::shuttle();
        let (sc, h) = encoded_run_with_w(&m, &[true], 5);
        let parts = phi_tilde_parts(&m, &sc);
        let o = opts(8);
        assert!(eval_closed(&h, &parts.w1, &o).unwrap());
        assert!(eval_closed(&h, &parts.w2, &o).unwrap());
        assert!(eval_closed(&h, &parts.w3, &o).unwrap());
    }

    #[test]
    fn w_ordering_matches_time_order() {
        let m = zoo::shuttle();
        let (sc, h) = encoded_run_with_w(&m, &[true], 5);
        let w = sc.pred("W").unwrap();
        let o = opts(6);
        // 1 ≤_W 3 but not 3 ≤_W 1; succ_W(2,3); Z_W(0).
        assert!(eval_closed(&h, &leq_w(w, Term::Value(1), Term::Value(3)), &o).unwrap());
        assert!(!eval_closed(&h, &leq_w(w, Term::Value(3), Term::Value(1)), &o).unwrap());
        assert!(eval_closed(&h, &succ_w(w, Term::Value(2), Term::Value(3)), &o).unwrap());
        assert!(!eval_closed(&h, &succ_w(w, Term::Value(2), Term::Value(4)), &o).unwrap());
        assert!(eval_closed(&h, &zero_w(w, Term::Value(0)), &o).unwrap());
        assert!(!eval_closed(&h, &zero_w(w, Term::Value(1)), &o).unwrap());
    }

    #[test]
    fn safety_part_holds_on_valid_runs_and_fails_on_corrupted() {
        let m = zoo::shuttle();
        let (sc, h) = encoded_run_with_w(&m, &[true], 4);
        let parts = phi_tilde_parts(&m, &sc);
        let o = opts(6);
        assert!(eval_closed(&h, &parts.phi_w_safety, &o).unwrap());

        // Corrupt: break uniqueness at instant 2, element 0.
        let mut states: Vec<ticc_tdb::State> = h.states().to_vec();
        let p0 = sc.pred("S_0").unwrap();
        let p1 = sc.pred("S_1").unwrap();
        states[2].insert(p0, vec![0]).unwrap();
        states[2].insert(p1, vec![0]).unwrap();
        let mut h2 = ticc_tdb::History::new(sc.clone());
        for s in states {
            h2.push_state(s);
        }
        assert!(!eval_closed(&h2, &parts.phi_w_safety, &o).unwrap());
    }

    #[test]
    fn w1_fails_with_two_w_elements_per_state() {
        let m = zoo::shuttle();
        let (sc, h) = encoded_run_with_w(&m, &[true], 3);
        let w = sc.pred("W").unwrap();
        let mut states: Vec<ticc_tdb::State> = h.states().to_vec();
        states[1].insert(w, vec![9]).unwrap(); // second W at instant 1
        let mut h2 = ticc_tdb::History::new(sc.clone());
        for s in states {
            h2.push_state(s);
        }
        let parts = phi_tilde_parts(&m, &sc);
        assert!(!eval_closed(&h2, &parts.w1, &opts(11)).unwrap());
    }
}
