//! Deterministic single-tape Turing machines.
//!
//! Machines match Section 3's conventions: one tape infinite to the
//! right over an alphabet `Σ` containing the blank `B` and the input
//! alphabet `{0, 1}`; deterministic transition function; the *repeating
//! behaviour* of interest is an infinite computation whose head visits
//! the leftmost cell infinitely often. Moving left from cell 0 halts the
//! machine (there is no cell there).

use std::collections::HashMap;

/// A tape symbol, as an index into the machine's alphabet.
pub type Sym = u8;

/// A control state, as an index.
pub type StateId = u16;

/// Head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Left.
    L,
    /// Right.
    R,
}

/// A transition: new state, symbol written, head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trans {
    /// Next control state.
    pub state: StateId,
    /// Symbol written over the scanned cell.
    pub write: Sym,
    /// Head movement.
    pub dir: Dir,
}

/// A deterministic Turing machine.
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    state_names: Vec<String>,
    alphabet: Vec<String>,
    initial: StateId,
    trans: HashMap<(StateId, Sym), Trans>,
}

/// The blank symbol `B` is always index 0.
pub const BLANK: Sym = 0;
/// Input symbol `0` is always index 1.
pub const SYM0: Sym = 1;
/// Input symbol `1` is always index 2.
pub const SYM1: Sym = 2;

impl Machine {
    /// Creates a machine. The alphabet always starts `B, 0, 1`;
    /// `extra_symbols` extends it. `state_names` defines the control
    /// states; index 0 is the initial state `q0`.
    pub fn new(name: impl Into<String>, state_names: &[&str], extra_symbols: &[&str]) -> Self {
        assert!(!state_names.is_empty(), "need at least one state");
        let mut alphabet = vec!["B".to_owned(), "0".to_owned(), "1".to_owned()];
        alphabet.extend(extra_symbols.iter().map(|s| (*s).to_owned()));
        Self {
            name: name.into(),
            state_names: state_names.iter().map(|s| (*s).to_owned()).collect(),
            alphabet,
            initial: 0,
            trans: HashMap::new(),
        }
    }

    /// Adds the transition `(q, σ) → (p, τ, dir)`.
    ///
    /// # Panics
    /// Panics on duplicate or out-of-range entries.
    pub fn rule(mut self, q: StateId, sym: Sym, p: StateId, write: Sym, dir: Dir) -> Self {
        assert!((q as usize) < self.state_names.len(), "state out of range");
        assert!((p as usize) < self.state_names.len(), "state out of range");
        assert!((sym as usize) < self.alphabet.len(), "symbol out of range");
        assert!(
            (write as usize) < self.alphabet.len(),
            "symbol out of range"
        );
        let prev = self.trans.insert(
            (q, sym),
            Trans {
                state: p,
                write,
                dir,
            },
        );
        assert!(prev.is_none(), "duplicate transition for ({q}, {sym})");
        self
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of control states.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Name of a control state.
    pub fn state_name(&self, q: StateId) -> &str {
        &self.state_names[q as usize]
    }

    /// Alphabet size (including the blank).
    pub fn num_symbols(&self) -> usize {
        self.alphabet.len()
    }

    /// Name of a symbol.
    pub fn symbol_name(&self, s: Sym) -> &str {
        &self.alphabet[s as usize]
    }

    /// The initial state `q0`.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The transition for `(q, σ)`, if defined.
    pub fn transition(&self, q: StateId, sym: Sym) -> Option<Trans> {
        self.trans.get(&(q, sym)).copied()
    }
}

/// A configuration: control state, head position, and the explicit tape
/// prefix (cells beyond it are blank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Control state.
    pub state: StateId,
    /// Head cell index.
    pub head: usize,
    /// Explicit tape cells; implicit blanks beyond.
    pub tape: Vec<Sym>,
}

/// Result of an in-place step ([`Config::step_mut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// The machine moved.
    Moved,
    /// No transition defined: halted.
    Halted,
    /// Attempted to move left from cell 0.
    FellOff,
}

/// Result of one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The machine continues in the given configuration.
    Next(Config),
    /// No transition defined for the scanned pair: the machine halts.
    Halted,
    /// The machine attempted to move left from cell 0.
    FellOff,
}

impl Config {
    /// The initial configuration `q0 w B^ω` for an input over `{0, 1}`.
    pub fn initial(machine: &Machine, input: &[bool]) -> Self {
        Self {
            state: machine.initial(),
            head: 0,
            tape: input.iter().map(|&b| if b { SYM1 } else { SYM0 }).collect(),
        }
    }

    /// The symbol at a cell (blank beyond the explicit tape).
    pub fn symbol_at(&self, cell: usize) -> Sym {
        self.tape.get(cell).copied().unwrap_or(BLANK)
    }

    /// Number of cells needed to show the configuration (head and all
    /// non-blank cells).
    pub fn significant_len(&self) -> usize {
        let mut n = self.tape.len();
        while n > 0 && self.tape[n - 1] == BLANK {
            n -= 1;
        }
        n.max(self.head + 1)
    }

    /// Performs one move of `machine`.
    pub fn step(&self, machine: &Machine) -> StepOutcome {
        let scanned = self.symbol_at(self.head);
        let Some(t) = machine.transition(self.state, scanned) else {
            return StepOutcome::Halted;
        };
        let mut tape = self.tape.clone();
        if self.head >= tape.len() {
            tape.resize(self.head + 1, BLANK);
        }
        tape[self.head] = t.write;
        let head = match t.dir {
            Dir::R => self.head + 1,
            Dir::L => {
                if self.head == 0 {
                    return StepOutcome::FellOff;
                }
                self.head - 1
            }
        };
        StepOutcome::Next(Config {
            state: t.state,
            head,
            tape,
        })
    }

    /// Performs one move **in place** (no tape clone). Returns what
    /// happened; on `Halted`/`FellOff` the configuration is unchanged.
    pub fn step_mut(&mut self, machine: &Machine) -> StepKind {
        let scanned = self.symbol_at(self.head);
        let Some(t) = machine.transition(self.state, scanned) else {
            return StepKind::Halted;
        };
        if t.dir == Dir::L && self.head == 0 {
            return StepKind::FellOff;
        }
        if self.head >= self.tape.len() {
            self.tape.resize(self.head + 1, BLANK);
        }
        self.tape[self.head] = t.write;
        self.state = t.state;
        match t.dir {
            Dir::R => self.head += 1,
            Dir::L => self.head -= 1,
        }
        StepKind::Moved
    }

    /// Renders the configuration in the paper's `α q β` form.
    pub fn display(&self, machine: &Machine) -> String {
        let n = self.significant_len();
        let mut out = String::new();
        for i in 0..=n {
            if i == self.head {
                out.push('[');
                out.push_str(machine.state_name(self.state));
                out.push(']');
            }
            if i < n {
                out.push_str(machine.symbol_name(self.symbol_at(i)));
            }
        }
        out
    }
}

/// Simulates up to `max_steps` moves from the initial configuration on
/// `input`, recording every configuration (including the initial one)
/// and the number of leftmost-cell visits.
pub struct RunResult {
    /// Configurations visited, in order.
    pub configs: Vec<Config>,
    /// How the run ended within the budget.
    pub end: RunEnd,
    /// Number of configurations with the head at cell 0 (the *repeating
    /// behaviour* counter; the initial configuration counts).
    pub leftmost_visits: usize,
}

/// How a bounded run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// Budget exhausted while still running.
    Running,
    /// Machine halted (no transition).
    Halted,
    /// Machine moved left from cell 0.
    FellOff,
}

/// Runs `machine` on `input` for at most `max_steps` moves.
pub fn run(machine: &Machine, input: &[bool], max_steps: usize) -> RunResult {
    let mut configs = vec![Config::initial(machine, input)];
    let mut leftmost = usize::from(configs[0].head == 0);
    let mut end = RunEnd::Running;
    for _ in 0..max_steps {
        match configs.last().expect("non-empty").step(machine) {
            StepOutcome::Next(c) => {
                if c.head == 0 {
                    leftmost += 1;
                }
                configs.push(c);
            }
            StepOutcome::Halted => {
                end = RunEnd::Halted;
                break;
            }
            StepOutcome::FellOff => {
                end = RunEnd::FellOff;
                break;
            }
        }
    }
    RunResult {
        configs,
        end,
        leftmost_visits: leftmost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn initial_configuration() {
        let m = zoo::shuttle();
        let c = Config::initial(&m, &[true, false]);
        assert_eq!(c.state, 0);
        assert_eq!(c.head, 0);
        assert_eq!(c.symbol_at(0), SYM1);
        assert_eq!(c.symbol_at(1), SYM0);
        assert_eq!(c.symbol_at(2), BLANK);
        assert_eq!(c.significant_len(), 2);
    }

    #[test]
    fn shuttle_repeats_forever() {
        let m = zoo::shuttle();
        let r = run(&m, &[true], 100);
        assert_eq!(r.end, RunEnd::Running);
        assert!(r.leftmost_visits >= 50, "visits: {}", r.leftmost_visits);
    }

    #[test]
    fn runner_never_returns() {
        let m = zoo::runner();
        let r = run(&m, &[true, true], 100);
        assert_eq!(r.end, RunEnd::Running);
        assert_eq!(r.leftmost_visits, 1, "only the initial configuration");
    }

    #[test]
    fn halter_halts() {
        let m = zoo::halter();
        let r = run(&m, &[true], 100);
        assert_eq!(r.end, RunEnd::Halted);
        assert_eq!(r.configs.len(), 1);
    }

    #[test]
    fn falling_off_detected() {
        // A machine that immediately moves left from cell 0.
        let m = Machine::new("lefty", &["q0"], &[]).rule(0, SYM1, 0, SYM1, Dir::L);
        let r = run(&m, &[true], 10);
        assert_eq!(r.end, RunEnd::FellOff);
    }

    #[test]
    fn display_shows_head() {
        let m = zoo::shuttle();
        let c = Config::initial(&m, &[true, false]);
        assert_eq!(c.display(&m), "[go]10");
    }

    #[test]
    #[should_panic(expected = "duplicate transition")]
    fn duplicate_rule_rejected() {
        let _ = Machine::new("m", &["q0"], &[])
            .rule(0, SYM0, 0, SYM0, Dir::R)
            .rule(0, SYM0, 0, SYM1, Dir::R);
    }
}
