//! E6: two grounding ablations.
//!
//! (a) The paper's literal `Axiom_D` grounding vs rigid-atom folding
//!     (equivalent verdicts; folding removes the axiom bulk).
//! (b) Delta re-grounding vs full re-grounding in the online engine:
//!     when the active domain grows one element at a time, the delta
//!     path re-grounds only the mappings that mention the new element
//!     and replays only those conjuncts through the stored trace.

use ticc_bench::table::fmt_duration;
use ticc_bench::{once_only, order_schema, spread_history, time_best_of, Table};
use ticc_core::{check_potential_satisfaction, CheckOptions, GroundMode, Monitor, Regrounding};
use ticc_ptl::sat::SatSolver;
use ticc_tdb::Transaction;

fn main() {
    let sc = order_schema();
    let phi = once_only(&sc);

    let mut table = Table::new(
        "E6a — Axiom_D grounding vs rigid-atom folding",
        "equivalent verdicts; folding removes the axiom bulk",
        &["|R_D|", "full Axiom_D", "folded"],
    );
    for m in [2usize, 3, 4] {
        let h = spread_history(&sc, m);
        let mut times = Vec::new();
        for mode in [GroundMode::Full, GroundMode::Folded] {
            let d = time_best_of(3, || {
                let out = check_potential_satisfaction(
                    &h,
                    &phi,
                    &CheckOptions::builder()
                        .mode(mode)
                        .solver(SatSolver::Buchi)
                        .build(),
                )
                .unwrap();
                assert!(out.potentially_satisfied);
            });
            times.push(fmt_duration(d));
        }
        table.row([m.to_string(), times[0].clone(), times[1].clone()]);
    }
    table.print();

    // (b) Online appends where every instant introduces a fresh element,
    // so each append triggers a re-grounding. Delta mode replays only
    // the new conjuncts; full mode rebuilds the grounding from scratch.
    let sub = sc.pred("Sub").unwrap();
    let mut table = Table::new(
        "E6b — delta vs full re-grounding on a growing domain",
        "delta replays O(|Δ-part|) conjuncts per append instead of O(|φ_D|)",
        &[
            "appends",
            "full reground",
            "delta",
            "replayed conjuncts (delta)",
        ],
    );
    for appends in [8usize, 16, 24] {
        let mut times = Vec::new();
        let mut replayed = 0u64;
        for regrounding in [Regrounding::Full, Regrounding::Delta] {
            let opts = CheckOptions::builder().regrounding(regrounding).build();
            let d = time_best_of(3, || {
                let mut m = Monitor::new(sc.clone(), opts);
                m.add_constraint("once", once_only(&sc)).unwrap();
                for i in 0..appends as u64 {
                    // Clear the previous submission so the constraint
                    // stays live: every append is a fresh arrival.
                    let mut tx = Transaction::new().insert(sub, vec![100 + i]);
                    if i > 0 {
                        tx = tx.delete(sub, vec![100 + i - 1]);
                    }
                    let _ = m.append(&tx).unwrap();
                }
                if regrounding == Regrounding::Delta {
                    replayed = m.engine_stats().replayed_conjuncts;
                }
            });
            times.push(fmt_duration(d));
        }
        table.row([
            appends.to_string(),
            times[0].clone(),
            times[1].clone(),
            replayed.to_string(),
        ]);
    }
    table.print();
}
