//! E6: ablation — the paper's literal `Axiom_D` grounding vs rigid-atom
//! folding (equivalent verdicts; folding removes the axiom bulk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_bench::{once_only, order_schema, spread_history};
use ticc_core::{check_potential_satisfaction, CheckOptions, GroundMode};
use ticc_ptl::sat::SatSolver;

fn bench(c: &mut Criterion) {
    let sc = order_schema();
    let phi = once_only(&sc);
    for (name, mode) in [
        ("e6_full_axiom_d", GroundMode::Full),
        ("e6_folded", GroundMode::Folded),
    ] {
        let mut g = c.benchmark_group(name);
        g.sample_size(10);
        for m in [2usize, 3, 4] {
            let h = spread_history(&sc, m);
            g.bench_with_input(BenchmarkId::from_parameter(m), &h, |b, h| {
                b.iter(|| {
                    let out = check_potential_satisfaction(
                        h,
                        &phi,
                        &CheckOptions {
                            mode,
                            solver: SatSolver::Buchi,
                        },
                    )
                    .unwrap();
                    assert!(out.potentially_satisfied);
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
