//! E4: grounding cost vs the number of external quantifiers `k`
//! (expected: `(|R_D|+k)^k` instances).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_bench::{chain_constraint, edge_schema, path_history};
use ticc_core::{ground, GroundMode};

fn bench(c: &mut Criterion) {
    let esc = edge_schema();
    let mut g = c.benchmark_group("e4_quantifiers");
    g.sample_size(10);
    for k in [1usize, 2, 3, 4] {
        let phi = chain_constraint(&esc, k);
        let h = path_history(&esc, 4);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| ground(&h, &phi, GroundMode::Folded).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
