//! E4: grounding cost vs the number of external quantifiers `k`
//! (expected: `(|R_D|+k)^k` instances).

use ticc_bench::table::fmt_duration;
use ticc_bench::{chain_constraint, edge_schema, path_history, time_best_of, Table};
use ticc_core::{ground, GroundMode};

fn main() {
    let esc = edge_schema();
    let mut table = Table::new(
        "E4 — grounding cost vs external quantifier count k",
        "Theorem 4.1: (|R_D|+k)^k ground instances",
        &["k", "time"],
    );
    for k in [1usize, 2, 3, 4] {
        let phi = chain_constraint(&esc, k);
        let h = path_history(&esc, 4);
        let d = time_best_of(3, || {
            ground(&h, &phi, GroundMode::Folded).unwrap();
        });
        table.row([k.to_string(), fmt_duration(d)]);
    }
    table.print();
}
