//! E4: grounding cost vs the number of external quantifiers `k`
//! (expected: `(|R_D|+k)^k` instances).
//!
//! Accepts `--threads off|auto|<n>` (default `4`): at higher `k` the
//! `|M|^k` instantiation space is large enough for the sharded
//! grounding to engage.

use ticc_bench::table::fmt_duration;
use ticc_bench::{chain_constraint, edge_schema, path_history, time_best_of, Table};
use ticc_core::{ground, ground_with, GroundMode};

fn main() {
    let threads = ticc_bench::threads_arg();
    let esc = edge_schema();
    let mut table = Table::new(
        "E4 — grounding cost vs external quantifier count k",
        "Theorem 4.1: (|R_D|+k)^k ground instances",
        &["k", "time (off)", &format!("time (threads={threads})")],
    );
    for k in [1usize, 2, 3, 4] {
        let phi = chain_constraint(&esc, k);
        let h = path_history(&esc, 4);
        let d = time_best_of(3, || {
            ground(&h, &phi, GroundMode::Folded).unwrap();
        });
        let dp = time_best_of(3, || {
            ground_with(&h, &phi, GroundMode::Folded, threads).unwrap();
        });
        table.row([k.to_string(), fmt_duration(d), fmt_duration(dp)]);
    }
    table.print();
}
