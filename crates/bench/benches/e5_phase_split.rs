//! E5: the Lemma 4.2 phase decomposition — grounding+progression scale
//! with `t`, the residue satisfiability does not. Measured here by
//! timing the phases in isolation.

use ticc_bench::table::fmt_duration;
use ticc_bench::{cyclic_order_history, fifo, order_schema, time_best_of, Table};
use ticc_core::{ground, GroundMode};
use ticc_ptl::progression::progress_trace;
use ticc_ptl::sat::is_satisfiable;

fn main() {
    let sc = order_schema();
    let phi = fifo(&sc);

    let mut table = Table::new(
        "E5 — Lemma 4.2 phase split",
        "phase 1 (ground + progress) grows with t; phase 2 (residue sat) stays flat",
        &["t", "phase1 ground+progress", "phase2 residue sat"],
    );
    for t in [64usize, 512, 4096] {
        let h = cyclic_order_history(&sc, t);
        let d1 = time_best_of(5, || {
            let mut gr = ground(&h, &phi, GroundMode::Folded).unwrap();
            let trace = std::mem::take(&mut gr.trace);
            progress_trace(&mut gr.arena, gr.formula, &trace).unwrap();
        });
        let mut gr = ground(&h, &phi, GroundMode::Folded).unwrap();
        let trace = std::mem::take(&mut gr.trace);
        let residue = progress_trace(&mut gr.arena, gr.formula, &trace).unwrap();
        let d2 = time_best_of(5, || {
            let r = is_satisfiable(&mut gr.arena, residue).unwrap();
            assert!(r.satisfiable);
        });
        table.row([t.to_string(), fmt_duration(d1), fmt_duration(d2)]);
    }
    table.print();
}
