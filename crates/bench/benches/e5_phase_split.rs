//! E5: the Lemma 4.2 phase decomposition — grounding+progression scale
//! with `t`, the residue satisfiability does not. Measured here by
//! benchmarking the phases in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_bench::{cyclic_order_history, fifo, order_schema};
use ticc_core::{ground, GroundMode};
use ticc_ptl::progression::progress_trace;
use ticc_ptl::sat::is_satisfiable;

fn bench(c: &mut Criterion) {
    let sc = order_schema();
    let phi = fifo(&sc);

    let mut g = c.benchmark_group("e5_phase1_ground_progress");
    g.sample_size(10);
    for t in [64usize, 512, 4096] {
        let h = cyclic_order_history(&sc, t);
        g.bench_with_input(BenchmarkId::from_parameter(t), &h, |b, h| {
            b.iter(|| {
                let mut gr = ground(h, &phi, GroundMode::Folded).unwrap();
                let trace = std::mem::take(&mut gr.trace);
                progress_trace(&mut gr.arena, gr.formula, &trace).unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e5_phase2_residue_sat");
    g.sample_size(10);
    for t in [64usize, 512, 4096] {
        let h = cyclic_order_history(&sc, t);
        let mut gr = ground(&h, &phi, GroundMode::Folded).unwrap();
        let trace = std::mem::take(&mut gr.trace);
        let residue = progress_trace(&mut gr.arena, gr.formula, &trace).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                let r = is_satisfiable(&mut gr.arena, residue).unwrap();
                assert!(r.satisfiable);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
