//! E10: the binary-counter lower-bound family (Section 6) — deciding a
//! single-state instance forces ~2^n automaton exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_core::counter::counter_instance;
use ticc_core::{check_potential_satisfaction, CheckOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_counter_family");
    g.sample_size(10);
    for bits in [2usize, 4, 6] {
        let inst = counter_instance(bits, true);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &inst, |b, inst| {
            b.iter(|| {
                let out = check_potential_satisfaction(
                    &inst.history,
                    &inst.constraint,
                    &CheckOptions::default(),
                )
                .unwrap();
                assert!(!out.potentially_satisfied);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
