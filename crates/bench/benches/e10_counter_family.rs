//! E10: the binary-counter lower-bound family (Section 6) — deciding a
//! single-state instance forces ~2^n automaton exploration.

use ticc_bench::table::fmt_duration;
use ticc_bench::{time_best_of, Table};
use ticc_core::counter::counter_instance;
use ticc_core::{check_potential_satisfaction, CheckOptions};

fn main() {
    let mut table = Table::new(
        "E10 — binary-counter lower-bound family",
        "Section 6: deciding a single-state instance forces ~2^n exploration",
        &["bits", "time"],
    );
    for bits in [2usize, 4, 6] {
        let inst = counter_instance(bits, true);
        let d = time_best_of(3, || {
            let out = check_potential_satisfaction(
                &inst.history,
                &inst.constraint,
                &CheckOptions::default(),
            )
            .unwrap();
            assert!(!out.potentially_satisfied);
        });
        table.row([bits.to_string(), fmt_duration(d)]);
    }
    table.print();
}
