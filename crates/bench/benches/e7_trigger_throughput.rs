//! E7: online monitor + trigger throughput on the paper's customer-order
//! workload (Section 2 duality, end to end).
//!
//! Accepts `--threads off|auto|<n>` (default `4`): the monitor's
//! per-constraint checks and the trigger engine's (trigger ×
//! substitution) jobs both fan out across the worker pool.

use ticc_bench::table::fmt_duration;
use ticc_bench::{fifo, once_only, order_schema, time_best_of, Table};
use ticc_core::{CheckOptions, Monitor, Threads, TriggerEngine};
use ticc_tdb::workload::OrderWorkload;
use ticc_tdb::Transaction;

fn run_monitor(sc: &std::sync::Arc<ticc_tdb::Schema>, h: &ticc_tdb::History, threads: Threads) {
    let mut m = Monitor::new(sc.clone(), CheckOptions::builder().threads(threads).build());
    m.add_constraint("once", once_only(sc)).unwrap();
    m.add_constraint("fifo", fifo(sc)).unwrap();
    for st in h.states() {
        let mut tx = Transaction::new();
        if let Some(prev) = m.history().last() {
            for p in sc.preds() {
                for tuple in prev.relation(p).iter() {
                    tx = tx.delete(p, tuple.to_vec());
                }
            }
        }
        for p in sc.preds() {
            for tuple in st.relation(p).iter() {
                tx = tx.insert(p, tuple.to_vec());
            }
        }
        let _ = m.append(&tx).unwrap();
    }
}

fn main() {
    let threads = ticc_bench::threads_arg();
    let sc = order_schema();

    let mut table = Table::new(
        "E7 — monitor append throughput (customer-order workload)",
        "per-append cost stays flat once the relevant domain stabilises",
        &[
            "instants",
            "time (off)",
            &format!("time (threads={threads})"),
            "us/append (off)",
        ],
    );
    for instants in [8usize, 16, 24] {
        let h = OrderWorkload {
            instants,
            submit_prob: 0.5,
            fill_prob: 0.5,
            violation: None,
            seed: 7,
        }
        .generate();
        let d = time_best_of(5, || run_monitor(&sc, &h, Threads::Off));
        let dp = time_best_of(5, || run_monitor(&sc, &h, threads));
        table.row([
            instants.to_string(),
            fmt_duration(d),
            fmt_duration(dp),
            format!("{:.1}", d.as_secs_f64() * 1e6 / instants as f64),
        ]);
    }
    table.print();

    // Trigger evaluation cost on a fixed dirty history.
    let h = OrderWorkload {
        instants: 10,
        submit_prob: 0.8,
        fill_prob: 0.2,
        violation: Some((ticc_tdb::workload::OrderViolation::DoubleSubmit, 6)),
        seed: 3,
    }
    .generate();
    let mut table = Table::new(
        "E7 — trigger evaluation on a dirty history",
        "the Section 2 duality: triggers fire via potential-satisfaction checks",
        &[
            "triggers",
            "time (off)",
            &format!("time (threads={threads})"),
        ],
    );
    let mut times = Vec::new();
    for t in [Threads::Off, threads] {
        let mut engine = TriggerEngine::new(CheckOptions::builder().threads(t).build());
        let cond = ticc_fotl::parser::parse(&sc, "F (Sub(x) & X F Sub(x))").unwrap();
        engine
            .add(ticc_core::Trigger {
                name: "dup".into(),
                condition: cond,
                action: ticc_core::Action::Log,
            })
            .unwrap();
        let d = time_best_of(5, || {
            let fired = engine.evaluate(&h).unwrap();
            assert!(!fired.is_empty());
        });
        times.push(fmt_duration(d));
    }
    table.row(["1".into(), times[0].clone(), times[1].clone()]);
    table.print();
}
