//! E7: online monitor + trigger throughput on the paper's customer-order
//! workload (Section 2 duality, end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ticc_bench::{fifo, once_only, order_schema};
use ticc_core::{CheckOptions, Monitor, TriggerEngine};
use ticc_tdb::workload::OrderWorkload;
use ticc_tdb::Transaction;

fn bench(c: &mut Criterion) {
    let sc = order_schema();

    let mut g = c.benchmark_group("e7_monitor_appends");
    g.sample_size(10);
    for instants in [8usize, 16, 24] {
        let h = OrderWorkload {
            instants,
            submit_prob: 0.5,
            fill_prob: 0.5,
            violation: None,
            seed: 7,
        }
        .generate();
        g.throughput(Throughput::Elements(instants as u64));
        g.bench_with_input(BenchmarkId::from_parameter(instants), &h, |b, h| {
            b.iter(|| {
                let mut m = Monitor::new(sc.clone(), CheckOptions::default());
                m.add_constraint("once", once_only(&sc)).unwrap();
                m.add_constraint("fifo", fifo(&sc)).unwrap();
                for st in h.states() {
                    let mut tx = Transaction::new();
                    if let Some(prev) = m.history().last() {
                        for p in sc.preds() {
                            for tuple in prev.relation(p).iter() {
                                tx = tx.delete(p, tuple.to_vec());
                            }
                        }
                    }
                    for p in sc.preds() {
                        for tuple in st.relation(p).iter() {
                            tx = tx.insert(p, tuple.to_vec());
                        }
                    }
                    let _ = m.append(&tx).unwrap();
                }
            })
        });
    }
    g.finish();

    // Trigger evaluation cost on a fixed dirty history.
    let mut g = c.benchmark_group("e7_trigger_eval");
    g.sample_size(10);
    let h = OrderWorkload {
        instants: 10,
        submit_prob: 0.8,
        fill_prob: 0.2,
        violation: Some((ticc_tdb::workload::OrderViolation::DoubleSubmit, 6)),
        seed: 3,
    }
    .generate();
    let mut engine = TriggerEngine::new(CheckOptions::default());
    let cond = ticc_fotl::parser::parse(&sc, "F (Sub(x) & X F Sub(x))").unwrap();
    engine
        .add(ticc_core::Trigger {
            name: "dup".into(),
            condition: cond,
            action: ticc_core::Action::Log,
        })
        .unwrap();
    g.bench_function("evaluate", |b| {
        b.iter(|| {
            let fired = engine.evaluate(&h).unwrap();
            assert!(!fired.is_empty());
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
