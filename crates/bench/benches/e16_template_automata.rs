//! E16: compiled template automata vs symbolic progression.
//!
//! The response constraint `forall x. G (Sub(x) -> X Fill(x))` grounds
//! to `n` isomorphic instantiations, one per submitted element. The
//! compiled path canonicalizes each instantiation's residue modulo
//! letter renaming, subset-constructs ONE explicit safety automaton
//! for the shared shape, and steps every instantiation as a `u32`
//! state — dormant instantiations (whose letter column self-loops)
//! are skipped entirely, so a steady append is `O(|Δtx|)`. The
//! symbolic ablation (`template_automata = false`) re-progresses the
//! conjunction residue instead; the obligation walks across all `n`
//! elements with period `n`, so neither the transition cache nor the
//! phase-2 sat cache converges and every append pays `O(n)`.
//!
//! Accepts `--threads off|auto|<n>` (default `4`); the knob only
//! affects grounding — both progression paths are deterministic and
//! the check events are asserted identical.

use std::time::Instant;
use ticc_bench::table::fmt_duration;
use ticc_bench::{order_schema, response, response_setup_txs, response_steady_tx, Table};
use ticc_core::{CheckOptions, Monitor};

fn main() {
    // Match the harness: the symbolic baseline progresses an n-conjunct
    // residue recursively; reserve stack room beyond the 8 MiB default.
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(run)
        .expect("spawn bench thread")
        .join()
        .expect("bench thread panicked");
}

fn run() {
    let threads = ticc_bench::threads_arg();
    let sc = order_schema();
    let phi = response(&sc);
    let measured = 60usize;

    let mut table = Table::new(
        "E16 — template automata vs symbolic progression (response constraint)",
        "one shared template automaton, u32 state per instantiation; \
         the symbolic residue cycles with period n and misses both caches",
        &[
            "insts",
            "templates",
            "states",
            "symbolic/app",
            "compiled/app",
            "speedup",
        ],
    );
    for n in [1000usize, 4000, 12000] {
        let run = |template_automata: bool| {
            let opts = CheckOptions::builder()
                .template_automata(template_automata)
                .threads(threads)
                .build();
            let mut m = Monitor::new(sc.clone(), opts);
            m.add_constraint("response", phi.clone()).unwrap();
            let mut events = Vec::new();
            for tx in response_setup_txs(&sc, n) {
                events.extend(m.append(&tx).unwrap());
            }
            let start = Instant::now();
            for i in 0..measured {
                events.extend(m.append(&response_steady_tx(&sc, n, i)).unwrap());
            }
            (start.elapsed(), m.engine_stats(), events)
        };
        let (d_cmp, s_cmp, ev_cmp) = run(true);
        let (d_sym, _, ev_sym) = run(false);
        assert_eq!(ev_cmp, ev_sym, "compiled / symbolic check events diverged");
        assert!(s_cmp.templates_compiled >= 1, "workload must compile");
        let per_cmp = d_cmp / measured as u32;
        let per_sym = d_sym / measured as u32;
        table.row([
            n.to_string(),
            s_cmp.templates_compiled.to_string(),
            s_cmp.automaton_states.to_string(),
            fmt_duration(per_sym),
            fmt_duration(per_cmp),
            format!(
                "{:.1}x",
                d_sym.as_secs_f64() / d_cmp.as_secs_f64().max(f64::MIN_POSITIVE)
            ),
        ]);
    }
    table.print();
}
