//! E14: restart cost — recovering a monitoring session from an engine
//! snapshot vs replaying every transaction through the checker.
//!
//! A checkpoint captures the Theorem 4.1 monitor state (current
//! database + bounded per-constraint residues), so restore is
//! `O(|snapshot|)` regardless of how long the session ran; a cold
//! replay pays the per-append checking cost `t` times over. The sweep
//! grows `t` and reports both recovery paths.

use ticc_bench::table::{fmt_duration, Table};
use ticc_bench::{order_schema, steady_churn_tx, FIFO};
use ticc_core::{CheckOptions, Engine};
use ticc_fotl::parser::parse;

const CONSTRAINTS: [(&str, &str); 4] = [
    ("fifo", FIFO),
    ("cap-sub", "G !Sub(999)"),
    ("cap-fill", "G !Fill(999)"),
    ("excl", "forall x. G !(Sub(x) & Fill(x))"),
];

fn main() {
    let sc = order_schema();
    let domain = 6usize;
    let opts = CheckOptions::default();

    let mut table = Table::new(
        "E14 — restart cost (steady churn, |R_D| = 6, FIFO + 3 invariants)",
        "snapshot restore is O(|snapshot|); cold replay re-pays t appends",
        &["t", "restore", "replay", "snapshot bytes", "speedup"],
    );
    for total in [512usize, 2048, 4096] {
        let path =
            std::env::temp_dir().join(format!("ticc-bench-e14-{total}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (mut engine, _) = Engine::open(&path, sc.clone(), opts).unwrap();
        for (name, src) in CONSTRAINTS {
            engine
                .add_constraint(name, parse(&sc, src).unwrap())
                .unwrap();
        }
        let mut txs = Vec::with_capacity(total);
        for i in 0..total {
            let tx = steady_churn_tx(&sc, domain, i);
            assert!(engine.append(&tx).unwrap().is_empty());
            txs.push(tx);
        }
        engine.compact(&[]).unwrap();
        let snapshot_bytes = engine.store_stats().unwrap().last_snapshot_bytes;
        drop(engine);

        let restore = ticc_bench::time_best_of(3, || {
            let (e, report) = Engine::open(&path, sc.clone(), opts).unwrap();
            assert!(report.had_snapshot && report.replayed_txs == 0);
            assert_eq!(e.history().len(), total);
        });
        let replay = ticc_bench::time_best_of(1, || {
            let mut e = Engine::new(sc.clone(), opts);
            for (name, src) in CONSTRAINTS {
                e.add_constraint(name, parse(&sc, src).unwrap()).unwrap();
            }
            for tx in &txs {
                e.append(tx).unwrap();
            }
        });
        table.row([
            total.to_string(),
            fmt_duration(restore),
            fmt_duration(replay),
            snapshot_bytes.to_string(),
            format!("{:.1}x", replay.as_secs_f64() / restore.as_secs_f64()),
        ]);
        let _ = std::fs::remove_file(&path);
    }
    table.print();
}
