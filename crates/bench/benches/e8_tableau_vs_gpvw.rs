//! E8: ablation — the classic closure-subset tableau (Sistla–Clarke
//! object) vs the on-the-fly GPVW construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_bench::gf_family;
use ticc_ptl::arena::Arena;
use ticc_ptl::sat::{is_satisfiable_with, SatSolver};

fn bench(c: &mut Criterion) {
    for (name, solver) in [
        ("e8_tableau", SatSolver::Tableau),
        ("e8_gpvw", SatSolver::Buchi),
    ] {
        let mut g = c.benchmark_group(name);
        g.sample_size(10);
        for n in [1usize, 2, 3, 4] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| {
                    let mut ar = Arena::new();
                    let f = gf_family(&mut ar, n);
                    let r = is_satisfiable_with(&mut ar, f, solver).unwrap();
                    assert!(r.satisfiable);
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
