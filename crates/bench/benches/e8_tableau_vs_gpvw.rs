//! E8: ablation — the classic closure-subset tableau (Sistla–Clarke
//! object) vs the on-the-fly GPVW construction.

use ticc_bench::table::fmt_duration;
use ticc_bench::{gf_family, time_best_of, Table};
use ticc_ptl::arena::Arena;
use ticc_ptl::sat::{is_satisfiable_with, SatSolver};

fn main() {
    let mut table = Table::new(
        "E8 — tableau vs GPVW satisfiability",
        "closure-subset tableau pays the full 2^|clo(φ)| up front; GPVW explores on the fly",
        &["n", "tableau", "gpvw"],
    );
    for n in [1usize, 2, 3, 4] {
        let mut times = Vec::new();
        for solver in [SatSolver::Tableau, SatSolver::Buchi] {
            let d = time_best_of(3, || {
                let mut ar = Arena::new();
                let f = gf_family(&mut ar, n);
                let r = is_satisfiable_with(&mut ar, f, solver).unwrap();
                assert!(r.satisfiable);
            });
            times.push(fmt_duration(d));
        }
        table.row([n.to_string(), times[0].clone(), times[1].clone()]);
    }
    table.print();
}
