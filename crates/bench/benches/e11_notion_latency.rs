//! E11: per-append cost of the two violation notions (Section 5) —
//! potential satisfaction (phase-2 satisfiability per update) vs the
//! weaker bad-prefix notion (progression only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_bench::{once_only, order_schema};
use ticc_core::monitor::Notion;
use ticc_core::{CheckOptions, Monitor};
use ticc_tdb::Transaction;

fn bench(c: &mut Criterion) {
    let sc = order_schema();
    let sub = sc.pred("Sub").unwrap();
    for (name, notion) in [
        ("e11_potential", Notion::Potential),
        ("e11_bad_prefix", Notion::BadPrefix),
    ] {
        let mut g = c.benchmark_group(name);
        g.sample_size(10);
        for appends in [8usize, 16] {
            g.bench_with_input(
                BenchmarkId::from_parameter(appends),
                &appends,
                |b, &appends| {
                    b.iter(|| {
                        let mut m = Monitor::new(sc.clone(), CheckOptions::default())
                            .with_notion(notion);
                        m.add_constraint("once", once_only(&sc)).unwrap();
                        for i in 0..appends as u64 {
                            let tx = Transaction::new()
                                .delete(sub, vec![i.saturating_sub(1) % 4])
                                .insert(sub, vec![i % 4]);
                            let _ = m.append(&tx).unwrap();
                        }
                    })
                },
            );
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
