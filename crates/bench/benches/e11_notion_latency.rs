//! E11: per-append cost of the two violation notions (Section 5) —
//! potential satisfaction (phase-2 satisfiability per update) vs the
//! weaker bad-prefix notion (progression only).

use ticc_bench::table::fmt_duration;
use ticc_bench::{once_only, order_schema, time_best_of, Table};
use ticc_core::monitor::Notion;
use ticc_core::{CheckOptions, Monitor};
use ticc_tdb::Transaction;

fn main() {
    let sc = order_schema();
    let sub = sc.pred("Sub").unwrap();
    let mut table = Table::new(
        "E11 — per-append cost of the two violation notions",
        "potential satisfaction runs phase-2 sat per update; bad-prefix is progression only",
        &["appends", "potential", "bad prefix"],
    );
    for appends in [8usize, 16] {
        let mut times = Vec::new();
        for notion in [Notion::Potential, Notion::BadPrefix] {
            let d = time_best_of(5, || {
                let mut m = Monitor::new(sc.clone(), CheckOptions::default()).with_notion(notion);
                m.add_constraint("once", once_only(&sc)).unwrap();
                for i in 0..appends as u64 {
                    let tx = Transaction::new()
                        .delete(sub, vec![i.saturating_sub(1) % 4])
                        .insert(sub, vec![i % 4]);
                    let _ = m.append(&tx).unwrap();
                }
            });
            times.push(fmt_duration(d));
        }
        table.row([appends.to_string(), times[0].clone(), times[1].clone()]);
    }
    table.print();
}
