//! E9: Section 3 constructions — building `φ`/`φ̃`, encoding runs, and
//! the Σ⁰₂ semi-decision budget sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_tm::bounded::{semi_decide_repeating, SemiDecision};
use ticc_tm::{encode_run, machine_schema, zoo};

fn bench(c: &mut Criterion) {
    let machine = zoo::shuttle();
    let schema = machine_schema(&machine);

    let mut g = c.benchmark_group("e9_build_formulas");
    g.sample_size(20);
    g.bench_function("phi", |b| {
        b.iter(|| ticc_tm::phi::phi(&machine, &schema))
    });
    let schema_w = ticc_tm::phi_tilde::machine_schema_with_w(&machine);
    g.bench_function("phi_tilde", |b| {
        b.iter(|| ticc_tm::phi_tilde::phi_tilde(&machine, &schema_w))
    });
    g.finish();

    let mut g = c.benchmark_group("e9_encode_run");
    g.sample_size(20);
    for steps in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| encode_run(&machine, &[true, false, true], steps))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e9_semi_decision");
    g.sample_size(20);
    for target in [16usize, 256, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(target), &target, |b, &t| {
            b.iter(|| {
                let v = semi_decide_repeating(&machine, &[true], t, usize::MAX);
                assert!(matches!(v, SemiDecision::ReachedTarget { .. }));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
