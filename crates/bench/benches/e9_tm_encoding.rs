//! E9: Section 3 constructions — building `φ`/`φ̃`, encoding runs, and
//! the Σ⁰₂ semi-decision budget sweep.

use ticc_bench::table::fmt_duration;
use ticc_bench::{time_best_of, Table};
use ticc_tm::bounded::{semi_decide_repeating, SemiDecision};
use ticc_tm::{encode_run, machine_schema, zoo};

fn main() {
    let machine = zoo::shuttle();
    let schema = machine_schema(&machine);

    let mut table = Table::new(
        "E9 — building the Section 3 formulas",
        "φ and φ̃ are polynomial-size in the machine description",
        &["formula", "time"],
    );
    let d = time_best_of(10, || {
        ticc_tm::phi::phi(&machine, &schema);
    });
    table.row(["phi".into(), fmt_duration(d)]);
    let schema_w = ticc_tm::phi_tilde::machine_schema_with_w(&machine);
    let d = time_best_of(10, || {
        ticc_tm::phi_tilde::phi_tilde(&machine, &schema_w);
    });
    table.row(["phi_tilde".into(), fmt_duration(d)]);
    table.print();

    let mut table = Table::new(
        "E9 — encoding runs as histories",
        "encode_run is linear in the step budget",
        &["steps", "time"],
    );
    for steps in [16usize, 64, 256] {
        let d = time_best_of(10, || {
            encode_run(&machine, &[true, false, true], steps);
        });
        table.row([steps.to_string(), fmt_duration(d)]);
    }
    table.print();

    let mut table = Table::new(
        "E9 — Σ⁰₂ semi-decision budget sweep",
        "cost grows with the repeating-visit target",
        &["target", "time"],
    );
    for target in [16usize, 256, 4096] {
        let d = time_best_of(5, || {
            let v = semi_decide_repeating(&machine, &[true], target, usize::MAX);
            assert!(matches!(v, SemiDecision::ReachedTarget { .. }));
        });
        table.row([target.to_string(), fmt_duration(d)]);
    }
    table.print();
}
