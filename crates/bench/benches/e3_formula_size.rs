//! E3: PTL satisfiability vs formula size (expected: exponential,
//! Lemma 4.2 phase 2) on the `⋀ □◇p_i` family.

use ticc_bench::table::fmt_duration;
use ticc_bench::{gf_family, time_best_of, Table};
use ticc_ptl::arena::Arena;
use ticc_ptl::sat::is_satisfiable;

fn main() {
    let mut table = Table::new(
        "E3 — PTL satisfiability vs formula size",
        "Lemma 4.2 phase 2: exponential in |φ| on the ⋀ □◇p_i family",
        &["n", "time"],
    );
    for n in [2usize, 4, 6, 8] {
        let d = time_best_of(3, || {
            let mut ar = Arena::new();
            let f = gf_family(&mut ar, n);
            let r = is_satisfiable(&mut ar, f).unwrap();
            assert!(r.satisfiable);
        });
        table.row([n.to_string(), fmt_duration(d)]);
    }
    table.print();
}
