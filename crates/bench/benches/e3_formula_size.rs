//! E3: PTL satisfiability vs formula size (expected: exponential,
//! Lemma 4.2 phase 2) on the `⋀ □◇p_i` family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_bench::gf_family;
use ticc_ptl::arena::Arena;
use ticc_ptl::sat::is_satisfiable;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_formula_size");
    g.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut ar = Arena::new();
                let f = gf_family(&mut ar, n);
                let r = is_satisfiable(&mut ar, f).unwrap();
                assert!(r.satisfiable);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
