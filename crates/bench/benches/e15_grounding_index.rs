//! E15: relevance-pruned grounding vs the `|M|^k` odometer.
//!
//! Theorem 4.1's construction is stated over `R_D` — the values that
//! actually occur. The indexed strategy takes that seriously twice
//! over: the occurrence index enumerates only instantiations with at
//! least one supported flexible atom (the rest provably fold to one
//! rigid-false residue), and the share memo folds identical subtrees
//! across instantiations once. The odometer is the blind `|M|^k`
//! sweep, kept as the ablation baseline.
//!
//! Accepts `--threads off|auto|<n>` (default `4`) and reports the
//! sharded indexed column alongside the sequential pair.

use ticc_bench::table::fmt_duration;
use ticc_bench::{chain_constraint, edge_schema, sparse_edge_history, time_best_of, Table};
use ticc_core::{ground_opts, ground_with, GroundMode, GroundStrategy, Threads};

fn main() {
    // The odometer baseline folds |M|^k ≈ 3·10^5 instantiations into
    // one nested conjunction; give the recursive fold room beyond the
    // default 8 MiB main stack (reserved, not committed).
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(run)
        .expect("spawn bench thread")
        .join()
        .expect("bench thread panicked");
}

fn run() {
    let threads = ticc_bench::threads_arg();
    let esc = edge_schema();
    let k = 3usize;
    let phi = chain_constraint(&esc, k);
    let (domain, states) = (64u64, 24usize);

    let mut table = Table::new(
        format!("E15 — indexed grounding vs |M|^k odometer (chain k = {k}, domain {domain})"),
        "the occurrence-index join enumerates supported instantiations \
         only; the skipped remainder folds to one rigid-false residue",
        &[
            "tuples/state",
            "|M|^k",
            "enumerated",
            "odometer",
            "indexed (off)",
            &format!("indexed (threads={threads})"),
            "speedup",
        ],
    );
    for per in [1usize, 2, 4, 8] {
        let h = sparse_edge_history(&esc, domain, per, states, 0xE15);
        let d_odo = time_best_of(2, || {
            ground_with(&h, &phi, GroundMode::Folded, Threads::Off).unwrap();
        });
        let mut g = None;
        let d_idx = time_best_of(3, || {
            g = Some(
                ground_opts(
                    &h,
                    &phi,
                    GroundMode::Folded,
                    GroundStrategy::Indexed,
                    Threads::Off,
                )
                .unwrap(),
            );
        });
        let d_par = time_best_of(3, || {
            ground_opts(
                &h,
                &phi,
                GroundMode::Folded,
                GroundStrategy::Indexed,
                threads,
            )
            .unwrap();
        });
        let g = g.unwrap();
        assert_eq!(g.strategy(), GroundStrategy::Indexed, "gate must engage");
        table.row([
            per.to_string(),
            g.stats.mappings.to_string(),
            g.stats.inst_enumerated.to_string(),
            fmt_duration(d_odo),
            fmt_duration(d_idx),
            fmt_duration(d_par),
            format!("{:.2}x", d_odo.as_secs_f64() / d_idx.as_secs_f64()),
        ]);
    }
    table.print();
}
