//! E2: cost vs `|R_D|` — grounding polynomial (degree `max(k,l)`), full
//! decision exponential (the Section 6 argument).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ticc_bench::{
    chain_constraint, edge_schema, once_only, order_schema, path_history, spread_history,
    unsubmitted_history,
};
use ticc_core::{check_potential_satisfaction, ground, CheckOptions, GroundMode};
use ticc_ptl::sat::SatSolver;

fn bench(c: &mut Criterion) {
    let sc = order_schema();
    let phi = once_only(&sc);

    let mut g = c.benchmark_group("e2a_ground_k1_l1");
    g.sample_size(20);
    for m in [4usize, 16, 64] {
        let h = spread_history(&sc, m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &h, |b, h| {
            b.iter(|| ground(h, &phi, GroundMode::Folded).unwrap())
        });
    }
    g.finish();

    let esc = edge_schema();
    let phi2 = chain_constraint(&esc, 2);
    let mut g = c.benchmark_group("e2a_ground_k2_l2");
    g.sample_size(20);
    for m in [4usize, 8, 16] {
        let h = path_history(&esc, m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &h, |b, h| {
            b.iter(|| ground(h, &phi2, GroundMode::Folded).unwrap())
        });
    }
    g.finish();

    // The exhaustive automaton exposes the exponential; the probe
    // (production default) answers the same satisfied instances flat.
    let mut g = c.benchmark_group("e2b_exhaustive");
    g.sample_size(10);
    for m in [2usize, 4, 6, 8] {
        let h = unsubmitted_history(&sc, m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &h, |b, h| {
            b.iter(|| {
                let out = check_potential_satisfaction(
                    h,
                    &phi,
                    &CheckOptions {
                        mode: GroundMode::Folded,
                        solver: SatSolver::BuchiExhaustive,
                    },
                )
                .unwrap();
                assert!(out.potentially_satisfied);
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e2b_probe");
    g.sample_size(10);
    for m in [2usize, 4, 6, 8] {
        let h = unsubmitted_history(&sc, m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &h, |b, h| {
            b.iter(|| {
                let out =
                    check_potential_satisfaction(h, &phi, &CheckOptions::default()).unwrap();
                assert!(out.potentially_satisfied);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
