//! E2: cost vs `|R_D|` — grounding polynomial (degree `max(k,l)`), full
//! decision exponential (the Section 6 argument).
//!
//! Accepts `--threads off|auto|<n>` (default `4`) and reports sequential
//! vs sharded grounding side by side on the larger instances.

use ticc_bench::table::fmt_duration;
use ticc_bench::{
    chain_constraint, edge_schema, once_only, order_schema, path_history, spread_history,
    time_best_of, unsubmitted_history, Table,
};
use ticc_core::{check_potential_satisfaction, ground, ground_with, CheckOptions, GroundMode};
use ticc_ptl::sat::SatSolver;

fn main() {
    let threads = ticc_bench::threads_arg();
    let sc = order_schema();
    let phi = once_only(&sc);

    let mut table = Table::new(
        "E2a — grounding cost vs |R_D| (k=1, l=1)",
        "Lemma 4.1 / Theorem 4.2: polynomial of degree max(k,l)",
        &["|R_D|", "time (off)", &format!("time (threads={threads})")],
    );
    for m in [4usize, 16, 64] {
        let h = spread_history(&sc, m);
        let d = time_best_of(10, || {
            ground(&h, &phi, GroundMode::Folded).unwrap();
        });
        let dp = time_best_of(10, || {
            ground_with(&h, &phi, GroundMode::Folded, threads).unwrap();
        });
        table.row([m.to_string(), fmt_duration(d), fmt_duration(dp)]);
    }
    table.print();

    let esc = edge_schema();
    let phi2 = chain_constraint(&esc, 2);
    let mut table = Table::new(
        "E2a — grounding cost vs |R_D| (k=2, l=2)",
        "same bound at higher degree",
        &["|R_D|", "time (off)", &format!("time (threads={threads})")],
    );
    for m in [4usize, 8, 16] {
        let h = path_history(&esc, m);
        let d = time_best_of(10, || {
            ground(&h, &phi2, GroundMode::Folded).unwrap();
        });
        let dp = time_best_of(10, || {
            ground_with(&h, &phi2, GroundMode::Folded, threads).unwrap();
        });
        table.row([m.to_string(), fmt_duration(d), fmt_duration(dp)]);
    }
    table.print();

    // The exhaustive automaton exposes the exponential; the probe
    // (production default) answers the same satisfied instances flat.
    let mut table = Table::new(
        "E2b — full decision vs |R_D|: exhaustive vs probe",
        "Section 6: exhaustive exploration is exponential in |R_D|; the probe is flat",
        &["|R_D|", "exhaustive", "probe"],
    );
    for m in [2usize, 4, 6, 8] {
        let h = unsubmitted_history(&sc, m);
        let d_ex = time_best_of(3, || {
            let out = check_potential_satisfaction(
                &h,
                &phi,
                &CheckOptions::builder()
                    .mode(GroundMode::Folded)
                    .solver(SatSolver::BuchiExhaustive)
                    .build(),
            )
            .unwrap();
            assert!(out.potentially_satisfied);
        });
        let d_probe = time_best_of(3, || {
            let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
            assert!(out.potentially_satisfied);
        });
        table.row([m.to_string(), fmt_duration(d_ex), fmt_duration(d_probe)]);
    }
    table.print();
}
