//! E1: checking time vs history length `t` (expected: linear).
//!
//! Theorem 4.2's bound is `O(t·(|φ|·|R_D|)^max(k,l)) + 2^O(…)`; with the
//! constraint and `R_D` fixed, only the first addend grows — linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ticc_bench::{cyclic_order_history, fifo, order_schema};
use ticc_core::{check_potential_satisfaction, CheckOptions};

fn bench(c: &mut Criterion) {
    let sc = order_schema();
    let phi = fifo(&sc);
    let mut g = c.benchmark_group("e1_history_length");
    g.sample_size(10);
    for t in [32usize, 128, 512, 2048] {
        let h = cyclic_order_history(&sc, t);
        g.throughput(Throughput::Elements(t as u64));
        g.bench_with_input(BenchmarkId::from_parameter(t), &h, |b, h| {
            b.iter(|| {
                let out =
                    check_potential_satisfaction(h, &phi, &CheckOptions::default()).unwrap();
                assert!(out.potentially_satisfied);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
