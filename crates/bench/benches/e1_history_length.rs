//! E1: checking time vs history length `t` (expected: linear).
//!
//! Theorem 4.2's bound is `O(t·(|φ|·|R_D|)^max(k,l)) + 2^O(…)`; with the
//! constraint and `R_D` fixed, only the first addend grows — linearly.

use ticc_bench::table::fmt_duration;
use ticc_bench::{cyclic_order_history, fifo, order_schema, time_best_of, Table};
use ticc_core::{check_potential_satisfaction, CheckOptions};

fn main() {
    let sc = order_schema();
    let phi = fifo(&sc);
    let mut table = Table::new(
        "E1 — checking time vs history length t",
        "Theorem 4.2: linear in t with the constraint and R_D fixed",
        &["t", "time", "ns/instant"],
    );
    for t in [32usize, 128, 512, 2048] {
        let h = cyclic_order_history(&sc, t);
        let d = time_best_of(5, || {
            let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
            assert!(out.potentially_satisfied);
        });
        table.row([
            t.to_string(),
            fmt_duration(d),
            format!("{}", d.as_nanos() / t as u128),
        ]);
    }
    table.print();
}
