//! E13: the append hot path — steady-state appends cost `O(|Δtx|)`
//! plus (usually) one transition-cache lookup.
//!
//! A FIFO-clean churn over a fixed 6-element domain keeps the relevant
//! domain stable after the first lap, so every append takes the fast
//! path; the sweep ablates the two hot-path layers independently
//! (incremental letter patching vs full re-encode, transition cache on
//! vs off) and reports steady-state appends/second for each.

use ticc_bench::table::Table;
use ticc_bench::{fifo, order_schema, steady_churn_tx};
use ticc_core::{CheckOptions, Encoding, Monitor};

fn main() {
    let sc = order_schema();
    let domain = 6usize;
    let warmup = 2 * domain;

    let mut table = Table::new(
        "E13 — append hot path (steady churn, |R_D| = 6, FIFO + cap)",
        "steady-state appends: O(|Δtx|) patch + one transition lookup",
        &["config", "t", "appends/s", "trans hits", "speedup"],
    );
    for total in [512usize, 2048] {
        let run = |encoding: Encoding, cache: bool| -> (f64, u64) {
            let opts = CheckOptions::builder()
                .encoding(encoding)
                .transition_cache(cache)
                .build();
            let mut m = Monitor::new(sc.clone(), opts);
            m.add_constraint("fifo", fifo(&sc)).unwrap();
            let cap = ticc_fotl::parser::parse(&sc, "G !Sub(999)").unwrap();
            m.add_constraint("cap", cap).unwrap();
            for i in 0..warmup {
                assert!(m
                    .append(&steady_churn_tx(&sc, domain, i))
                    .unwrap()
                    .is_empty());
            }
            let t0 = std::time::Instant::now();
            for i in warmup..total {
                assert!(m
                    .append(&steady_churn_tx(&sc, domain, i))
                    .unwrap()
                    .is_empty());
            }
            let rate = (total - warmup) as f64 / t0.elapsed().as_secs_f64();
            (rate, m.engine_stats().cache.transition_hits)
        };
        let (base, _) = run(Encoding::Rebuild, false);
        for (label, encoding, cache) in [
            ("rebuild / no cache", Encoding::Rebuild, false),
            ("incremental / no cache", Encoding::Incremental, false),
            ("incremental + cache", Encoding::Incremental, true),
        ] {
            let (rate, hits) = run(encoding, cache);
            table.row([
                label.to_owned(),
                total.to_string(),
                format!("{rate:.0}"),
                hits.to_string(),
                format!("{:.2}x", rate / base),
            ]);
        }
    }
    table.print();
}
