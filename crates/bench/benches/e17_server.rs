//! E17: multi-tenant server throughput — group commit vs per-session
//! fsync.
//!
//! 64 concurrent sessions, all at `Durability::WalFsync`, each
//! appending single-tuple churn transactions. The baseline gives every
//! session its own store file, so every durable append pays its own
//! `fdatasync`; the group-commit configuration routes all sessions
//! into one shared [`GroupWal`], where a leader's single sync
//! acknowledges every frame queued while the previous sync was in
//! flight. A third configuration drives the same group WAL through a
//! real `ticc-server` over loopback TCP, so the wire and dispatch
//! overhead is measured rather than assumed.
//!
//! Honest caveat (the E12 precedent): this container has one CPU and
//! a ~90µs virtio flush, and ext4's journal already group-commits
//! concurrent per-file `fdatasync`s (measured ~25k merged syncs/s
//! across 64 threads vs ~11k serial), so the baseline gets
//! kernel-level batching for free while the single CPU starves our
//! commit windows (average batch ~2 frames). The ≥5× aggregate
//! throughput expected on flush-bound storage cannot materialise
//! here; what the numbers do show is the structural, device-
//! independent ratio — group commit acknowledges an append with ~0.5
//! fsyncs (served: ~0.3, `max_batch` in the dozens) against exactly
//! 1.0 for the baseline — and a several-fold lower *median* append
//! latency, because a session waits on one shared in-flight window
//! instead of contending with 63 other files' journal commits.

use ticc_bench::server_load::{run_group_commit, run_per_session_fsync, run_served};
use ticc_bench::table::{fmt_duration, Table};
use ticc_core::{CheckOptions, Durability};

fn main() {
    let sessions = 64usize;
    let appends = 32usize;
    let opts = CheckOptions::builder()
        .durability(Durability::WalFsync)
        .build();
    let dir = std::env::temp_dir().join(format!("ticc-bench-e17-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");

    let base = run_per_session_fsync(&dir, sessions, appends, opts);
    let group = run_group_commit(&dir, sessions, appends, opts);
    let served = run_served(&dir, sessions, appends, opts);

    let mut table = Table::new(
        format!("E17 — multi-tenant WalFsync appends ({sessions} sessions × {appends})"),
        "one fsync per commit window acknowledges every queued session \
         (single-CPU + journal-merged baseline: see the fsync and p50 \
         columns, not wall-clock — E12-style caveat)",
        &["config", "appends/s", "p50", "p99", "fsyncs", "speedup"],
    );
    for (label, r) in [
        ("per-session fsync", &base),
        ("group commit", &group),
        ("group commit (served)", &served),
    ] {
        let fsyncs = match &r.group {
            Some(g) => g.fsyncs.to_string(),
            None => (r.sessions * r.appends_per_session).to_string(),
        };
        table.row([
            label.to_owned(),
            format!("{:.0}", r.appends_per_sec),
            fmt_duration(r.p50),
            fmt_duration(r.p99),
            fsyncs,
            format!("{:.1}x", r.appends_per_sec / base.appends_per_sec),
        ]);
    }
    table.print();
    if let Some(g) = &group.group {
        println!(
            "group windows: {} (max batch {} frames, {} of {} frames shared a window)",
            g.windows, g.max_batch, g.batched_frames, g.frames
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
