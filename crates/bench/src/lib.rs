//! Shared workload/constraint families and table utilities for the
//! benchmark harness.
//!
//! The paper has no empirical evaluation; the experiments regenerate its
//! *complexity claims* (see `DESIGN.md` §6 and `EXPERIMENTS.md`). Each
//! experiment lives both as a Criterion bench (`benches/`) and as a row
//! generator for the table-printing `experiments` binary.

pub mod families;
pub mod json;
pub mod latency;
pub mod server_load;
pub mod table;

pub use families::*;
pub use table::{time_best_of, Table};

/// Parses a `--threads off|auto|<n>` argument from the process argument
/// list, defaulting to `Fixed(4)` so every bench reports a sequential
/// vs parallel column pair out of the box.
pub fn threads_arg() -> ticc_core::Threads {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--threads" {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--threads needs a value (off|auto|<count>)"));
            return ticc_core::Threads::parse(v).unwrap_or_else(|e| panic!("{e}"));
        }
    }
    ticc_core::Threads::Fixed(4)
}
