//! Shared workload/constraint families and table utilities for the
//! benchmark harness.
//!
//! The paper has no empirical evaluation; the experiments regenerate its
//! *complexity claims* (see `DESIGN.md` §6 and `EXPERIMENTS.md`). Each
//! experiment lives both as a Criterion bench (`benches/`) and as a row
//! generator for the table-printing `experiments` binary.

pub mod families;
pub mod table;

pub use families::*;
pub use table::{time_best_of, Table};
