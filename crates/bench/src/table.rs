//! Minimal table rendering and timing helpers for the `experiments`
//! binary.

use std::time::{Duration, Instant};

/// A printable experiment table.
pub struct Table {
    title: String,
    claim: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and the paper claim it validates.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        println!("claim: {}", self.claim);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                s.push_str(&format!("{c:>w$}  ", w = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for r in &self.rows {
            line(r);
        }
    }
}

/// Runs `f` `n` times and returns the minimum wall-clock duration
/// (robust against scheduler noise for short operations).
pub fn time_best_of<F: FnMut()>(n: usize, mut f: F) -> Duration {
    assert!(n >= 1);
    let mut best = Duration::MAX;
    for _ in 0..n {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Formats a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}us", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panicking() {
        let mut t = Table::new("E0", "smoke", &["a", "b"]);
        t.row(["1".into(), "x".into()]);
        t.row(["22".into(), "yy".into()]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("E0", "smoke", &["a", "b"]);
        t.row(["1".into()]);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert!(fmt_duration(Duration::from_micros(7)).ends_with("us"));
    }

    #[test]
    fn time_best_of_returns_minimum() {
        let d = time_best_of(3, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
        assert!(d < Duration::from_millis(100));
    }
}
