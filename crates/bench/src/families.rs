//! Constraint and workload families used across the experiments.

use std::sync::Arc;
use ticc_fotl::parser::parse;
use ticc_fotl::Formula;
use ticc_ptl::arena::{Arena, FormulaId};
use ticc_tdb::workload::OrderWorkload;
use ticc_tdb::{History, Schema, State, Value};

/// The paper's once-only constraint source.
pub const ONCE_ONLY: &str = "forall x. G (Sub(x) -> X G !Sub(x))";

/// The paper's FIFO constraint source.
pub const FIFO: &str = "forall x y. G !(x != y & Sub(x) & \
                        ((!Fill(x)) U (Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))";

/// The order schema (`Sub/1`, `Fill/1`).
pub fn order_schema() -> Arc<Schema> {
    OrderWorkload::schema()
}

/// Parses the once-only constraint against the order schema.
pub fn once_only(schema: &Schema) -> Formula {
    parse(schema, ONCE_ONLY).expect("constant source")
}

/// Parses the FIFO constraint against the order schema.
pub fn fifo(schema: &Schema) -> Formula {
    parse(schema, FIFO).expect("constant source")
}

/// A FIFO-clean cyclic workload over exactly two orders, of length `t`:
/// `Sub(1) | Sub(2) | Fill(1) | Fill(2) | Sub(1) | …`. Keeps `R_D`
/// fixed at `{1, 2}` while the history grows — the E1 shape.
pub fn cyclic_order_history(schema: &Arc<Schema>, t: usize) -> History {
    let mut h = History::new(schema.clone());
    for i in 0..t {
        let mut s = State::empty(schema.clone());
        match i % 4 {
            0 => s.insert_named("Sub", vec![1]).unwrap(),
            1 => s.insert_named("Sub", vec![2]).unwrap(),
            2 => s.insert_named("Fill", vec![1]).unwrap(),
            _ => s.insert_named("Fill", vec![2]).unwrap(),
        };
        h.push_state(s);
    }
    h
}

/// A single-state history with `Sub(0) … Sub(m-1)`: `|R_D| = m`, the E2
/// shape (each order submitted exactly once, so once-only is potentially
/// satisfied but the residue automaton must track all `m` obligations).
pub fn spread_history(schema: &Arc<Schema>, m: usize) -> History {
    let mut h = History::new(schema.clone());
    let mut s = State::empty(schema.clone());
    for v in 0..m as Value {
        s.insert_named("Sub", vec![v]).unwrap();
    }
    h.push_state(s);
    h
}

/// A single-state history with `Fill(0) … Fill(m-1)`: `m` relevant
/// elements, none of them submitted yet. The once-only residue then has
/// a genuine choice per element (submit later or never), so the
/// exhaustive automaton must track all `2^m` submission subsets — the
/// E2b shape.
pub fn unsubmitted_history(schema: &Arc<Schema>, m: usize) -> History {
    let mut h = History::new(schema.clone());
    let mut s = State::empty(schema.clone());
    for v in 0..m as Value {
        s.insert_named("Fill", vec![v]).unwrap();
    }
    h.push_state(s);
    h
}

/// The E13 steady-state append workload: a FIFO-clean churn over a
/// fixed domain of `d` orders. Step `i` yields the transaction moving
/// the single-fact state forward — `Sub(v)`/`Fill(v)` alternating with
/// `v` cycling through `0..d`, the previous fact deleted. The relevant
/// domain stabilises after the first lap (period `2d`), after which
/// every transaction is one delete plus one insert: the steady state
/// the append hot path is built for.
pub fn steady_churn_tx(schema: &Schema, d: usize, i: usize) -> ticc_tdb::Transaction {
    let fact = |j: usize| {
        let v = ((j / 2) % d) as Value;
        let name = if j.is_multiple_of(2) { "Sub" } else { "Fill" };
        (schema.pred(name).unwrap(), v)
    };
    let mut tx = ticc_tdb::Transaction::new();
    if i > 0 {
        let (p, v) = fact(i - 1);
        tx = tx.delete(p, vec![v]);
    }
    let (p, v) = fact(i);
    tx.insert(p, vec![v])
}

/// The E16 response constraint: every submission is filled at the next
/// instant. Each instantiation's residue has a two-letter support
/// (`Sub(v)`, `Fill(v)`), and all instantiations are isomorphic modulo
/// letter renaming — the template-sharing shape.
pub const RESPONSE: &str = "forall x. G (Sub(x) -> X Fill(x))";

/// Parses the response constraint against the order schema.
pub fn response(schema: &Schema) -> Formula {
    parse(schema, RESPONSE).expect("constant source")
}

/// E16 setup: three transactions that take every element of `0..n`
/// through one clean submit → fill → retract cycle, so the relevant
/// domain reaches size `n` (one bound automaton instantiation per
/// element) before the steady state begins.
pub fn response_setup_txs(schema: &Schema, n: usize) -> Vec<ticc_tdb::Transaction> {
    let sub = schema.pred("Sub").unwrap();
    let fill = schema.pred("Fill").unwrap();
    let mut submit = ticc_tdb::Transaction::new();
    let mut fulfil = ticc_tdb::Transaction::new();
    let mut clear = ticc_tdb::Transaction::new();
    for v in 0..n as Value {
        submit = submit.insert(sub, vec![v]);
        fulfil = fulfil.delete(sub, vec![v]).insert(fill, vec![v]);
        clear = clear.delete(fill, vec![v]);
    }
    vec![submit, fulfil, clear]
}

/// E16 steady state, step `i`: submit element `v_i = i mod n`, fill the
/// previous submission, retract the pair that is two steps old —
/// `|Δtx| ≤ 4` while the obligation walks across all `n`
/// instantiations. Constraint-clean under [`RESPONSE`].
pub fn response_steady_tx(schema: &Schema, n: usize, i: usize) -> ticc_tdb::Transaction {
    let sub = schema.pred("Sub").unwrap();
    let fill = schema.pred("Fill").unwrap();
    let v = |j: usize| (j % n) as Value;
    let mut tx = ticc_tdb::Transaction::new().insert(sub, vec![v(i)]);
    if i > 0 {
        tx = tx.delete(sub, vec![v(i - 1)]).insert(fill, vec![v(i - 1)]);
    }
    if i > 1 {
        tx = tx.delete(fill, vec![v(i - 2)]);
    }
    tx
}

/// The `⋀_{i<n} □◇p_i` family: a classic exponential-automaton family
/// for the `2^O(|ψ|)` bound (E3) and the tableau-vs-GPVW ablation (E8).
pub fn gf_family(arena: &mut Arena, n: usize) -> FormulaId {
    let mut f = arena.tru();
    for i in 0..n {
        let p = arena.atom(&format!("p{i}"));
        let fp = arena.eventually(p);
        let gfp = arena.always(fp);
        f = arena.and(f, gfp);
    }
    f
}

/// The binary-relation schema for the quantifier-count family (E4).
pub fn edge_schema() -> Arc<Schema> {
    Schema::builder().pred("E", 2).build()
}

/// `∀x1 … xk □¬(E(x1,x2) ∧ E(x2,x3) ∧ …)`: `k` external quantifiers,
/// arity 2, so grounding has `(|R_D|+k)^k` instances (E4).
pub fn chain_constraint(schema: &Schema, k: usize) -> Formula {
    assert!(k >= 1);
    let e = schema.pred("E").unwrap();
    let var = |i: usize| ticc_fotl::Term::var(format!("x{i}"));
    let body = if k == 1 {
        Formula::pred(e, vec![var(1), var(1)])
    } else {
        Formula::and_all((1..k).map(|i| Formula::pred(e, vec![var(i), var(i + 1)])))
    };
    let matrix = body.not().always();
    Formula::forall_many((1..=k).map(|i| format!("x{i}")), matrix)
}

/// The E15 sparse-workload transactions: `states` steps over a domain
/// of `domain` values, each step net-inserting `per_state` random edges
/// (and deleting the previous step's), so every state holds at most
/// `per_state` tuples while the relevant domain grows toward `domain`.
/// Deterministic in `seed`. The common sparse shape Theorem 4.1's
/// `R_D` refinement targets: `|M|^k` is huge, the occurrence index
/// tiny.
pub fn sparse_edge_txs(
    schema: &Schema,
    domain: u64,
    per_state: usize,
    states: usize,
    seed: u64,
) -> Vec<ticc_tdb::Transaction> {
    let e = schema.pred("E").unwrap();
    let mut rng = ticc_tdb::rng::Rng::seed_from_u64(seed);
    let mut txs = Vec::with_capacity(states);
    let mut prev: Vec<Vec<Value>> = Vec::new();
    for _ in 0..states {
        let mut tx = ticc_tdb::Transaction::new();
        for t in prev.drain(..) {
            tx = tx.delete(e, t);
        }
        for _ in 0..per_state {
            let a = rng.gen_range(0..domain);
            let b = rng.gen_range(0..domain);
            tx = tx.insert(e, vec![a, b]);
            prev.push(vec![a, b]);
        }
        txs.push(tx);
    }
    txs
}

/// The [`sparse_edge_txs`] workload applied into a [`History`].
pub fn sparse_edge_history(
    schema: &Arc<Schema>,
    domain: u64,
    per_state: usize,
    states: usize,
    seed: u64,
) -> History {
    let mut h = History::new(schema.clone());
    for tx in sparse_edge_txs(schema, domain, per_state, states, seed) {
        h.apply(&tx).expect("generated tuples respect the schema");
    }
    h
}

/// A single-state history with a path `E(0,1), E(1,2), …` over `m`
/// elements.
pub fn path_history(schema: &Arc<Schema>, m: usize) -> History {
    let e = schema.pred("E").unwrap();
    let mut h = History::new(schema.clone());
    let mut s = State::empty(schema.clone());
    for v in 0..m.saturating_sub(1) as Value {
        s.insert(e, vec![v, v + 1]).unwrap();
    }
    h.push_state(s);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_core::{check_potential_satisfaction, CheckOptions};

    #[test]
    fn cyclic_history_is_fifo_clean() {
        let sc = order_schema();
        let phi = fifo(&sc);
        for t in [4, 9, 16] {
            let h = cyclic_order_history(&sc, t);
            let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
            assert!(out.potentially_satisfied, "t = {t}");
            assert_eq!(
                h.relevant().len(),
                2.min(t.max(1)).max(if t >= 2 { 2 } else { 1 })
            );
        }
    }

    #[test]
    fn spread_history_is_once_only_clean() {
        let sc = order_schema();
        let phi = once_only(&sc);
        let h = spread_history(&sc, 4);
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert!(out.potentially_satisfied);
        assert_eq!(out.stats.ground.m_size, 5); // 4 relevant + z1
    }

    #[test]
    fn steady_churn_is_fifo_clean_with_stable_domain() {
        let sc = order_schema();
        let phi = fifo(&sc);
        let mut h = History::new(sc.clone());
        let d = 4usize;
        for i in 0..4 * d {
            h.apply(&steady_churn_tx(&sc, d, i)).unwrap();
        }
        // Exactly one fact per state; the domain stops growing after
        // the first lap.
        assert_eq!(h.relevant().len(), d);
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert!(out.potentially_satisfied);
    }

    #[test]
    fn gf_family_is_satisfiable_with_exponentialish_automata() {
        let mut ar = Arena::new();
        let f2 = gf_family(&mut ar, 2);
        let f4 = gf_family(&mut ar, 4);
        let r2 = ticc_ptl::sat::is_satisfiable(&mut ar, f2).unwrap();
        let r4 = ticc_ptl::sat::is_satisfiable(&mut ar, f4).unwrap();
        assert!(r2.satisfiable && r4.satisfiable);
        assert!(r4.stats.states > r2.stats.states);
    }

    #[test]
    fn chain_constraint_classifies_universal() {
        let sc = edge_schema();
        for k in 1..=3 {
            let f = chain_constraint(&sc, k);
            assert_eq!(
                ticc_fotl::classify::classify(&f),
                ticc_fotl::classify::FormulaClass::Universal { external: k }
            );
        }
    }

    #[test]
    fn path_history_violates_chain_constraint_for_long_chains() {
        let sc = edge_schema();
        let h = path_history(&sc, 4); // E(0,1), E(1,2), E(2,3)
        let f = chain_constraint(&sc, 2); // □¬E(x,y) pattern: violated
        let out = check_potential_satisfaction(&h, &f, &CheckOptions::default()).unwrap();
        assert!(!out.potentially_satisfied);
        // k = 3 needs E(a,b) ∧ E(b,c): also violated by the path.
        let f3 = chain_constraint(&sc, 3);
        let out3 = check_potential_satisfaction(&h, &f3, &CheckOptions::default()).unwrap();
        assert!(!out3.potentially_satisfied);
        // An edgeless history satisfies everything.
        let h0 = path_history(&sc, 1);
        let ok = check_potential_satisfaction(&h0, &f3, &CheckOptions::default()).unwrap();
        assert!(ok.potentially_satisfied);
    }
}
