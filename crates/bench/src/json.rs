//! Hand-rolled JSON document builder for the `BENCH_*.json` emitters
//! (no external dependencies — tier-1 stays offline).
//!
//! Every experiment that writes a machine-readable payload goes through
//! [`JsonDoc`], so all `BENCH_*.json` files share one top-level shape:
//!
//! ```json
//! {
//!   "schema": "ticc-bench-v2",
//!   "<experiment>": { ... },
//!   "threads": "fixed(4)"
//! }
//! ```
//!
//! The `schema` field is the shared format version
//! ([`SCHEMA_VERSION`]); bump it when any emitter changes shape, so
//! downstream consumers of the CI artifacts can dispatch on one field
//! instead of sniffing per-experiment keys.

/// Shared format version stamped into every `BENCH_*.json` payload.
pub const SCHEMA_VERSION: &str = "ticc-bench-v2";

/// An ordered set of top-level sections, rendered as one JSON object
/// with the schema version first.
#[derive(Default)]
pub struct JsonDoc {
    sections: Vec<(String, String)>,
}

impl JsonDoc {
    /// An empty document (just the schema-version field).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a top-level section. `value` must be rendered JSON (an
    /// object, array, string, or number) — the builder only handles
    /// the commas and the envelope.
    pub fn section(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.sections.push((key.to_owned(), value.into()));
        self
    }

    /// The document as a JSON string.
    pub fn render(&self) -> String {
        let mut s = format!("{{\n  \"schema\": \"{SCHEMA_VERSION}\"");
        for (key, value) in &self.sections {
            s.push_str(&format!(",\n  \"{key}\": {value}"));
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes the rendered document to `path`.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
}

/// Renders a JSON string value (the keys the emitters use are plain
/// ASCII identifiers; only quotes and backslashes need escaping).
pub fn string(v: &str) -> String {
    format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders the `host` section every emitter stamps into its envelope:
/// the machine parallelism, the resolved `--threads` setting, and the
/// append batch size — the scheduling context without which the
/// headline numbers cannot be compared across runs or machines.
pub fn host_section(threads: &str, batch_size: usize) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    format!(
        "{{\"available_parallelism\": {cores}, \"threads\": {}, \"batch_size\": {batch_size}}}",
        string(threads)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_schema_first_and_sections_in_order() {
        let mut doc = JsonDoc::new();
        doc.section("e99", "{\"x\": 1}");
        doc.section("threads", string("off"));
        let s = doc.render();
        assert!(s.starts_with(&format!("{{\n  \"schema\": \"{SCHEMA_VERSION}\"")));
        let e99 = s.find("\"e99\"").unwrap();
        let threads = s.find("\"threads\"").unwrap();
        assert!(e99 < threads);
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn empty_document_is_valid() {
        let s = JsonDoc::new().render();
        assert_eq!(s, format!("{{\n  \"schema\": \"{SCHEMA_VERSION}\"\n}}\n"));
    }

    #[test]
    fn string_escapes_quotes() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn host_section_reports_parallelism_threads_and_batch() {
        let h = host_section("fixed(4)", 8);
        assert!(h.starts_with("{\"available_parallelism\": "), "{h}");
        assert!(h.contains("\"threads\": \"fixed(4)\""), "{h}");
        assert!(h.ends_with("\"batch_size\": 8}"), "{h}");
    }
}
