//! Shared load generator for E17: many concurrent `WalFsync` sessions
//! appending through per-session WAL files, one group-commit WAL, or
//! the TCP server in front of that WAL.
//!
//! Every configuration runs the same workload — `sessions` worker
//! threads, each owning one session with the cheap invariant
//! `G !Sub(999)`, each appending `appends` single-tuple transactions
//! (insert/delete churn on its own value, so no violations fire). The
//! only variable is who pays the `fsync`:
//!
//! * **per-session fsync** — every session has its own store file, so
//!   every durable append is its own `fdatasync`.
//! * **group commit** — all sessions share one [`GroupWal`]; while the
//!   leader's `fdatasync` is in flight the other threads enqueue, and
//!   the next window commits them all with one sync.
//! * **served** — same group WAL, but the appends travel as
//!   `ticc-wire-v1` frames through a real `ticc_server::Server` on a
//!   loopback socket, so the wire + dispatch overhead is visible.

use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ticc_core::{CheckOptions, GroupStats, GroupWal, Session};
use ticc_fotl::parser::parse;
use ticc_server::{wire, Limits, Running, Server};
use ticc_tdb::Transaction;

use crate::latency::{self, LatencySummary};

/// Which connection-handling core the served configurations run on.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One OS thread per accepted connection (the legacy loop).
    ThreadPerConn,
    /// The event-driven core: `io_threads` poll loops own all sockets.
    Mux,
}

impl ServeMode {
    pub fn label(self) -> &'static str {
        match self {
            ServeMode::ThreadPerConn => "thread-per-conn",
            ServeMode::Mux => "mux",
        }
    }

    fn start(self, server: Arc<Server>, listener: TcpListener) -> std::io::Result<Running> {
        match self {
            ServeMode::ThreadPerConn => Server::start(server, listener),
            ServeMode::Mux => ticc_server::mux::start_mux(server, listener),
        }
    }
}

/// The invariant every load session carries: cheap to check, never
/// violated by the churn workload (values are session indices).
pub const LOAD_CONSTRAINT: &str = "G !Sub(999)";

/// One measured configuration.
pub struct LoadReport {
    /// Worker sessions appending concurrently.
    pub sessions: usize,
    /// Durable appends each session issued.
    pub appends_per_session: usize,
    /// Wall-clock for the whole run (post-setup, all sessions).
    pub elapsed: Duration,
    /// Aggregate throughput across all sessions.
    pub appends_per_sec: f64,
    /// Median single-append latency (ack-inclusive).
    pub p50: Duration,
    /// 99th-percentile single-append latency.
    pub p99: Duration,
    /// The full latency summary (p999, max, histogram) behind the
    /// `p50`/`p99` headline fields — see [`crate::latency`].
    pub latency: LatencySummary,
    /// Group-WAL counters, when the configuration used one.
    pub group: Option<GroupStats>,
}

fn report(
    sessions: usize,
    appends: usize,
    elapsed: Duration,
    lat: Vec<Duration>,
    group: Option<GroupStats>,
) -> LoadReport {
    let latency = latency::summarize(lat);
    LoadReport {
        sessions,
        appends_per_session: appends,
        elapsed,
        appends_per_sec: (sessions * appends) as f64 / elapsed.as_secs_f64(),
        p50: latency.p50,
        p99: latency.p99,
        latency,
        group,
    }
}

/// The per-session churn transaction: insert `Sub(id)` on even steps,
/// delete it on odd ones.
fn churn_tx(session: &Session, id: u64, step: usize) -> Transaction {
    let p = session.schema().expect("frozen").pred("Sub").expect("Sub");
    if step.is_multiple_of(2) {
        Transaction::new().insert(p, vec![id])
    } else {
        Transaction::new().delete(p, vec![id])
    }
}

fn spawn_workers<S>(sessions: usize, appends: usize, setup: S) -> (Duration, Vec<Duration>)
where
    S: Fn(usize) -> Session + Send + Sync,
{
    // One extra participant: the timer. Workers finish setup, meet at
    // the barrier, and only the post-barrier append loop is measured.
    let barrier = Arc::new(Barrier::new(sessions + 1));
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(sessions);
        for id in 0..sessions {
            let barrier = Arc::clone(&barrier);
            let setup = &setup;
            handles.push(scope.spawn(move || {
                let mut session = setup(id);
                barrier.wait();
                let mut lat = Vec::with_capacity(appends);
                for step in 0..appends {
                    let tx = churn_tx(&session, id as u64, step);
                    let t0 = Instant::now();
                    let out = session.append(&tx).expect("append");
                    lat.push(t0.elapsed());
                    assert!(out.events.is_empty(), "churn never violates");
                }
                lat
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        let mut lat = Vec::with_capacity(sessions * appends);
        for h in handles {
            lat.extend(h.join().expect("worker"));
        }
        (t0.elapsed(), lat)
    })
}

/// Baseline: every session owns a store file, every append its fsync.
pub fn run_per_session_fsync(
    dir: &Path,
    sessions: usize,
    appends: usize,
    opts: CheckOptions,
) -> LoadReport {
    let setup = |id: usize| -> Session {
        let path: PathBuf = dir.join(format!("session-{id}.wal"));
        let _ = std::fs::remove_file(&path);
        let (mut s, _) = Session::builder()
            .name(&format!("s{id}"))
            .options(opts)
            .pred("Sub", 1)
            .store(&path)
            .open()
            .expect("open session store");
        let phi = parse(&s.schema().unwrap(), LOAD_CONSTRAINT).unwrap();
        s.add_constraint("cap", phi).unwrap();
        s
    };
    let (elapsed, lat) = spawn_workers(sessions, appends, setup);
    report(sessions, appends, elapsed, lat, None)
}

/// Group commit: all sessions share one WAL; windows batch the syncs.
pub fn run_group_commit(
    dir: &Path,
    sessions: usize,
    appends: usize,
    opts: CheckOptions,
) -> LoadReport {
    let path = dir.join("group.gwal");
    let _ = std::fs::remove_file(&path);
    let wal = Arc::new(GroupWal::create(&path).expect("create group WAL"));
    let setup = {
        let wal = Arc::clone(&wal);
        move |id: usize| -> Session {
            let (mut s, _) = Session::builder()
                .name(&format!("s{id}"))
                .options(opts)
                .pred("Sub", 1)
                .group(Arc::clone(&wal))
                .open()
                .expect("open group session");
            let phi = parse(&s.schema().unwrap(), LOAD_CONSTRAINT).unwrap();
            s.add_constraint("cap", phi).unwrap();
            s
        }
    };
    let (elapsed, lat) = spawn_workers(sessions, appends, setup);
    report(sessions, appends, elapsed, lat, Some(wal.stats()))
}

/// Starts a loopback server over a fresh group WAL in `dir`, sized for
/// `sessions` concurrent clients, running on `mode`'s connection core.
fn served_fixture(
    dir: &Path,
    sessions: usize,
    opts: CheckOptions,
    mode: ServeMode,
) -> (Running, std::net::SocketAddr) {
    let path = dir.join(format!("served-{}.gwal", mode.label()));
    let _ = std::fs::remove_file(&path);
    let limits = Limits {
        max_sessions: sessions + 8,
        max_inflight_appends: sessions + 8,
        workers: sessions.max(1),
        // Dispatch blocks its io thread while an append waits in a
        // group-commit window, so the mux needs as many io threads as
        // concurrently-appending clients (capped) or a sleeping commit
        // head-of-line-blocks its shard siblings. Sized so the mux/
        // legacy A/B isolates readiness-loop overhead, not shard
        // starvation; idle-connection economy is measured separately
        // with the deployment default (see `run_idle_connections`).
        io_threads: sessions.clamp(1, 16),
        ..Limits::default()
    };
    let server = Server::with_wal(opts, limits, &path).expect("open served WAL");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let running = mode
        .start(Arc::new(server), listener)
        .expect("start server");
    let addr = running.addr;
    (running, addr)
}

/// One framed request/response round trip; panics unless `ok:true`.
fn ask(reader: &mut BufReader<TcpStream>, writer: &mut BufWriter<TcpStream>, req: &str) -> String {
    wire::write_frame(writer, req.as_bytes()).expect("write frame");
    let bytes = wire::read_frame(reader, wire::MAX_FRAME_BYTES)
        .expect("read frame")
        .expect("server response");
    let resp = String::from_utf8(bytes).expect("utf-8 response");
    assert!(resp.contains("\"ok\":true"), "request failed: {resp}");
    resp
}

/// Connects, handshakes, and opens session `s{id}` with the load
/// constraint; returns the buffered halves ready for appends.
fn open_client(
    addr: std::net::SocketAddr,
    id: usize,
) -> (BufReader<TcpStream>, BufWriter<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    ask(
        &mut reader,
        &mut writer,
        &format!(r#"{{"op":"hello","schema":"{}"}}"#, wire::WIRE_SCHEMA),
    );
    ask(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"op":"open","session":"s{id}","preds":[["Sub",1]],"constraints":[["cap","{LOAD_CONSTRAINT}"]]}}"#
        ),
    );
    (reader, writer)
}

/// Asks the running server to shut down and joins it, returning the
/// group-WAL counters captured just before the stop.
fn shutdown_served(running: Running) -> Option<GroupStats> {
    let group = running.server.group_stats();
    let addr = running.addr;
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    wire::write_frame(
        &mut stream,
        format!(r#"{{"op":"hello","schema":"{}"}}"#, wire::WIRE_SCHEMA).as_bytes(),
    )
    .unwrap();
    let _ = wire::read_frame(&mut BufReader::new(stream.try_clone().unwrap()), 1 << 20);
    wire::write_frame(&mut stream, br#"{"op":"shutdown","checkpoint":false}"#).unwrap();
    running.join();
    group
}

/// Served: the same group WAL behind a real `ticc-server` on loopback,
/// appends as `ticc-wire-v1` frames. Measures the full stack including
/// dispatch and wire round-trips. The legacy thread-per-connection
/// core, so the E17 series stays comparable across revisions; see
/// [`run_served_with`] for the mode-parameterised variant.
pub fn run_served(dir: &Path, sessions: usize, appends: usize, opts: CheckOptions) -> LoadReport {
    run_served_with(dir, sessions, appends, opts, ServeMode::ThreadPerConn)
}

/// [`run_served`], but on an explicit connection-handling core.
pub fn run_served_with(
    dir: &Path,
    sessions: usize,
    appends: usize,
    opts: CheckOptions,
    mode: ServeMode,
) -> LoadReport {
    let (running, addr) = served_fixture(dir, sessions, opts, mode);

    let barrier = Arc::new(Barrier::new(sessions + 1));
    let (elapsed, lat) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(sessions);
        for id in 0..sessions {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let (mut reader, mut writer) = open_client(addr, id);
                barrier.wait();
                let mut lat = Vec::with_capacity(appends);
                for step in 0..appends {
                    let verb = if step.is_multiple_of(2) {
                        "insert"
                    } else {
                        "delete"
                    };
                    let req =
                        format!(r#"{{"op":"append","session":"s{id}","{verb}":["Sub({id})"]}}"#);
                    let t0 = Instant::now();
                    ask(&mut reader, &mut writer, &req);
                    lat.push(t0.elapsed());
                }
                lat
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        let mut lat = Vec::with_capacity(sessions * appends);
        for h in handles {
            lat.extend(h.join().expect("client"));
        }
        (t0.elapsed(), lat)
    });

    let group = shutdown_served(running);
    report(sessions, appends, elapsed, lat, group)
}

/// One open-loop measured configuration: arrivals are scheduled at a
/// fixed rate regardless of how fast the server answers, so queueing
/// delay counts against latency (no coordinated omission).
pub struct OpenLoopReport {
    /// Client connections issuing the scheduled appends.
    pub sessions: usize,
    /// Target aggregate arrival rate, appends per second.
    pub target_rate: f64,
    /// What the run actually sustained (equals the target unless the
    /// server fell so far behind that the run overran its schedule).
    pub achieved_rate: f64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Latency measured from each append's *scheduled* arrival time to
    /// its response — a server running behind schedule accrues backlog.
    pub latency: LatencySummary,
    /// Round-trip time of one violating append (`Sub(999)` against
    /// `G !Sub(999)`) issued while the load is still draining: the lag
    /// from submitting a violation to the wire reporting its event.
    pub violation_lag: Duration,
}

/// Open-loop served load: `sessions` clients issue `appends` appends
/// each, with global arrivals uniformly spaced at `rate` per second
/// round-robin across clients. Latency is measured from the scheduled
/// send time, so a stalled server keeps accruing latency for every
/// arrival it has not answered. Client 0's final request inserts the
/// violating `Sub(999)` tuple and times how long the wire takes to
/// report the violation event.
pub fn run_served_open_loop(
    dir: &Path,
    sessions: usize,
    appends: usize,
    rate: f64,
    opts: CheckOptions,
    mode: ServeMode,
) -> OpenLoopReport {
    assert!(rate > 0.0, "open-loop rate must be positive");
    let (running, addr) = served_fixture(dir, sessions, opts, mode);

    let barrier = Arc::new(Barrier::new(sessions + 1));
    let (elapsed, lat, violation_lag) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(sessions);
        for id in 0..sessions {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let (mut reader, mut writer) = open_client(addr, id);
                barrier.wait();
                // All clients share one schedule origin (the barrier
                // release); client `id` owns arrivals id, id+sessions,
                // id+2*sessions, … of the global 1/rate grid.
                let start = Instant::now();
                let mut lat = Vec::with_capacity(appends);
                for step in 0..appends {
                    let nth = id + step * sessions;
                    let sched = start + Duration::from_secs_f64(nth as f64 / rate);
                    let now = Instant::now();
                    if sched > now {
                        std::thread::sleep(sched - now);
                    }
                    let verb = if step.is_multiple_of(2) {
                        "insert"
                    } else {
                        "delete"
                    };
                    let req =
                        format!(r#"{{"op":"append","session":"s{id}","{verb}":["Sub({id})"]}}"#);
                    ask(&mut reader, &mut writer, &req);
                    // From the *scheduled* arrival, not the actual send.
                    lat.push(sched.elapsed());
                }
                let mut lag = None;
                if id == 0 {
                    // The violating append, timed send-to-event while
                    // sibling clients are still draining their grids.
                    let t0 = Instant::now();
                    let resp = ask(
                        &mut reader,
                        &mut writer,
                        r#"{"op":"append","session":"s0","insert":["Sub(999)"]}"#,
                    );
                    lag = Some(t0.elapsed());
                    assert!(
                        resp.contains("\"constraint\""),
                        "violating append must report its event: {resp}"
                    );
                }
                (lat, lag)
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        let mut lat = Vec::with_capacity(sessions * appends);
        let mut lag = Duration::ZERO;
        for h in handles {
            let (l, g) = h.join().expect("client");
            lat.extend(l);
            if let Some(g) = g {
                lag = g;
            }
        }
        (t0.elapsed(), lat, lag)
    });

    shutdown_served(running);
    let latency = latency::summarize(lat);
    OpenLoopReport {
        sessions,
        target_rate: rate,
        achieved_rate: (sessions * appends) as f64 / elapsed.as_secs_f64(),
        elapsed,
        latency,
        violation_lag,
    }
}

/// Resident-memory and thread cost of holding idle connections open.
pub struct IdleConnReport {
    /// Idle handshaken connections held.
    pub conns: usize,
    /// OS threads the server added while the connections were up.
    pub threads_delta: i64,
    /// Resident-set growth (KiB) attributable to the connections.
    pub rss_delta_kb: i64,
    /// `rss_delta_kb` amortised per connection, in bytes.
    pub rss_per_conn_bytes: f64,
}

/// Reads `Threads:` and `VmRSS:` (KiB) from `/proc/self/status`.
/// Returns zeros off Linux, where the probe degrades to thread counts
/// of 0 and the caller's ratios become meaningless but harmless.
fn proc_status() -> (i64, i64) {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |key: &str| -> i64 {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("Threads:"), field("VmRSS:"))
}

/// Measures what `conns` idle (handshaken, then silent) connections
/// cost the server process in threads and resident memory, under the
/// given connection core. Both modes pay the same *client*-side cost —
/// raw unbuffered `TcpStream`s — so the delta isolates the server's
/// per-connection economy: a parked thread plus two 8 KiB buffers per
/// socket on the legacy core, a pollfd plus empty byte vectors on the
/// event-driven one.
pub fn run_idle_connections(conns: usize, io_threads: usize, mode: ServeMode) -> IdleConnReport {
    let opts = CheckOptions::builder().build();
    let limits = Limits {
        max_sessions: 8,
        io_threads,
        ..Limits::default()
    };
    let server = Server::new(opts, limits);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let running = mode
        .start(Arc::new(server), listener)
        .expect("start server");
    let addr = running.addr;

    let hello = format!(r#"{{"op":"hello","schema":"{}"}}"#, wire::WIRE_SCHEMA);
    // Settle the core's fixed costs (io threads, wake pipes) before the
    // baseline so only per-connection growth lands in the delta.
    std::thread::sleep(Duration::from_millis(50));
    let (threads_before, rss_before) = proc_status();

    let mut clients = Vec::with_capacity(conns);
    for _ in 0..conns {
        let mut stream = TcpStream::connect(addr).expect("connect idle");
        // Unbuffered frames are two small writes; Nagle + delayed ACK
        // would add ~40ms to every handshake without this.
        stream.set_nodelay(true).expect("nodelay");
        wire::write_frame(&mut stream, hello.as_bytes()).expect("hello");
        let resp = wire::read_frame(&mut stream, wire::MAX_FRAME_BYTES)
            .expect("hello response")
            .expect("server closed during handshake");
        assert!(!resp.is_empty());
        clients.push(stream);
    }
    std::thread::sleep(Duration::from_millis(200));
    let (threads_after, rss_after) = proc_status();

    // Every connection proves it is *served*, not merely held: a full
    // round trip per socket while all its siblings stay open.
    for stream in &mut clients {
        wire::write_frame(stream, hello.as_bytes()).expect("re-ping");
        let resp = wire::read_frame(stream, wire::MAX_FRAME_BYTES)
            .expect("re-ping response")
            .expect("idle connection went dead");
        assert!(!resp.is_empty());
    }

    // Shut down over a control connection, then close the idle clients
    // so legacy per-connection threads observe EOF and exit.
    let mut ctl = TcpStream::connect(addr).expect("connect for shutdown");
    wire::write_frame(&mut ctl, hello.as_bytes()).unwrap();
    let _ = wire::read_frame(&mut ctl, wire::MAX_FRAME_BYTES);
    wire::write_frame(&mut ctl, br#"{"op":"shutdown","checkpoint":false}"#).unwrap();
    drop(clients);
    running.join();

    let threads_delta = threads_after - threads_before;
    let rss_delta_kb = (rss_after - rss_before).max(0);
    IdleConnReport {
        conns,
        threads_delta,
        rss_delta_kb,
        rss_per_conn_bytes: rss_delta_kb as f64 * 1024.0 / conns.max(1) as f64,
    }
}
