//! Shared load generator for E17: many concurrent `WalFsync` sessions
//! appending through per-session WAL files, one group-commit WAL, or
//! the TCP server in front of that WAL.
//!
//! Every configuration runs the same workload — `sessions` worker
//! threads, each owning one session with the cheap invariant
//! `G !Sub(999)`, each appending `appends` single-tuple transactions
//! (insert/delete churn on its own value, so no violations fire). The
//! only variable is who pays the `fsync`:
//!
//! * **per-session fsync** — every session has its own store file, so
//!   every durable append is its own `fdatasync`.
//! * **group commit** — all sessions share one [`GroupWal`]; while the
//!   leader's `fdatasync` is in flight the other threads enqueue, and
//!   the next window commits them all with one sync.
//! * **served** — same group WAL, but the appends travel as
//!   `ticc-wire-v1` frames through a real `ticc_server::Server` on a
//!   loopback socket, so the wire + dispatch overhead is visible.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ticc_core::{CheckOptions, GroupStats, GroupWal, Session};
use ticc_fotl::parser::parse;
use ticc_tdb::Transaction;

use crate::latency::{self, LatencySummary};

/// The invariant every load session carries: cheap to check, never
/// violated by the churn workload (values are session indices).
pub const LOAD_CONSTRAINT: &str = "G !Sub(999)";

/// One measured configuration.
pub struct LoadReport {
    /// Worker sessions appending concurrently.
    pub sessions: usize,
    /// Durable appends each session issued.
    pub appends_per_session: usize,
    /// Wall-clock for the whole run (post-setup, all sessions).
    pub elapsed: Duration,
    /// Aggregate throughput across all sessions.
    pub appends_per_sec: f64,
    /// Median single-append latency (ack-inclusive).
    pub p50: Duration,
    /// 99th-percentile single-append latency.
    pub p99: Duration,
    /// The full latency summary (p999, max, histogram) behind the
    /// `p50`/`p99` headline fields — see [`crate::latency`].
    pub latency: LatencySummary,
    /// Group-WAL counters, when the configuration used one.
    pub group: Option<GroupStats>,
}

fn report(
    sessions: usize,
    appends: usize,
    elapsed: Duration,
    lat: Vec<Duration>,
    group: Option<GroupStats>,
) -> LoadReport {
    let latency = latency::summarize(lat);
    LoadReport {
        sessions,
        appends_per_session: appends,
        elapsed,
        appends_per_sec: (sessions * appends) as f64 / elapsed.as_secs_f64(),
        p50: latency.p50,
        p99: latency.p99,
        latency,
        group,
    }
}

/// The per-session churn transaction: insert `Sub(id)` on even steps,
/// delete it on odd ones.
fn churn_tx(session: &Session, id: u64, step: usize) -> Transaction {
    let p = session.schema().expect("frozen").pred("Sub").expect("Sub");
    if step.is_multiple_of(2) {
        Transaction::new().insert(p, vec![id])
    } else {
        Transaction::new().delete(p, vec![id])
    }
}

fn spawn_workers<S>(sessions: usize, appends: usize, setup: S) -> (Duration, Vec<Duration>)
where
    S: Fn(usize) -> Session + Send + Sync,
{
    // One extra participant: the timer. Workers finish setup, meet at
    // the barrier, and only the post-barrier append loop is measured.
    let barrier = Arc::new(Barrier::new(sessions + 1));
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(sessions);
        for id in 0..sessions {
            let barrier = Arc::clone(&barrier);
            let setup = &setup;
            handles.push(scope.spawn(move || {
                let mut session = setup(id);
                barrier.wait();
                let mut lat = Vec::with_capacity(appends);
                for step in 0..appends {
                    let tx = churn_tx(&session, id as u64, step);
                    let t0 = Instant::now();
                    let out = session.append(&tx).expect("append");
                    lat.push(t0.elapsed());
                    assert!(out.events.is_empty(), "churn never violates");
                }
                lat
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        let mut lat = Vec::with_capacity(sessions * appends);
        for h in handles {
            lat.extend(h.join().expect("worker"));
        }
        (t0.elapsed(), lat)
    })
}

/// Baseline: every session owns a store file, every append its fsync.
pub fn run_per_session_fsync(
    dir: &Path,
    sessions: usize,
    appends: usize,
    opts: CheckOptions,
) -> LoadReport {
    let setup = |id: usize| -> Session {
        let path: PathBuf = dir.join(format!("session-{id}.wal"));
        let _ = std::fs::remove_file(&path);
        let (mut s, _) = Session::builder()
            .name(&format!("s{id}"))
            .options(opts)
            .pred("Sub", 1)
            .store(&path)
            .open()
            .expect("open session store");
        let phi = parse(&s.schema().unwrap(), LOAD_CONSTRAINT).unwrap();
        s.add_constraint("cap", phi).unwrap();
        s
    };
    let (elapsed, lat) = spawn_workers(sessions, appends, setup);
    report(sessions, appends, elapsed, lat, None)
}

/// Group commit: all sessions share one WAL; windows batch the syncs.
pub fn run_group_commit(
    dir: &Path,
    sessions: usize,
    appends: usize,
    opts: CheckOptions,
) -> LoadReport {
    let path = dir.join("group.gwal");
    let _ = std::fs::remove_file(&path);
    let wal = Arc::new(GroupWal::create(&path).expect("create group WAL"));
    let setup = {
        let wal = Arc::clone(&wal);
        move |id: usize| -> Session {
            let (mut s, _) = Session::builder()
                .name(&format!("s{id}"))
                .options(opts)
                .pred("Sub", 1)
                .group(Arc::clone(&wal))
                .open()
                .expect("open group session");
            let phi = parse(&s.schema().unwrap(), LOAD_CONSTRAINT).unwrap();
            s.add_constraint("cap", phi).unwrap();
            s
        }
    };
    let (elapsed, lat) = spawn_workers(sessions, appends, setup);
    report(sessions, appends, elapsed, lat, Some(wal.stats()))
}

/// Served: the same group WAL behind a real `ticc-server` on loopback,
/// appends as `ticc-wire-v1` frames. Measures the full stack including
/// dispatch and wire round-trips.
pub fn run_served(dir: &Path, sessions: usize, appends: usize, opts: CheckOptions) -> LoadReport {
    use std::io::{BufReader, BufWriter};
    use std::net::{TcpListener, TcpStream};
    use ticc_server::{wire, Limits, Server};

    let path = dir.join("served.gwal");
    let _ = std::fs::remove_file(&path);
    let limits = Limits {
        max_sessions: sessions + 8,
        max_inflight_appends: sessions + 8,
        workers: sessions.max(1),
        ..Limits::default()
    };
    let server = Server::with_wal(opts, limits, &path).expect("open served WAL");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let running = Server::start(Arc::new(server), listener).expect("start server");
    let addr = running.addr;

    let ask = |reader: &mut BufReader<TcpStream>,
               writer: &mut BufWriter<TcpStream>,
               req: &str|
     -> String {
        wire::write_frame(writer, req.as_bytes()).expect("write frame");
        let bytes = wire::read_frame(reader, wire::MAX_FRAME_BYTES)
            .expect("read frame")
            .expect("server response");
        let resp = String::from_utf8(bytes).expect("utf-8 response");
        assert!(resp.contains("\"ok\":true"), "request failed: {resp}");
        resp
    };

    let barrier = Arc::new(Barrier::new(sessions + 1));
    let (elapsed, lat) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(sessions);
        for id in 0..sessions {
            let barrier = Arc::clone(&barrier);
            let ask = &ask;
            handles.push(scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = BufWriter::new(stream);
                ask(
                    &mut reader,
                    &mut writer,
                    &format!(r#"{{"op":"hello","schema":"{}"}}"#, wire::WIRE_SCHEMA),
                );
                ask(
                    &mut reader,
                    &mut writer,
                    &format!(
                        r#"{{"op":"open","session":"s{id}","preds":[["Sub",1]],"constraints":[["cap","{LOAD_CONSTRAINT}"]]}}"#
                    ),
                );
                barrier.wait();
                let mut lat = Vec::with_capacity(appends);
                for step in 0..appends {
                    let verb = if step.is_multiple_of(2) { "insert" } else { "delete" };
                    let req =
                        format!(r#"{{"op":"append","session":"s{id}","{verb}":["Sub({id})"]}}"#);
                    let t0 = Instant::now();
                    ask(&mut reader, &mut writer, &req);
                    lat.push(t0.elapsed());
                }
                lat
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        let mut lat = Vec::with_capacity(sessions * appends);
        for h in handles {
            lat.extend(h.join().expect("client"));
        }
        (t0.elapsed(), lat)
    });

    // Pull the group counters off the server before shutting it down.
    let group = running.server.group_stats();
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    wire::write_frame(
        &mut stream,
        format!(r#"{{"op":"hello","schema":"{}"}}"#, wire::WIRE_SCHEMA).as_bytes(),
    )
    .unwrap();
    let _ = wire::read_frame(&mut BufReader::new(stream.try_clone().unwrap()), 1 << 20);
    wire::write_frame(&mut stream, br#"{"op":"shutdown","checkpoint":false}"#).unwrap();
    running.join();

    report(sessions, appends, elapsed, lat, group)
}
