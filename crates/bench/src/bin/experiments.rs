//! Regenerates every experiment table (E1–E20) from `DESIGN.md` §6.
//!
//! The paper (Chomicki & Niwiński, PODS 1993) is a theory paper with no
//! empirical tables; each experiment here validates one of its stated
//! bounds or constructions, and `EXPERIMENTS.md` records paper-vs-
//! measured. Run with:
//!
//! ```text
//! cargo run --release -p ticc-bench --bin experiments -- \
//!     [--threads off|auto|N] [--json <path>] [--smoke] [--rate R] [e1 e2 …]
//! ```
//!
//! `--json <path>` writes the machine-readable headline numbers (E13
//! per-config appends/sec plus the E1/E7 headlines) to `<path>`, and —
//! when E15 / E16 / E17 / E18 / E19 / E20 ran — their sweeps to
//! `BENCH_grounding_index.json`, `BENCH_template_automata.json`,
//! `BENCH_server.json`, `BENCH_worker_pool.json`,
//! `BENCH_history_window.json`, and `BENCH_server_mux.json`; all
//! payloads share the [`ticc_bench::json`] envelope and schema version
//! (including the `host` context section), documented in
//! `EXPERIMENTS.md`. `--smoke` shrinks E13–E20 to quick runs (used by
//! `scripts/verify.sh --release` and CI). `--rate R` overrides the
//! target arrival rate (appends/sec) of E17's open-loop configuration.

use std::time::Duration;
use ticc_bench::table::{fmt_duration, Table};
use ticc_bench::*;
use ticc_core::counter::counter_instance;
use ticc_core::{
    check_potential_satisfaction, CheckOptions, Encoding, EngineStats, GroundMode, Monitor, Threads,
};
use ticc_ptl::arena::Arena;
use ticc_ptl::sat::{is_satisfiable_with, SatSolver};
use ticc_tdb::workload::OrderWorkload;
use ticc_tdb::Transaction;

/// Machine-readable headline numbers, written by `--json`.
#[derive(Default)]
struct Headlines {
    /// E1: (history length, ns per state) at the largest size.
    e1: Option<(usize, f64)>,
    /// E7: (instants, appends per second) at the largest size.
    e7: Option<(usize, f64)>,
    /// E13: the full per-config sweep.
    e13: Option<E13Result>,
    /// E14: restart cost, snapshot restore vs cold replay.
    e14: Option<E14Result>,
    /// E15: indexed vs odometer grounding on the sparse workload.
    e15: Option<E15Result>,
    /// E16: compiled template automata vs symbolic progression.
    e16: Option<E16Result>,
    /// E17: multi-tenant server, group commit vs per-session fsync.
    e17: Option<E17Result>,
    /// E18: persistent worker pool + batched appends vs sequential.
    e18: Option<E18Result>,
    /// E19: bounded-memory histories — resident footprint, throughput,
    /// and recovery under `HistoryBudget` vs unbounded.
    e19: Option<E19Result>,
    /// E20: event-driven server core — idle-connection economy and
    /// append-latency parity, mux vs thread-per-connection.
    e20: Option<E20Result>,
}

fn main() {
    // The E15 odometer ablation folds |M|^k ≈ 3·10^5 instantiations
    // into one nested conjunction; the recursive fold and progression
    // walk it per node, which overruns the default 8 MiB main stack.
    // Run the harness on a thread with room to spare (reserved, not
    // committed).
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(run)
        .expect("spawn harness thread")
        .join()
        .expect("harness thread panicked");
}

fn run() {
    let threads = ticc_bench::threads_arg();
    let mut args: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut smoke = false;
    let mut rate: Option<f64> = None;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--threads" {
            raw.next(); // value consumed by threads_arg
            continue;
        }
        if a == "--json" {
            json_path = Some(raw.next().expect("--json needs a path"));
            continue;
        }
        if a == "--smoke" {
            smoke = true;
            continue;
        }
        if a == "--rate" {
            let v = raw.next().expect("--rate needs appends/sec");
            rate = Some(v.parse().expect("--rate needs a number"));
            continue;
        }
        args.push(a.to_lowercase());
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("ticc experiment harness — Chomicki & Niwiński (PODS 1993)");
    println!("threads = {threads}");
    let mut headlines = Headlines::default();
    // E14 runs first on purpose: its microsecond-scale restore timing
    // is allocation-bound, and the long sweeps (E1, E13) fragment the
    // allocator enough to skew it by ~30% when they run earlier.
    if want("e14") {
        headlines.e14 = Some(e14_restart(smoke));
    }
    if want("e1") {
        headlines.e1 = Some(e1_history_length());
    }
    if want("e2") {
        e2_relevant_elements(threads);
    }
    if want("e3") {
        e3_formula_size();
    }
    if want("e4") {
        e4_quantifiers(threads);
    }
    if want("e5") {
        e5_phase_split();
    }
    if want("e6") {
        e6_grounding_ablation();
    }
    if want("e7") {
        headlines.e7 = Some(e7_trigger_throughput(threads));
    }
    if want("e8") {
        e8_tableau_vs_gpvw();
    }
    if want("e9") {
        e9_tm_encoding();
    }
    if want("e10") {
        e10_counter_family();
    }
    if want("e11") {
        e11_notion_latency();
    }
    if want("e13") {
        headlines.e13 = Some(e13_append_hot_path(smoke));
    }
    if want("e15") {
        headlines.e15 = Some(e15_grounding_index(smoke));
    }
    if want("e16") {
        headlines.e16 = Some(e16_template_automata(smoke));
    }
    if want("e17") {
        headlines.e17 = Some(e17_server(smoke, rate));
    }
    if want("e18") {
        headlines.e18 = Some(e18_worker_pool(smoke, threads));
    }
    if want("e19") {
        headlines.e19 = Some(e19_bounded_history(smoke));
    }
    if want("e20") {
        headlines.e20 = Some(e20_server_mux(smoke));
    }
    if let Some(path) = json_path {
        write_json(&path, &headlines, threads);
        println!("\nwrote {path}");
        if let Some(e15) = &headlines.e15 {
            let mut doc = ticc_bench::json::JsonDoc::new();
            doc.section("e15", e15_json(e15));
            doc.section("threads", ticc_bench::json::string(&threads.to_string()));
            doc.section(
                "host",
                ticc_bench::json::host_section(&threads.to_string(), 1),
            );
            doc.write("BENCH_grounding_index.json");
            println!("wrote BENCH_grounding_index.json");
        }
        if let Some(e16) = &headlines.e16 {
            let mut doc = ticc_bench::json::JsonDoc::new();
            doc.section("e16", e16_json(e16));
            doc.section("threads", ticc_bench::json::string(&threads.to_string()));
            doc.section(
                "host",
                ticc_bench::json::host_section(&threads.to_string(), 1),
            );
            doc.write("BENCH_template_automata.json");
            println!("wrote BENCH_template_automata.json");
        }
        if let Some(e17) = &headlines.e17 {
            let mut doc = ticc_bench::json::JsonDoc::new();
            doc.section("e17", e17_json(e17));
            doc.section("threads", ticc_bench::json::string(&threads.to_string()));
            doc.section(
                "host",
                ticc_bench::json::host_section(&threads.to_string(), 1),
            );
            doc.write("BENCH_server.json");
            println!("wrote BENCH_server.json");
        }
        if let Some(e18) = &headlines.e18 {
            let max_batch = e18.configs.iter().map(|c| c.batch).max().unwrap_or(1);
            let mut doc = ticc_bench::json::JsonDoc::new();
            doc.section("e18", e18_json(e18));
            doc.section("threads", ticc_bench::json::string(&threads.to_string()));
            doc.section(
                "host",
                ticc_bench::json::host_section(&threads.to_string(), max_batch),
            );
            doc.write("BENCH_worker_pool.json");
            println!("wrote BENCH_worker_pool.json");
        }
        if let Some(e19) = &headlines.e19 {
            let mut doc = ticc_bench::json::JsonDoc::new();
            doc.section("e19", e19_json(e19));
            doc.section("threads", ticc_bench::json::string(&threads.to_string()));
            doc.section(
                "host",
                ticc_bench::json::host_section(&threads.to_string(), 1),
            );
            doc.write("BENCH_history_window.json");
            println!("wrote BENCH_history_window.json");
        }
        if let Some(e20) = &headlines.e20 {
            let mut doc = ticc_bench::json::JsonDoc::new();
            doc.section("e20", e20_json(e20));
            doc.section("threads", ticc_bench::json::string(&threads.to_string()));
            doc.section(
                "host",
                ticc_bench::json::host_section(&threads.to_string(), 1),
            );
            doc.write("BENCH_server_mux.json");
            println!("wrote BENCH_server_mux.json");
        }
    }
}

/// E1: checking time is linear in history length `t` (Lemma 4.2 phase 1,
/// first addend of Theorem 4.2's bound) once `R_D` is fixed.
fn e1_history_length() -> (usize, f64) {
    let sc = order_schema();
    let phi = fifo(&sc);
    let mut t = Table::new(
        "E1: history length (FIFO constraint, |R_D| = 2 fixed)",
        "Theorem 4.2 first addend: O(t · |phi_D|) — time/state flattens",
        &["t", "sat?", "time", "time/state"],
    );
    let mut headline = (0usize, 0.0f64);
    for states in [16usize, 64, 256, 1024, 4096] {
        let h = cyclic_order_history(&sc, states);
        let mut out = None;
        let d = ticc_bench::time_best_of(3, || {
            out = Some(check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap());
        });
        let out = out.unwrap();
        t.row([
            states.to_string(),
            out.potentially_satisfied.to_string(),
            fmt_duration(d),
            fmt_duration(d / states as u32),
        ]);
        headline = (states, d.as_secs_f64() * 1e9 / states as f64);
    }
    t.print();
    headline
}

/// E2: `|R_D|` drives the cost. (a) the grounding alone is polynomial of
/// degree `max(k, l)`; (b) the full decision is exponential — Section 6
/// argues the exponent is unavoidable.
fn e2_relevant_elements(threads: Threads) {
    let sc = order_schema();
    let phi_once = once_only(&sc);
    let mut ta = Table::new(
        "E2a: grounding size vs |R_D| (once-only, k = 1, l = 1)",
        "Theorem 4.1: |phi_D| = O((|phi|·|R_D|)^max(k,l)) — linear here",
        &[
            "|R_D|",
            "|M|",
            "instances",
            "tree size",
            "ground (off)",
            "ground (par)",
        ],
    );
    for m in [2usize, 4, 8, 16, 32, 64] {
        let h = spread_history(&sc, m);
        let mut g = None;
        let d = ticc_bench::time_best_of(3, || {
            g = Some(ticc_core::ground(&h, &phi_once, GroundMode::Folded).unwrap());
        });
        let dp = ticc_bench::time_best_of(3, || {
            ticc_core::ground_with(&h, &phi_once, GroundMode::Folded, threads).unwrap();
        });
        let g = g.unwrap();
        ta.row([
            m.to_string(),
            g.stats.m_size.to_string(),
            g.stats.mappings.to_string(),
            g.stats.formula_tree_size.to_string(),
            fmt_duration(d),
            fmt_duration(dp),
        ]);
    }
    ta.print();

    let esc = edge_schema();
    let phi2 = chain_constraint(&esc, 2);
    let mut tb = Table::new(
        "E2a': grounding size vs |R_D| (chain k = 2, l = 2)",
        "degree max(k,l) = 2: instances grow quadratically",
        &[
            "|R_D|",
            "instances",
            "tree size",
            "ground (off)",
            "ground (par)",
        ],
    );
    for m in [2usize, 4, 8, 16, 32] {
        let h = path_history(&esc, m);
        let mut g = None;
        let d = ticc_bench::time_best_of(3, || {
            g = Some(ticc_core::ground(&h, &phi2, GroundMode::Folded).unwrap());
        });
        let dp = ticc_bench::time_best_of(3, || {
            ticc_core::ground_with(&h, &phi2, GroundMode::Folded, threads).unwrap();
        });
        let g = g.unwrap();
        tb.row([
            m.to_string(),
            g.stats.mappings.to_string(),
            g.stats.formula_tree_size.to_string(),
            fmt_duration(d),
            fmt_duration(dp),
        ]);
    }
    tb.print();

    let mut tc = Table::new(
        "E2b: full decision vs |R_D| (once-only residue automaton)",
        "Theorem 4.2 second addend: 2^O(|phi_D|) — the exhaustive \
         automaton grows exponentially; the safety probe (production \
         default) sidesteps it on satisfied instances",
        &[
            "|R_D|",
            "exhaustive states",
            "exhaustive time",
            "probe time",
        ],
    );
    for m in [2usize, 4, 6, 8, 10, 12] {
        let h = unsubmitted_history(&sc, m);
        let mut exh = None;
        let d_exh = ticc_bench::time_best_of(2, || {
            exh = Some(
                check_potential_satisfaction(
                    &h,
                    &phi_once,
                    &CheckOptions::builder()
                        .mode(GroundMode::Folded)
                        .solver(ticc_ptl::sat::SatSolver::BuchiExhaustive)
                        .build(),
                )
                .unwrap(),
            );
        });
        let d_probe = ticc_bench::time_best_of(2, || {
            let out =
                check_potential_satisfaction(&h, &phi_once, &CheckOptions::default()).unwrap();
            assert!(out.potentially_satisfied);
        });
        let exh = exh.unwrap();
        tc.row([
            m.to_string(),
            exh.stats.sat.states.to_string(),
            fmt_duration(d_exh),
            fmt_duration(d_probe),
        ]);
    }
    tc.print();
}

/// E3: PTL satisfiability is exponential in formula size (Lemma 4.2
/// phase 2), on the classic `⋀ □◇p_i` family.
fn e3_formula_size() {
    let mut t = Table::new(
        "E3: PTL satisfiability vs formula size (⋀ □◇p_i)",
        "Lemma 4.2: 2^O(|psi|) — automaton states double per conjunct",
        &["n", "tree size", "aut states", "time"],
    );
    for n in 1..=9usize {
        let mut ar = Arena::new();
        let f = gf_family(&mut ar, n);
        let size = ar.tree_size(f);
        let mut states = 0;
        let d = ticc_bench::time_best_of(3, || {
            let r = is_satisfiable_with(&mut ar, f, SatSolver::Buchi).unwrap();
            states = r.stats.states;
            assert!(r.satisfiable);
        });
        t.row([
            n.to_string(),
            size.to_string(),
            states.to_string(),
            fmt_duration(d),
        ]);
    }
    t.print();
}

/// E4: the number of external quantifiers `k` drives the grounding:
/// `(|R_D| + k)^k` instances.
fn e4_quantifiers(threads: Threads) {
    let esc = edge_schema();
    let mut t = Table::new(
        "E4: external quantifier count (chain family, |R_D| = 4)",
        "Theorem 4.1: |M|^k ground instances",
        &[
            "k",
            "instances",
            "tree size",
            "ground (off)",
            "ground (par)",
            "check time",
        ],
    );
    for k in 1..=4usize {
        let phi = chain_constraint(&esc, k);
        let h = path_history(&esc, 4);
        let mut g = None;
        let dg = ticc_bench::time_best_of(3, || {
            g = Some(ticc_core::ground(&h, &phi, GroundMode::Folded).unwrap());
        });
        let dgp = ticc_bench::time_best_of(3, || {
            ticc_core::ground_with(&h, &phi, GroundMode::Folded, threads).unwrap();
        });
        let g = g.unwrap();
        let dc = ticc_bench::time_best_of(2, || {
            let _ = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        });
        t.row([
            k.to_string(),
            g.stats.mappings.to_string(),
            g.stats.formula_tree_size.to_string(),
            fmt_duration(dg),
            fmt_duration(dgp),
            fmt_duration(dc),
        ]);
    }
    t.print();
}

/// E5: the two-phase decomposition of Lemma 4.2 — phase 1 (ground +
/// progress) grows with `t`, phase 2 (satisfiability of the residue)
/// does not.
fn e5_phase_split() {
    let sc = order_schema();
    let phi = fifo(&sc);
    let mut t = Table::new(
        "E5: phase split (FIFO on the cyclic workload)",
        "Lemma 4.2: phase 1 O(t·|phi_D|), phase 2 independent of t",
        &["t", "ground", "progress+sat", "residue sat states"],
    );
    for states in [64usize, 256, 1024, 4096] {
        let h = cyclic_order_history(&sc, states);
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        t.row([
            states.to_string(),
            fmt_duration(out.stats.timings.ground),
            fmt_duration(out.stats.timings.decide),
            out.stats.sat.states.to_string(),
        ]);
    }
    t.print();
}

/// E6: ablation — the literal `Axiom_D` construction vs rigid-atom
/// folding.
fn e6_grounding_ablation() {
    let sc = order_schema();
    let phi = once_only(&sc);
    let mut t = Table::new(
        "E6: grounding ablation (once-only)",
        "Full emits Axiom_D (O(|M∪CL|^max(3,l)) conjuncts); Folded \
         constant-folds every rigid letter — equivalent results",
        &[
            "|R_D|",
            "full tree",
            "full axioms",
            "full time",
            "folded tree",
            "folded time",
            "agree",
        ],
    );
    for m in [2usize, 3, 4, 5, 6] {
        let h = spread_history(&sc, m);
        let mut full_out = None;
        let d_full = ticc_bench::time_best_of(2, || {
            full_out = Some(
                check_potential_satisfaction(
                    &h,
                    &phi,
                    &CheckOptions::builder()
                        .mode(GroundMode::Full)
                        .solver(SatSolver::Buchi)
                        .build(),
                )
                .unwrap(),
            );
        });
        let mut folded_out = None;
        let d_folded = ticc_bench::time_best_of(2, || {
            folded_out =
                Some(check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap());
        });
        let full = full_out.unwrap();
        let folded = folded_out.unwrap();
        t.row([
            m.to_string(),
            full.stats.ground.formula_tree_size.to_string(),
            full.stats.ground.axiom_conjuncts.to_string(),
            fmt_duration(d_full),
            folded.stats.ground.formula_tree_size.to_string(),
            fmt_duration(d_folded),
            (full.potentially_satisfied == folded.potentially_satisfied).to_string(),
        ]);
    }
    t.print();
}

/// E7: end-to-end monitor + trigger throughput on the paper's
/// customer-order workload.
fn e7_trigger_throughput(threads: Threads) -> (usize, f64) {
    let sc = order_schema();
    let mut t = Table::new(
        "E7: online monitor throughput (order workload, once-only + FIFO)",
        "Section 2 duality in practice: appends/second with earliest \
         violation detection; the (par) column fans the per-constraint \
         checks across the worker pool",
        &[
            "orders",
            "appends",
            "violations",
            "fast/reground",
            "time (off)",
            "time (par)",
            "appends/s",
        ],
    );
    let mut headline = (0usize, 0.0f64);
    for instants in [8usize, 16, 32] {
        let w = OrderWorkload {
            instants,
            submit_prob: 0.5,
            fill_prob: 0.5,
            violation: None,
            seed: 7,
        };
        let h = w.generate();
        let mut violations = 0usize;
        let mut stats = None;
        let mut run = |thr: Threads| {
            ticc_bench::time_best_of(1, || {
                let mut m = Monitor::new(sc.clone(), CheckOptions::builder().threads(thr).build());
                m.add_constraint("once", once_only(&sc)).unwrap();
                m.add_constraint("fifo", fifo(&sc)).unwrap();
                violations = 0;
                for st in h.states() {
                    // Reconstruct each state as a transaction from empty.
                    let mut tx = Transaction::new();
                    if let Some(prev) = m.history().last() {
                        for p in sc.preds() {
                            for tuple in prev.relation(p).iter() {
                                tx = tx.delete(p, tuple.to_vec());
                            }
                        }
                    }
                    for p in sc.preds() {
                        for tuple in st.relation(p).iter() {
                            tx = tx.insert(p, tuple.to_vec());
                        }
                    }
                    violations += m.append(&tx).unwrap().len();
                }
                stats = Some(m.stats());
            })
        };
        let d = run(Threads::Off);
        let dp = run(threads);
        let s = stats.unwrap();
        let rate = instants as f64 / d.as_secs_f64();
        t.row([
            h.relevant().len().to_string(),
            instants.to_string(),
            violations.to_string(),
            format!("{}/{}", s.fast_appends, s.regrounds),
            fmt_duration(d),
            fmt_duration(dp),
            format!("{rate:.0}"),
        ]);
        headline = (instants, rate);
    }
    t.print();
    headline
}

/// E8: ablation — classic closure-subset tableau vs on-the-fly GPVW.
fn e8_tableau_vs_gpvw() {
    let mut t = Table::new(
        "E8: tableau vs GPVW (⋀ □◇p_i)",
        "Both realise 2^O(|psi|); the on-the-fly construction only \
         materialises reachable nodes and wins by a growing factor",
        &[
            "n",
            "closure",
            "tableau states",
            "tableau time",
            "gpvw states",
            "gpvw time",
        ],
    );
    for n in 1..=4usize {
        let mut ar = Arena::new();
        let f = gf_family(&mut ar, n);
        let nnf = ticc_ptl::nnf::nnf(&mut ar, f).unwrap();
        let closure = ticc_ptl::closure::Closure::of(&ar, nnf).len();
        let mut tab_states = 0usize;
        let d_tab = ticc_bench::time_best_of(2, || {
            let r = is_satisfiable_with(&mut ar, f, SatSolver::Tableau).unwrap();
            tab_states = r.stats.states;
            assert!(r.satisfiable);
        });
        let mut gpvw_states = 0usize;
        let d_gpvw = ticc_bench::time_best_of(2, || {
            let r = is_satisfiable_with(&mut ar, f, SatSolver::Buchi).unwrap();
            gpvw_states = r.stats.states;
            assert!(r.satisfiable);
        });
        t.row([
            n.to_string(),
            closure.to_string(),
            tab_states.to_string(),
            fmt_duration(d_tab),
            gpvw_states.to_string(),
            fmt_duration(d_gpvw),
        ]);
    }
    t.print();
}

/// E9: the Section 3 constructions — formula sizes and the Σ⁰₂
/// semi-decision budget sweep.
fn e9_tm_encoding() {
    use ticc_tm::bounded::{semi_decide_repeating, SemiDecision};
    use ticc_tm::zoo;

    let mut t = Table::new(
        "E9a: construction sizes (Proposition 3.1 / Theorem 3.2)",
        "phi is ∀³ over the extended vocabulary; phi-tilde is ∀³tense(Σ1) monadic",
        &["machine", "|phi|", "|phi~|", "build time"],
    );
    for m in [zoo::shuttle(), zoo::runner(), zoo::picky()] {
        let sc = ticc_tm::machine_schema(&m);
        let scw = ticc_tm::phi_tilde::machine_schema_with_w(&m);
        let mut sizes = (0usize, 0usize);
        let d = ticc_bench::time_best_of(3, || {
            let f = ticc_tm::phi::phi(&m, &sc);
            let ft = ticc_tm::phi_tilde::phi_tilde(&m, &scw);
            sizes = (f.size(), ft.size());
        });
        t.row([
            m.name().to_owned(),
            sizes.0.to_string(),
            sizes.1.to_string(),
            fmt_duration(d),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "E9b: Σ⁰₂ semi-decision budget sweep (target visits n)",
        "Theorem 3.1's proof: repeating ⟺ every n is reached; only the \
         shuttle keeps reaching targets, the runner stays undetermined",
        &["n", "shuttle", "runner", "picky(0…)", "halter"],
    );
    for n in [1usize, 4, 16, 64, 256] {
        let cell = |m: &ticc_tm::Machine, input: &[bool]| match semi_decide_repeating(
            m, input, n, 100_000,
        ) {
            SemiDecision::ReachedTarget { steps } => format!("ok@{steps}"),
            SemiDecision::Halted { .. } => "halted".to_owned(),
            SemiDecision::Undetermined { visits } => format!("?({visits})"),
        };
        t2.row([
            n.to_string(),
            cell(&zoo::shuttle(), &[true]),
            cell(&zoo::runner(), &[true]),
            cell(&zoo::picky(), &[false]),
            cell(&zoo::halter(), &[true]),
        ]);
    }
    t2.print();
}

/// E11: the Section 5 comparison — potential satisfaction (earliest
/// detection, phase-2 satisfiability per update) vs the weaker
/// bad-prefix notion of Lipeck–Saake / Sistla–Wolfson (progression
/// only, detection possibly delayed).
fn e11_notion_latency() {
    use ticc_core::monitor::Notion;
    use ticc_fotl::parser::parse;
    let sc = order_schema();
    let sub = sc.pred("Sub").unwrap();
    let mut t = Table::new(
        "E11: violation notions (Section 5)",
        "Potential satisfaction detects latent violations w instants \
         earlier than bad-prefix-only monitoring, at the cost of the \
         phase-2 satisfiability test per update",
        &[
            "lookahead w",
            "potential detects at",
            "bad-prefix detects at",
            "latency gap",
            "potential time",
            "bad-prefix time",
        ],
    );
    for w in 1usize..=5 {
        // □(Sub(1) → ○^w Fill(1)) ∧ □¬Fill(1): after Sub(1) no extension
        // exists, but the residue only folds to ⊥ after w more states.
        let mut ahead = "Fill(1)".to_owned();
        for _ in 0..w {
            ahead = format!("X ({ahead})");
        }
        let phi = parse(&sc, &format!("G (Sub(1) -> {ahead}) & G !Fill(1)")).unwrap();
        let run = |notion: Notion| {
            let mut m = Monitor::new(sc.clone(), CheckOptions::default()).with_notion(notion);
            let id = m.add_constraint("latent", phi.clone()).unwrap();
            let mut detected = None;
            let t0 = std::time::Instant::now();
            let tx = Transaction::new().insert(sub, vec![1]);
            m.append(&tx).unwrap();
            let clear = Transaction::new().delete(sub, vec![1]);
            for _ in 0..(w + 3) {
                m.append(&clear).unwrap();
                if detected.is_none() {
                    if let ticc_core::Status::Violated { at } = m.status(id) {
                        detected = Some(at);
                    }
                }
            }
            let elapsed = t0.elapsed();
            if detected.is_none() {
                if let ticc_core::Status::Violated { at } = m.status(id) {
                    detected = Some(at);
                }
            }
            (detected, elapsed)
        };
        let (strong_at, strong_d) = run(Notion::Potential);
        let (weak_at, weak_d) = run(Notion::BadPrefix);
        let (sa, wa) = (
            strong_at.unwrap_or(usize::MAX),
            weak_at.unwrap_or(usize::MAX),
        );
        t.row([
            w.to_string(),
            sa.to_string(),
            wa.to_string(),
            format!("{}", wa.saturating_sub(sa)),
            fmt_duration(strong_d),
            fmt_duration(weak_d),
        ]);
    }
    t.print();
}

/// One measured configuration of the E13 sweep.
struct E13Config {
    label: &'static str,
    encoding: Encoding,
    cache: bool,
    appends_per_sec: f64,
    stats: EngineStats,
}

/// The E13 sweep result (also the `--json` payload).
struct E13Result {
    domain: usize,
    history: usize,
    measured: usize,
    configs: Vec<E13Config>,
    /// Hot configuration vs the rebuild-everything ablation.
    speedup: f64,
}

/// E13: the append hot path — steady-state appends cost `O(|Δtx|)`
/// plus (usually) one transition-cache lookup. Ablates the two layers
/// independently: incremental letter patching vs full re-encode, and
/// transition cache on vs off.
fn e13_append_hot_path(smoke: bool) -> E13Result {
    use ticc_fotl::parser::parse;
    let sc = order_schema();
    let domain = 6usize;
    let total = if smoke { 240 } else { 4096 };
    let warmup = 2 * domain; // one full lap: the domain is stable after it
    let mut t = Table::new(
        format!("E13: append hot path (steady churn, |R_D| = {domain}, FIFO + cap, t = {total})"),
        "steady-state appends cost O(|Δtx|) + one hash lookup: \
         incremental patching skips the re-encode, the transition \
         cache skips progression and phase 2",
        &[
            "config",
            "appends/s",
            "trans hits",
            "trans misses",
            "patched atoms",
            "speedup",
        ],
    );
    let run = |encoding: Encoding, cache: bool| -> (f64, EngineStats) {
        let opts = CheckOptions::builder()
            .encoding(encoding)
            .transition_cache(cache)
            .build();
        let mut m = Monitor::new(sc.clone(), opts);
        m.add_constraint("fifo", fifo(&sc)).unwrap();
        m.add_constraint("cap", parse(&sc, "G !Sub(999)").unwrap())
            .unwrap();
        for i in 0..warmup {
            assert!(m
                .append(&steady_churn_tx(&sc, domain, i))
                .unwrap()
                .is_empty());
        }
        let t0 = std::time::Instant::now();
        for i in warmup..total {
            assert!(m
                .append(&steady_churn_tx(&sc, domain, i))
                .unwrap()
                .is_empty());
        }
        let elapsed = t0.elapsed();
        (
            (total - warmup) as f64 / elapsed.as_secs_f64(),
            m.engine_stats(),
        )
    };
    let spec: [(&'static str, Encoding, bool); 4] = [
        ("rebuild / no cache", Encoding::Rebuild, false),
        ("incremental / no cache", Encoding::Incremental, false),
        ("rebuild / cache", Encoding::Rebuild, true),
        ("incremental + cache", Encoding::Incremental, true),
    ];
    let mut configs = Vec::new();
    for (label, encoding, cache) in spec {
        let (rate, stats) = run(encoding, cache);
        configs.push(E13Config {
            label,
            encoding,
            cache,
            appends_per_sec: rate,
            stats,
        });
    }
    let baseline = configs[0].appends_per_sec;
    for c in &configs {
        t.row([
            c.label.to_owned(),
            format!("{:.0}", c.appends_per_sec),
            c.stats.cache.transition_hits.to_string(),
            c.stats.cache.transition_misses.to_string(),
            c.stats.encode_patched_atoms.to_string(),
            format!("{:.2}x", c.appends_per_sec / baseline),
        ]);
    }
    t.print();
    let speedup = configs[3].appends_per_sec / baseline;
    E13Result {
        domain,
        history: total,
        measured: total - warmup,
        configs,
        speedup,
    }
}

/// The E14 result (also the `--json` payload).
struct E14Result {
    history: usize,
    snapshot_bytes: u64,
    restore: Duration,
    replay: Duration,
    speedup: f64,
}

/// E14: restart cost — recovering a long monitoring session from an
/// engine snapshot vs replaying every transaction through the checker.
///
/// Theorem 4.1's history-less checking is what makes the snapshot
/// small: the monitor state is the current database plus bounded
/// per-constraint residues, so restoring is `O(|snapshot|)` while a
/// cold replay pays the full per-append checking cost `t` times over.
fn e14_restart(smoke: bool) -> E14Result {
    use ticc_fotl::parser::parse;
    let sc = order_schema();
    let domain = 6usize;
    let total = if smoke { 240 } else { 4096 };
    let path = std::env::temp_dir().join(format!("ticc-e14-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // A representative session: the FIFO constraint plus three cheap
    // invariants, all satisfied by the churn. Replay re-pays the
    // per-append checking cost of every constraint; restore decodes
    // the snapshot once.
    let constraints: [(&str, &str); 4] = [
        ("fifo", ticc_bench::FIFO),
        ("cap-sub", "G !Sub(999)"),
        ("cap-fill", "G !Fill(999)"),
        ("excl", "forall x. G !(Sub(x) & Fill(x))"),
    ];
    // Default options (WAL on); compact at the end so recovery reads a
    // log holding exactly one snapshot frame.
    let opts = CheckOptions::default();
    let (mut engine, _) = ticc_core::Engine::open(&path, sc.clone(), opts).unwrap();
    for (name, src) in constraints {
        engine
            .add_constraint(name, parse(&sc, src).unwrap())
            .unwrap();
    }
    let mut txs = Vec::with_capacity(total);
    for i in 0..total {
        let tx = steady_churn_tx(&sc, domain, i);
        assert!(engine.append(&tx).unwrap().is_empty());
        txs.push(tx);
    }
    engine.compact(&[]).unwrap();
    let snapshot_bytes = engine.store_stats().unwrap().last_snapshot_bytes;
    let ids: Vec<_> = engine.constraints().collect();
    let statuses: Vec<_> = ids.iter().map(|&id| engine.status(id)).collect();
    drop(engine);

    let restore = ticc_bench::time_best_of(7, || {
        let (e, report) = ticc_core::Engine::open(&path, sc.clone(), opts).unwrap();
        assert!(report.had_snapshot);
        assert_eq!(report.replayed_txs, 0);
        assert_eq!(e.history().len(), total);
    });
    let replay = ticc_bench::time_best_of(if smoke { 3 } else { 2 }, || {
        let mut e = ticc_core::Engine::new(sc.clone(), opts);
        for (name, src) in constraints {
            e.add_constraint(name, parse(&sc, src).unwrap()).unwrap();
        }
        for tx in &txs {
            e.append(tx).unwrap();
        }
        for (id, expected) in ids.iter().zip(&statuses) {
            assert_eq!(e.status(*id), *expected, "replay diverged");
        }
    });
    let speedup = replay.as_secs_f64() / restore.as_secs_f64();

    let mut t = Table::new(
        format!(
            "E14: restart cost (steady churn, |R_D| = {domain}, FIFO + 3 invariants, t = {total})"
        ),
        "Theorem 4.1 residues make the snapshot state-bounded: \
         restore is O(|snapshot|), replay pays t appends again",
        &["recovery path", "time", "states/s", "speedup"],
    );
    for (label, d) in [("snapshot restore", restore), ("cold replay", replay)] {
        t.row([
            label.to_owned(),
            fmt_duration(d),
            format!("{:.0}", total as f64 / d.as_secs_f64()),
            format!("{:.2}x", replay.as_secs_f64() / d.as_secs_f64()),
        ]);
    }
    t.print();
    println!("  snapshot size: {snapshot_bytes} bytes");
    let _ = std::fs::remove_file(&path);
    E14Result {
        history: total,
        snapshot_bytes,
        restore,
        replay,
        speedup,
    }
}

/// The E15 result (also the `--json` payload, and the standalone
/// `BENCH_grounding_index.json`).
struct E15Result {
    domain: u64,
    k: usize,
    states: usize,
    per_state: usize,
    mappings: usize,
    inst_enumerated: usize,
    inst_pruned: usize,
    inst_shared: usize,
    ground_odometer: Duration,
    ground_indexed: Duration,
    speedup: f64,
    events_identical: bool,
}

/// E15: indexed grounding vs the `|M|^k` odometer on the sparse
/// workload (large active domain, few tuples per relation per state) —
/// the shape Theorem 4.1's `R_D` refinement targets. The occurrence-
/// index join enumerates only instantiations with a supported atom;
/// the skipped remainder folds to one canonical rigid-false residue.
/// Also re-runs the whole workload through the online monitor under
/// Indexed, Odometer, and Indexed∥4 and asserts the check events are
/// identical.
fn e15_grounding_index(smoke: bool) -> E15Result {
    use ticc_core::{ground_opts, GroundStrategy};
    let esc = edge_schema();
    let k = 3usize;
    let phi = chain_constraint(&esc, k);
    let (domain, states): (u64, usize) = if smoke { (16, 8) } else { (64, 24) };
    let headline_per = 4usize;
    let seed = 0xE15;
    let mut t = Table::new(
        format!(
            "E15: indexed grounding vs odometer (chain k = {k}, domain {domain}, t = {states})"
        ),
        "Theorem 4.1 is stated over R_D: the occurrence-index join \
         enumerates supported instantiations only; the skipped \
         remainder of |M|^k folds to one rigid-false residue",
        &[
            "tuples/state",
            "|M|^k",
            "enumerated",
            "pruned",
            "odometer",
            "indexed",
            "speedup",
        ],
    );
    let sweep: &[usize] = if smoke { &[2, 4] } else { &[1, 2, 4, 8, 16] };
    let mut headline = None;
    for &per in sweep {
        let h = sparse_edge_history(&esc, domain, per, states, seed);
        let d_odo = ticc_bench::time_best_of(if smoke { 1 } else { 2 }, || {
            ticc_core::ground_with(&h, &phi, GroundMode::Folded, Threads::Off).unwrap();
        });
        let mut g = None;
        let d_idx = ticc_bench::time_best_of(if smoke { 1 } else { 3 }, || {
            g = Some(
                ground_opts(
                    &h,
                    &phi,
                    GroundMode::Folded,
                    GroundStrategy::Indexed,
                    Threads::Off,
                )
                .unwrap(),
            );
        });
        let g = g.unwrap();
        assert_eq!(g.strategy(), GroundStrategy::Indexed, "gate must engage");
        let speedup = d_odo.as_secs_f64() / d_idx.as_secs_f64();
        t.row([
            per.to_string(),
            g.stats.mappings.to_string(),
            g.stats.inst_enumerated.to_string(),
            g.stats.inst_pruned.to_string(),
            fmt_duration(d_odo),
            fmt_duration(d_idx),
            format!("{speedup:.2}x"),
        ]);
        if per == headline_per {
            headline = Some((g.stats, d_odo, d_idx, speedup));
        }
    }
    t.print();
    let (stats, ground_odometer, ground_indexed, speedup) =
        headline.expect("sweep includes the headline sparsity");

    // Equivalence: the full workload through the online monitor —
    // growing relevant domain (delta re-grounds), occurrence
    // activations, and the parallel shard merge — must produce
    // bit-identical check events under all three configurations.
    let txs = sparse_edge_txs(&esc, domain, headline_per, states, seed);
    let run = |strategy: GroundStrategy, thr: Threads| {
        let opts = CheckOptions::builder()
            .grounding(strategy)
            .threads(thr)
            .build();
        let mut m = Monitor::new(esc.clone(), opts);
        m.add_constraint("chain", phi.clone()).unwrap();
        let mut events = Vec::new();
        for tx in &txs {
            events.extend(m.append(tx).unwrap());
        }
        (events, m.engine_stats())
    };
    let (ev_idx, s_idx) = run(GroundStrategy::Indexed, Threads::Off);
    let (ev_odo, _) = run(GroundStrategy::Odometer, Threads::Off);
    let (ev_par, _) = run(GroundStrategy::Indexed, Threads::Fixed(4));
    let events_identical = ev_idx == ev_odo && ev_idx == ev_par;
    assert!(
        events_identical,
        "indexed / odometer / indexed∥4 check events diverged"
    );
    assert!(
        s_idx.inst_pruned > 0,
        "the sparse workload must actually prune"
    );
    println!(
        "  monitor equivalence: {} events identical under Indexed, \
         Odometer, Indexed∥4; online inst_pruned = {}",
        ev_idx.len(),
        s_idx.inst_pruned
    );
    E15Result {
        domain,
        k,
        states,
        per_state: headline_per,
        mappings: stats.mappings,
        inst_enumerated: stats.inst_enumerated,
        inst_pruned: stats.inst_pruned,
        inst_shared: stats.inst_shared,
        ground_odometer,
        ground_indexed,
        speedup,
        events_identical,
    }
}

/// One configuration's measurement inside an [`E16Row`].
struct E16Config {
    /// Steady-state append latency.
    ns_per_append: f64,
    /// Modelled retained bytes after the run (see `e16_retained_bytes`).
    retained_bytes: u64,
    /// Engine counters after the run.
    stats: EngineStats,
}

/// One sweep point of the E16 instantiation-count sweep.
struct E16Row {
    /// Live instantiations (relevant-domain size).
    insts: usize,
    /// Steady appends measured per configuration.
    measured: usize,
    compiled: E16Config,
    symbolic: E16Config,
    /// Symbolic ns/append over compiled ns/append (higher = compiled wins).
    throughput_ratio: f64,
    /// Symbolic retained bytes over compiled retained bytes.
    memory_ratio: f64,
}

/// The E16 result (also the `--json` payload, and the standalone
/// `BENCH_template_automata.json`).
struct E16Result {
    rows: Vec<E16Row>,
    /// Index into `rows` of the headline (largest) instantiation count.
    headline: usize,
    events_identical: bool,
}

/// Modelled retained bytes for one finished run, from the engine
/// gauges. The constants are the measured-on-x86-64 sizes of the
/// dominant structures (struct + owned payload + hash-map slot
/// overhead, rounded to the allocator bucket):
///
/// * 48 B per interned arena node (tag + operands + hash-cons slot);
/// * 48 B per retained transition-cache entry (16 B key + residue id +
///   robin-hood slot);
/// * 24 B per retained phase-2 sat-cache entry (key + verdict + slot);
/// * 64 B per bound automaton instantiation (`Unit`: template id,
///   `u32` state, column, support vector + atom-index entries);
/// * 16 B per compiled automaton state row (arity-2 template: four
///   `u32` successors).
///
/// The model is applied symmetrically — each run is charged for
/// whatever it actually retained — so the ratio compares the symbolic
/// path's formula/cache footprint against the compiled path's
/// per-instantiation `u32` state.
fn e16_retained_bytes(s: &EngineStats) -> u64 {
    const NODE_BYTES: u64 = 48;
    const TRANS_ENTRY_BYTES: u64 = 48;
    const SAT_ENTRY_BYTES: u64 = 24;
    const UNIT_BYTES: u64 = 64;
    const STATE_ROW_BYTES: u64 = 16;
    s.arena_nodes * NODE_BYTES
        + (s.cache.transition_misses - s.cache.transition_evictions) * TRANS_ENTRY_BYTES
        + (s.sat_checks - s.cache.sat_evictions) * SAT_ENTRY_BYTES
        + s.automaton_insts * UNIT_BYTES
        + s.automaton_states * STATE_ROW_BYTES
}

/// E16: compiled template automata vs symbolic progression on the
/// response workload (`forall x. G (Sub(x) -> X Fill(x))`). Every
/// element of `0..n` is taken through one submit → fill cycle so `n`
/// isomorphic instantiations stay live, then the steady state walks
/// the obligation across them (`|Δtx| ≤ 4` per append). The compiled
/// path binds all `n` instantiations to ONE hash-consed template and
/// steps dormant-free `u32` state; the symbolic path re-progresses the
/// conjunction residue, whose period-`n` cycle defeats both the
/// transition cache and the phase-2 sat cache. Check events are
/// asserted identical at every sweep point.
fn e16_template_automata(smoke: bool) -> E16Result {
    let sc = order_schema();
    let phi = response(&sc);
    let sweep: &[usize] = if smoke { &[200] } else { &[1000, 4000, 12000] };
    let measured = if smoke { 20 } else { 60 };
    let mut t = Table::new(
        "E16: template automata vs symbolic progression (response constraint)",
        "one shared template, u32 state per instantiation; symbolic \
         residues cycle with period n and miss both caches",
        &[
            "insts",
            "templates",
            "states",
            "symbolic/app",
            "compiled/app",
            "speedup",
            "sym B/inst",
            "cmp B/inst",
            "mem ratio",
        ],
    );
    let mut rows = Vec::new();
    let mut events_identical = true;
    for &n in sweep {
        let run = |template_automata: bool| {
            let opts = CheckOptions::builder()
                .template_automata(template_automata)
                .build();
            let mut m = Monitor::new(sc.clone(), opts);
            m.add_constraint("response", phi.clone()).unwrap();
            let mut events = Vec::new();
            for tx in response_setup_txs(&sc, n) {
                events.extend(m.append(&tx).unwrap());
            }
            let start = std::time::Instant::now();
            for i in 0..measured {
                events.extend(m.append(&response_steady_tx(&sc, n, i)).unwrap());
            }
            let steady = start.elapsed();
            let stats = m.engine_stats();
            let ns = steady.as_secs_f64() * 1e9 / measured as f64;
            (
                E16Config {
                    ns_per_append: ns,
                    retained_bytes: e16_retained_bytes(&stats),
                    stats,
                },
                events,
            )
        };
        let (compiled, ev_cmp) = run(true);
        let (symbolic, ev_sym) = run(false);
        events_identical &= ev_cmp == ev_sym;
        assert_eq!(ev_cmp, ev_sym, "compiled / symbolic check events diverged");
        assert!(
            compiled.stats.templates_compiled >= 1,
            "the response workload must compile"
        );
        assert!(
            compiled.stats.automaton_insts as usize >= n,
            "every instantiation must bind to a template"
        );
        assert_eq!(
            symbolic.stats.templates_compiled, 0,
            "the ablation must stay symbolic"
        );
        let throughput_ratio = symbolic.ns_per_append / compiled.ns_per_append;
        let memory_ratio = symbolic.retained_bytes as f64 / compiled.retained_bytes as f64;
        t.row([
            n.to_string(),
            compiled.stats.templates_compiled.to_string(),
            compiled.stats.automaton_states.to_string(),
            fmt_duration(Duration::from_nanos(symbolic.ns_per_append as u64)),
            fmt_duration(Duration::from_nanos(compiled.ns_per_append as u64)),
            format!("{throughput_ratio:.1}x"),
            format!("{:.0}", symbolic.retained_bytes as f64 / n as f64),
            format!("{:.0}", compiled.retained_bytes as f64 / n as f64),
            format!("{memory_ratio:.1}x"),
        ]);
        rows.push(E16Row {
            insts: n,
            measured,
            compiled,
            symbolic,
            throughput_ratio,
            memory_ratio,
        });
    }
    t.print();
    let headline = rows.len() - 1;
    let h = &rows[headline];
    println!(
        "  headline ({} insts): {:.1}x append throughput, {:.1}x retained \
         memory, {} template(s) / {} state(s), compile time {}",
        h.insts,
        h.throughput_ratio,
        h.memory_ratio,
        h.compiled.stats.templates_compiled,
        h.compiled.stats.automaton_states,
        fmt_duration(h.compiled.stats.automaton_compile_time),
    );
    E16Result {
        rows,
        headline,
        events_identical,
    }
}

/// The E17 result (also the `BENCH_server.json` payload).
struct E17Result {
    sessions: usize,
    appends: usize,
    base: ticc_bench::server_load::LoadReport,
    group: ticc_bench::server_load::LoadReport,
    served: ticc_bench::server_load::LoadReport,
    /// Open-loop arrivals against the event-driven core: scheduled at
    /// a fixed rate, latency from the scheduled arrival (so queueing
    /// counts), plus the violating-append detection lag.
    open_loop: ticc_bench::server_load::OpenLoopReport,
    /// Group commit vs per-session fsync, aggregate appends/sec.
    speedup: f64,
}

/// E17: multi-tenant server throughput — many concurrent `WalFsync`
/// sessions with group commit (one fsync per commit window) vs the
/// per-session-WAL baseline (one fsync per append). A third
/// configuration drives the same group WAL through the real TCP
/// server, so wire + dispatch overhead is measured, not assumed.
///
/// Honest caveat (the E12 precedent, see `EXPERIMENTS.md` §E17): this
/// box has one CPU and a ~90µs virtio flush, and ext4's journal
/// already group-commits concurrent per-file `fdatasync`s, so the
/// baseline gets kernel-level batching for free while the single CPU
/// starves our commit windows. The ≥5× wall-clock win expected on
/// flush-bound storage cannot materialise here; the fsyncs-per-append
/// ratio and the median-latency column carry the comparison instead.
fn e17_server(smoke: bool, rate: Option<f64>) -> E17Result {
    use ticc_bench::server_load::{
        run_group_commit, run_per_session_fsync, run_served, run_served_open_loop, ServeMode,
    };
    let (sessions, appends) = if smoke { (8, 16) } else { (64, 32) };
    let rate = rate.unwrap_or(if smoke { 400.0 } else { 1000.0 });
    let opts = CheckOptions::builder()
        .durability(ticc_core::Durability::WalFsync)
        .build();
    let dir = std::env::temp_dir().join(format!("ticc-bench-e17-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let base = run_per_session_fsync(&dir, sessions, appends, opts);
    let group = run_group_commit(&dir, sessions, appends, opts);
    let served = run_served(&dir, sessions, appends, opts);
    let open_loop = run_served_open_loop(&dir, sessions, appends, rate, opts, ServeMode::Mux);
    let _ = std::fs::remove_dir_all(&dir);

    let mut t = Table::new(
        format!("E17: multi-tenant WalFsync appends ({sessions} sessions × {appends})"),
        "one fsync per window acknowledges every queued session \
         (single-CPU + journal-merged baseline: see the fsync and p50 \
         columns, not wall-clock — E12-style caveat)",
        &["config", "appends/s", "p50", "p99", "fsyncs", "speedup"],
    );
    for (label, r) in [
        ("per-session fsync", &base),
        ("group commit", &group),
        ("group commit (served)", &served),
    ] {
        let fsyncs = match &r.group {
            Some(g) => g.fsyncs.to_string(),
            None => (r.sessions * r.appends_per_session).to_string(),
        };
        t.row([
            label.to_owned(),
            format!("{:.0}", r.appends_per_sec),
            fmt_duration(r.p50),
            fmt_duration(r.p99),
            fsyncs,
            format!("{:.1}x", r.appends_per_sec / base.appends_per_sec),
        ]);
    }
    t.print();

    // The open-loop companion table: latency from the *scheduled*
    // arrival time (queueing counts against the server), p999
    // alongside the medians, and the violation-detection lag — the
    // round trip of an actually-violating append issued under load.
    let mut ol = Table::new(
        format!(
            "E17 (open loop): {} clients, {:.0} appends/s scheduled, mux core",
            open_loop.sessions, open_loop.target_rate
        ),
        "latency measured from each append's scheduled arrival — a \
         server behind schedule accrues backlog (no coordinated \
         omission); violation lag is submit-to-event on the wire",
        &[
            "target/s",
            "achieved/s",
            "p50",
            "p99",
            "p999",
            "violation lag",
        ],
    );
    ol.row([
        format!("{:.0}", open_loop.target_rate),
        format!("{:.0}", open_loop.achieved_rate),
        fmt_duration(open_loop.latency.p50),
        fmt_duration(open_loop.latency.p99),
        fmt_duration(open_loop.latency.p999),
        fmt_duration(open_loop.violation_lag),
    ]);
    ol.print();

    let speedup = group.appends_per_sec / base.appends_per_sec;
    E17Result {
        sessions,
        appends,
        base,
        group,
        served,
        open_loop,
        speedup,
    }
}

/// Renders the E17 comparison as a JSON object (also the
/// `BENCH_server.json` payload).
fn e17_json(e17: &E17Result) -> String {
    let config = |label: &str, r: &ticc_bench::server_load::LoadReport| -> String {
        let mut s = format!(
            "      {{\"label\": \"{label}\", \"appends_per_sec\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}",
            r.appends_per_sec,
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
        );
        match &r.group {
            Some(g) => s.push_str(&format!(
                ", \"fsyncs\": {}, \"windows\": {}, \"max_batch\": {}, \
                 \"batched_frames\": {}}}",
                g.fsyncs, g.windows, g.max_batch, g.batched_frames
            )),
            None => s.push_str(&format!(
                ", \"fsyncs\": {}}}",
                r.sessions * r.appends_per_session
            )),
        }
        s
    };
    let ol = &e17.open_loop;
    format!(
        "{{\n    \"sessions\": {},\n    \"appends_per_session\": {},\n    \
         \"configs\": [\n{},\n{},\n{}\n    ],\n    \
         \"speedup_group_vs_per_session\": {:.2},\n    \
         \"p50_latency_ratio_base_vs_group\": {:.2},\n    \
         \"open_loop\": {{\"mode\": \"mux\", \"target_rate\": {:.1}, \
         \"achieved_rate\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"p999_us\": {:.1}, \"violation_lag_us\": {:.1}}},\n    \
         \"note\": \"E12-style caveat: 1-CPU box with ~90us virtio \
         flush; ext4's journal merges the baseline's concurrent \
         per-file fdatasyncs while the lone CPU starves our commit \
         windows, so wall-clock favours the baseline here. The \
         device-independent comparison is fsyncs per acknowledged \
         append (baseline exactly 1.0) and the p50 append latency. \
         Open-loop latency is measured from each append's scheduled \
         arrival time, so queueing delay counts (no coordinated \
         omission).\"\n  }}",
        e17.sessions,
        e17.appends,
        config("per-session fsync", &e17.base),
        config("group commit", &e17.group),
        config("group commit (served)", &e17.served),
        e17.speedup,
        e17.base.p50.as_secs_f64() / e17.group.p50.as_secs_f64(),
        ol.target_rate,
        ol.achieved_rate,
        ol.latency.p50.as_secs_f64() * 1e6,
        ol.latency.p99.as_secs_f64() * 1e6,
        ol.latency.p999.as_secs_f64() * 1e6,
        ol.violation_lag.as_secs_f64() * 1e6,
    )
}

/// The E20 result (also the `BENCH_server_mux.json` payload).
struct E20Result {
    conns: usize,
    io_threads: usize,
    /// Idle-connection cost under the event-driven core.
    mux_idle: ticc_bench::server_load::IdleConnReport,
    /// Idle-connection cost under the legacy thread-per-conn core.
    legacy_idle: ticc_bench::server_load::IdleConnReport,
    /// Legacy resident bytes per idle connection over mux's (floored —
    /// see [`e20_server_mux`]).
    idle_rss_ratio: f64,
    parity_sessions: usize,
    parity_appends: usize,
    /// Closed-loop append run on the mux core, parity-sized.
    mux_parity: ticc_bench::server_load::LoadReport,
    /// The same run on the legacy core.
    legacy_parity: ticc_bench::server_load::LoadReport,
    /// Mux p99 over legacy p99 (≤1 means mux is no worse).
    p99_ratio: f64,
}

/// E20: the event-driven server core vs thread-per-connection.
///
/// Two device-independent claims: (a) idle connections are cheap — N
/// handshaken-then-silent sockets cost the mux pollfds and empty
/// buffers where the legacy core pays a parked thread (stack pages)
/// plus two 8 KiB stream buffers each, measured as `Threads:` and
/// `VmRSS:` deltas from `/proc/self/status`; (b) the economy is not
/// bought with tail latency — a closed-loop 8-session append run has
/// mux p99 no worse than legacy.
///
/// Honest caveat (the E12/E17 precedent): this box has one CPU, so the
/// parity run cannot show the mux overlapping I/O with checking — both
/// cores timeshare the same core and the poll/wake syscalls are fully
/// visible instead of hidden under parallel work. The idle-memory and
/// thread-count deltas are scheduling-independent and carry the
/// comparison; the parity run only has to not regress.
fn e20_server_mux(smoke: bool) -> E20Result {
    use ticc_bench::server_load::{run_idle_connections, run_served_with, ServeMode};
    let conns = if smoke { 64 } else { 512 };
    let io_threads = 4usize;
    // Mux first: its (small) allocations are measured against a fresh
    // heap rather than absorbed by memory the legacy run freed.
    let mux_idle = run_idle_connections(conns, io_threads, ServeMode::Mux);
    let legacy_idle = run_idle_connections(conns, io_threads, ServeMode::ThreadPerConn);
    // The mux side can legitimately measure zero RSS growth (pollfds
    // and Vec headers hide inside already-resident pages). Floor its
    // per-connection cost at 64 bytes — roughly one pollfd plus the
    // decoder/write-buffer headers — so the ratio stays finite and
    // conservative instead of dividing by zero.
    let idle_rss_ratio = legacy_idle.rss_per_conn_bytes / mux_idle.rss_per_conn_bytes.max(64.0);

    let (parity_sessions, parity_appends) = if smoke { (8, 16) } else { (8, 64) };
    let opts = CheckOptions::builder()
        .durability(ticc_core::Durability::WalFsync)
        .build();
    let dir = std::env::temp_dir().join(format!("ticc-bench-e20-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let legacy_parity = run_served_with(
        &dir,
        parity_sessions,
        parity_appends,
        opts,
        ServeMode::ThreadPerConn,
    );
    let mux_parity = run_served_with(&dir, parity_sessions, parity_appends, opts, ServeMode::Mux);
    let _ = std::fs::remove_dir_all(&dir);
    let p99_ratio = mux_parity.p99.as_secs_f64() / legacy_parity.p99.as_secs_f64();

    let mut t = Table::new(
        format!(
            "E20: idle-connection economy ({conns} handshaken idle conns, {io_threads} io threads)"
        ),
        "server-process deltas while the connections are up; every \
         socket re-pinged before shutdown to prove it is served, not \
         merely held",
        &["core", "threads Δ", "RSS Δ", "RSS/conn"],
    );
    for (label, r) in [("mux", &mux_idle), ("thread-per-conn", &legacy_idle)] {
        t.row([
            label.to_owned(),
            format!("{:+}", r.threads_delta),
            format!("{} KiB", r.rss_delta_kb),
            format!("{:.0} B", r.rss_per_conn_bytes),
        ]);
    }
    t.print();

    let mut p = Table::new(
        format!("E20: append-latency parity ({parity_sessions} sessions × {parity_appends}, closed loop)"),
        "the idle economy must not cost tail latency: mux p99 vs \
         legacy p99 on the same WalFsync group-commit workload \
         (1-CPU box: see the E12-style caveat in BENCH_server_mux.json)",
        &["core", "appends/s", "p50", "p99", "p999"],
    );
    for (label, r) in [("mux", &mux_parity), ("thread-per-conn", &legacy_parity)] {
        p.row([
            label.to_owned(),
            format!("{:.0}", r.appends_per_sec),
            fmt_duration(r.p50),
            fmt_duration(r.p99),
            fmt_duration(r.latency.p999),
        ]);
    }
    p.print();
    println!(
        "  idle RSS ratio (legacy/mux) = {idle_rss_ratio:.1}x, \
         p99 ratio (mux/legacy) = {p99_ratio:.2}x"
    );

    E20Result {
        conns,
        io_threads,
        mux_idle,
        legacy_idle,
        idle_rss_ratio,
        parity_sessions,
        parity_appends,
        mux_parity,
        legacy_parity,
        p99_ratio,
    }
}

/// Renders the E20 comparison as a JSON object (the
/// `BENCH_server_mux.json` payload).
fn e20_json(e20: &E20Result) -> String {
    let idle = |r: &ticc_bench::server_load::IdleConnReport| -> String {
        format!(
            "{{\"threads_delta\": {}, \"rss_delta_kb\": {}, \
             \"rss_per_conn_bytes\": {:.1}}}",
            r.threads_delta, r.rss_delta_kb, r.rss_per_conn_bytes
        )
    };
    let parity = |r: &ticc_bench::server_load::LoadReport| -> String {
        format!(
            "{{\"appends_per_sec\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}}}",
            r.appends_per_sec,
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.latency.p999.as_secs_f64() * 1e6,
        )
    };
    format!(
        "{{\n    \"conns\": {},\n    \"io_threads\": {},\n    \
         \"idle\": {{\"mux\": {}, \"thread_per_conn\": {}}},\n    \
         \"idle_rss_ratio_legacy_vs_mux\": {:.2},\n    \
         \"parity_sessions\": {},\n    \"parity_appends\": {},\n    \
         \"parity\": {{\"mux\": {}, \"thread_per_conn\": {}}},\n    \
         \"p99_ratio_mux_vs_legacy\": {:.3},\n    \
         \"note\": \"E12-style caveat: 1-CPU box, so the parity run \
         cannot show I/O overlapping constraint checking — poll/wake \
         syscalls are fully visible instead of hidden under parallel \
         work, and the target is only that mux p99 does not regress. \
         The idle-connection deltas (threads, VmRSS from \
         /proc/self/status, both cores measured in the same process \
         with identical raw-TcpStream clients) are \
         scheduling-independent: the legacy core pays a parked thread \
         plus two 8 KiB buffers per socket, the mux a pollfd plus \
         empty byte vectors. Mux RSS/conn is floored at 64 bytes \
         before the ratio so a zero-growth measurement stays \
         finite.\"\n  }}",
        e20.conns,
        e20.io_threads,
        idle(&e20.mux_idle),
        idle(&e20.legacy_idle),
        e20.idle_rss_ratio,
        e20.parity_sessions,
        e20.parity_appends,
        parity(&e20.mux_parity),
        parity(&e20.legacy_parity),
        e20.p99_ratio,
    )
}

/// One measured configuration of the E18 sweep.
struct E18Config {
    label: &'static str,
    threads: Threads,
    batch: usize,
    appends_per_sec: f64,
    /// Per-call latency (one `append_batch` call covers `batch` txs).
    latency: ticc_bench::latency::LatencySummary,
    stats: EngineStats,
}

/// The E18 result (also the `BENCH_worker_pool.json` payload).
struct E18Result {
    constraints: usize,
    domain: usize,
    measured: usize,
    configs: Vec<E18Config>,
    /// Pooled vs sequential sweep, both at batch size 1.
    pool_speedup: f64,
    /// Largest batch vs single appends on the pooled engine.
    batch_speedup: f64,
}

/// E18: the persistent worker pool and batched appends — many live
/// constraints swept per append, single appends vs `append_batch`
/// drains that pay one pool dispatch (and one commit window) for the
/// whole batch.
///
/// Honest caveat (the E12/E17 precedent): this box has one CPU, so the
/// pooled sweep cannot beat the sequential one on wall-clock — the
/// pool only adds scheduling overhead when every worker shares a core.
/// The ≥2× pooled-vs-sequential target is for multi-core runners; the
/// device-independent signals here are `pool workers`/`par phases`
/// (the pool really dispatched, exactly once per append or batch) and
/// the batch-vs-single speedup, which amortises dispatch overhead and
/// survives a single CPU.
fn e18_worker_pool(smoke: bool, threads: Threads) -> E18Result {
    let sc = order_schema();
    let nconstraints = 8usize;
    let domain = 8usize;
    let total = if smoke { 256 } else { 4096 };
    // The sweep needs a pooled configuration even under `--threads off`.
    let pooled = match threads {
        Threads::Off => Threads::Fixed(4),
        t => t,
    };
    let run = |threads: Threads,
               batch: usize|
     -> (f64, ticc_bench::latency::LatencySummary, EngineStats) {
        let opts = CheckOptions::builder().threads(threads).build();
        let mut e = ticc_core::Engine::new(sc.clone(), opts);
        for c in 0..nconstraints {
            e.add_constraint(format!("response-{c}"), response(&sc))
                .unwrap();
        }
        for tx in response_setup_txs(&sc, domain) {
            assert!(e.append(&tx).unwrap().is_empty());
        }
        let warmup = 2 * domain;
        for i in 0..warmup {
            assert!(e
                .append(&response_steady_tx(&sc, domain, i))
                .unwrap()
                .is_empty());
        }
        let end = warmup + total;
        let mut lat = Vec::with_capacity(total / batch + 1);
        let t0 = std::time::Instant::now();
        let mut i = warmup;
        while i < end {
            let hi = (i + batch).min(end);
            let txs: Vec<Transaction> = (i..hi)
                .map(|j| response_steady_tx(&sc, domain, j))
                .collect();
            let c0 = std::time::Instant::now();
            let events = e.append_batch(&txs).unwrap();
            lat.push(c0.elapsed());
            assert!(
                events.iter().all(Vec::is_empty),
                "steady churn never violates"
            );
            i = hi;
        }
        let elapsed = t0.elapsed();
        (
            total as f64 / elapsed.as_secs_f64(),
            ticc_bench::latency::summarize(lat),
            e.stats(),
        )
    };
    let spec: [(&'static str, Threads, usize); 4] = [
        ("sequential sweep", Threads::Off, 1),
        ("pooled sweep", pooled, 1),
        ("pooled + batch 8", pooled, 8),
        ("pooled + batch 32", pooled, 32),
    ];
    let mut configs = Vec::new();
    for (label, threads, batch) in spec {
        let (rate, latency, stats) = run(threads, batch);
        configs.push(E18Config {
            label,
            threads,
            batch,
            appends_per_sec: rate,
            latency,
            stats,
        });
    }
    let mut t = Table::new(
        format!(
            "E18: worker pool + batched appends ({nconstraints} response \
             constraints, |R_D| = {domain}, t = {total})"
        ),
        "one pool dispatch sweeps every live constraint; append_batch \
         drains pay it once per batch (single-CPU box: see the batch \
         speedup and dispatch counters, not pooled wall-clock — \
         E12-style caveat)",
        &[
            "config",
            "appends/s",
            "p50/call",
            "p99/call",
            "pool workers",
            "par phases",
            "speedup",
        ],
    );
    let baseline = configs[0].appends_per_sec;
    for c in &configs {
        t.row([
            c.label.to_owned(),
            format!("{:.0}", c.appends_per_sec),
            fmt_duration(c.latency.p50),
            fmt_duration(c.latency.p99),
            c.stats.pool_workers.to_string(),
            c.stats.par_phases.to_string(),
            format!("{:.2}x", c.appends_per_sec / baseline),
        ]);
    }
    t.print();
    E18Result {
        constraints: nconstraints,
        domain,
        measured: total,
        pool_speedup: configs[1].appends_per_sec / configs[0].appends_per_sec,
        batch_speedup: configs[3].appends_per_sec / configs[1].appends_per_sec,
        configs,
    }
}

/// Renders the E18 sweep as a JSON object (also the
/// `BENCH_worker_pool.json` payload).
fn e18_json(e18: &E18Result) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("    \"constraints\": {},\n", e18.constraints));
    s.push_str(&format!("    \"domain\": {},\n", e18.domain));
    s.push_str(&format!("    \"measured_appends\": {},\n", e18.measured));
    s.push_str("    \"configs\": [\n");
    for (i, c) in e18.configs.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"label\": \"{}\", \"threads\": \"{}\", \"batch\": {}, \
             \"appends_per_sec\": {:.1}, \"pool_workers\": {}, \
             \"par_phases\": {}, \"batches\": {}, \"latency\": {}}}",
            c.label,
            c.threads,
            c.batch,
            c.appends_per_sec,
            c.stats.pool_workers,
            c.stats.par_phases,
            c.stats.batches,
            c.latency.json(),
        ));
        s.push_str(if i + 1 < e18.configs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"speedup_pool_vs_sequential\": {:.2},\n",
        e18.pool_speedup
    ));
    s.push_str(&format!(
        "    \"speedup_batch_vs_single\": {:.2},\n",
        e18.batch_speedup
    ));
    s.push_str(
        "    \"note\": \"E12-style caveat: 1-CPU box, so the pooled sweep \
         pays scheduling overhead with no parallel speedup available; \
         the >=2x pooled-vs-sequential target applies to multi-core \
         runners. Device-independent signals: pool_workers/par_phases \
         (one dispatch per append or batch) and the batch-vs-single \
         speedup, which amortises dispatch cost.\"\n  }",
    );
    s
}

/// One E19 budget configuration.
struct E19Config {
    label: &'static str,
    appends_per_sec: f64,
    stats: EngineStats,
}

/// The E19 result (also the `BENCH_history_window.json` payload).
struct E19Result {
    domain: usize,
    history: usize,
    configs: Vec<E19Config>,
    /// Unbounded resident footprint / tightest-window resident
    /// footprint (the approx-bytes gauge) at t.
    memory_ratio: f64,
    /// Tightest-window append rate / unbounded append rate.
    throughput_ratio: f64,
    /// Recovery from the (truncated) checkpoint vs cold replay.
    restore: Duration,
    replay: Duration,
    recovery_speedup: f64,
    snapshot_bytes: u64,
}

/// E19: bounded-memory histories. The engine's results never depend on
/// the [`HistoryBudget`] (the residues are state-bounded — the same
/// Theorem 4.1 property E14 banks on), so a `Window(n)` run must hold
/// its resident footprint at O(n) while the unbounded twin's grows
/// O(t), at (near-)identical append throughput; and recovering from a
/// checkpoint that covers the truncated prefix must beat replaying the
/// whole history by orders of magnitude.
fn e19_bounded_history(smoke: bool) -> E19Result {
    use ticc_core::HistoryBudget;
    use ticc_fotl::parser::parse;
    let sc = order_schema();
    let domain = 6usize;
    let total = if smoke { 20_000 } else { 1_000_000 };
    let constraints: [(&str, &str); 3] = [
        ("cap-sub", "G !Sub(999)"),
        ("cap-fill", "G !Fill(999)"),
        ("excl", "forall x. G !(Sub(x) & Fill(x))"),
    ];

    // Throughput + footprint: in-memory engines (no WAL in the loop),
    // one per budget, over the same steady churn.
    let run = |budget: HistoryBudget| -> E19Config {
        let opts = CheckOptions::builder().history_budget(budget).build();
        let mut e = ticc_core::Engine::new(sc.clone(), opts);
        for (name, src) in constraints {
            e.add_constraint(name, parse(&sc, src).unwrap()).unwrap();
        }
        let t0 = std::time::Instant::now();
        for i in 0..total {
            let events = e.append(&steady_churn_tx(&sc, domain, i)).unwrap();
            debug_assert!(events.is_empty(), "steady churn never violates");
        }
        let elapsed = t0.elapsed();
        let label = match budget {
            HistoryBudget::Unbounded => "unbounded",
            HistoryBudget::Window(64) => "window(64)",
            HistoryBudget::Window(_) => "window(n)",
            HistoryBudget::Bytes(_) => "bytes(64KiB)",
        };
        E19Config {
            label,
            appends_per_sec: total as f64 / elapsed.as_secs_f64(),
            stats: e.stats(),
        }
    };
    let configs = vec![
        run(HistoryBudget::Unbounded),
        run(HistoryBudget::Window(64)),
        run(HistoryBudget::Bytes(64 << 10)),
    ];
    let memory_ratio = configs[0].stats.history.resident_bytes as f64
        / (configs[1].stats.history.resident_bytes as f64).max(1.0);
    let throughput_ratio = configs[1].appends_per_sec / configs[0].appends_per_sec;

    // Recovery: a store-backed Window(64) session that checkpoints 8
    // times (each checkpoint advances the horizon and unlocks the next
    // truncation), then reopens from the newest snapshot — against a
    // cold replay of all t transactions through a fresh checker.
    let path = std::env::temp_dir().join(format!("ticc-e19-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let opts = CheckOptions::builder()
        .history_budget(HistoryBudget::Window(64))
        .build();
    let (mut engine, _) = ticc_core::Engine::open(&path, sc.clone(), opts).unwrap();
    for (name, src) in constraints {
        engine
            .add_constraint(name, parse(&sc, src).unwrap())
            .unwrap();
    }
    let every = total / 8;
    for i in 0..total {
        engine.append(&steady_churn_tx(&sc, domain, i)).unwrap();
        if (i + 1) % every == 0 {
            engine.compact(&[]).unwrap();
        }
    }
    assert!(
        engine.history().base() > 0,
        "the store-backed run must actually truncate"
    );
    let snapshot_bytes = engine.store_stats().unwrap().last_snapshot_bytes;
    let ids: Vec<_> = engine.constraints().collect();
    let statuses: Vec<_> = ids.iter().map(|&id| engine.status(id)).collect();
    drop(engine);

    let restore = ticc_bench::time_best_of(if smoke { 5 } else { 3 }, || {
        let (e, report) = ticc_core::Engine::open(&path, sc.clone(), opts).unwrap();
        assert!(report.had_snapshot);
        assert_eq!(report.replayed_txs, 0);
        assert_eq!(e.history().len(), total);
        assert!(e.history().base() > 0, "restore rebuilds the tiered shape");
    });
    let replay = ticc_bench::time_best_of(1, || {
        let mut e = ticc_core::Engine::new(sc.clone(), CheckOptions::default());
        for (name, src) in constraints {
            e.add_constraint(name, parse(&sc, src).unwrap()).unwrap();
        }
        for i in 0..total {
            e.append(&steady_churn_tx(&sc, domain, i)).unwrap();
        }
        for (id, expected) in ids.iter().zip(&statuses) {
            assert_eq!(e.status(*id), *expected, "replay diverged");
        }
    });
    let recovery_speedup = replay.as_secs_f64() / restore.as_secs_f64();
    let _ = std::fs::remove_file(&path);

    let mut t = Table::new(
        format!("E19: bounded-memory histories (steady churn, |R_D| = {domain}, t = {total})"),
        "HistoryBudget changes where states live, never what the engine \
         says: O(window) resident footprint at unbounded-equivalent \
         throughput, recovery from the truncated checkpoint in \
         O(|snapshot|)",
        &[
            "budget",
            "appends/s",
            "resident states",
            "resident bytes",
            "spilled (distinct)",
            "truncations",
            "vs unbounded",
        ],
    );
    let baseline = configs[0].appends_per_sec;
    for c in &configs {
        let h = &c.stats.history;
        t.row([
            c.label.to_owned(),
            format!("{:.0}", c.appends_per_sec),
            h.resident_states.to_string(),
            h.resident_bytes.to_string(),
            format!("{} ({})", h.spilled_instants, h.spilled_distinct),
            h.truncations.to_string(),
            format!("{:.2}x", c.appends_per_sec / baseline),
        ]);
    }
    t.print();
    println!(
        "  resident footprint ratio (unbounded/window): {memory_ratio:.0}x; \
         recovery: restore {} vs cold replay {} ({recovery_speedup:.0}x); \
         snapshot {snapshot_bytes} bytes",
        fmt_duration(restore),
        fmt_duration(replay),
    );
    E19Result {
        domain,
        history: total,
        configs,
        memory_ratio,
        throughput_ratio,
        restore,
        replay,
        recovery_speedup,
        snapshot_bytes,
    }
}

/// Renders the E19 sweep as a JSON object (also the
/// `BENCH_history_window.json` payload).
fn e19_json(e19: &E19Result) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("    \"domain\": {},\n", e19.domain));
    s.push_str(&format!("    \"history\": {},\n", e19.history));
    s.push_str("    \"configs\": [\n");
    for (i, c) in e19.configs.iter().enumerate() {
        let h = &c.stats.history;
        s.push_str(&format!(
            "      {{\"label\": \"{}\", \"appends_per_sec\": {:.1}, \
             \"resident_states\": {}, \"resident_bytes\": {}, \
             \"spilled_instants\": {}, \"spilled_distinct\": {}, \
             \"spilled_bytes\": {}, \"truncations\": {}, \
             \"page_loads\": {}}}",
            c.label,
            c.appends_per_sec,
            h.resident_states,
            h.resident_bytes,
            h.spilled_instants,
            h.spilled_distinct,
            h.spilled_bytes,
            h.truncations,
            h.page_loads,
        ));
        s.push_str(if i + 1 < e19.configs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"memory_ratio_unbounded_vs_window\": {:.1},\n",
        e19.memory_ratio
    ));
    s.push_str(&format!(
        "    \"throughput_ratio_window_vs_unbounded\": {:.3},\n",
        e19.throughput_ratio
    ));
    s.push_str(&format!(
        "    \"restore_ns\": {},\n",
        e19.restore.as_nanos()
    ));
    s.push_str(&format!("    \"replay_ns\": {},\n", e19.replay.as_nanos()));
    s.push_str(&format!(
        "    \"recovery_speedup\": {:.1},\n",
        e19.recovery_speedup
    ));
    s.push_str(&format!(
        "    \"snapshot_bytes\": {}\n  }}",
        e19.snapshot_bytes
    ));
    s
}

/// Renders the E13 sweep as a JSON object.
fn e13_json(e13: &E13Result) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("    \"domain\": {},\n", e13.domain));
    s.push_str(&format!("    \"history\": {},\n", e13.history));
    s.push_str(&format!("    \"measured_appends\": {},\n", e13.measured));
    s.push_str("    \"configs\": [\n");
    for (i, c) in e13.configs.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"encoding\": \"{}\", \"transition_cache\": {}, \
             \"appends_per_sec\": {:.1}, \"transition_hits\": {}, \
             \"transition_misses\": {}, \"encode_patched_atoms\": {}}}{}\n",
            match c.encoding {
                Encoding::Rebuild => "rebuild",
                Encoding::Incremental => "incremental",
            },
            c.cache,
            c.appends_per_sec,
            c.stats.cache.transition_hits,
            c.stats.cache.transition_misses,
            c.stats.encode_patched_atoms,
            if i + 1 < e13.configs.len() { "," } else { "" },
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"speedup_hot_vs_rebuild\": {:.2}\n  }}",
        e13.speedup
    ));
    s
}

/// Renders the E15 sweep headline as a JSON object.
fn e15_json(e15: &E15Result) -> String {
    format!(
        "{{\"domain\": {}, \"k\": {}, \"states\": {}, \
         \"tuples_per_state\": {}, \"mappings\": {}, \
         \"inst_enumerated\": {}, \"inst_pruned\": {}, \
         \"inst_shared\": {}, \"ground_odometer_ms\": {:.3}, \
         \"ground_indexed_ms\": {:.3}, \"speedup_indexed_vs_odometer\": {:.2}, \
         \"events_identical\": {}}}",
        e15.domain,
        e15.k,
        e15.states,
        e15.per_state,
        e15.mappings,
        e15.inst_enumerated,
        e15.inst_pruned,
        e15.inst_shared,
        e15.ground_odometer.as_secs_f64() * 1e3,
        e15.ground_indexed.as_secs_f64() * 1e3,
        e15.speedup,
        e15.events_identical
    )
}

/// Renders the E16 sweep as a JSON object.
fn e16_json(e16: &E16Result) -> String {
    let mut s = String::from("{\n");
    s.push_str("    \"rows\": [\n");
    for (i, r) in e16.rows.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"insts\": {}, \"measured_appends\": {}, \
             \"compiled_ns_per_append\": {:.1}, \
             \"symbolic_ns_per_append\": {:.1}, \
             \"compiled_retained_bytes\": {}, \
             \"symbolic_retained_bytes\": {}, \
             \"templates_compiled\": {}, \"automaton_states\": {}, \
             \"automaton_insts\": {}, \"automaton_steps\": {}, \
             \"compile_time_ns\": {}, \"throughput_ratio\": {:.2}, \
             \"memory_ratio\": {:.2}}}{}\n",
            r.insts,
            r.measured,
            r.compiled.ns_per_append,
            r.symbolic.ns_per_append,
            r.compiled.retained_bytes,
            r.symbolic.retained_bytes,
            r.compiled.stats.templates_compiled,
            r.compiled.stats.automaton_states,
            r.compiled.stats.automaton_insts,
            r.compiled.stats.automaton_steps,
            r.compiled.stats.automaton_compile_time.as_nanos(),
            r.throughput_ratio,
            r.memory_ratio,
            if i + 1 < e16.rows.len() { "," } else { "" },
        ));
    }
    s.push_str("    ],\n");
    let h = &e16.rows[e16.headline];
    s.push_str(&format!(
        "    \"headline_insts\": {},\n    \
         \"headline_throughput_ratio\": {:.2},\n    \
         \"headline_memory_ratio\": {:.2},\n    \
         \"events_identical\": {}\n  }}",
        h.insts, h.throughput_ratio, h.memory_ratio, e16.events_identical
    ));
    s
}

/// The `--json` payload: every experiment section that ran, through the
/// shared [`ticc_bench::json`] envelope (one schema version across all
/// `BENCH_*.json` files). Format documented in `EXPERIMENTS.md`.
fn write_json(path: &str, h: &Headlines, threads: Threads) {
    let mut doc = ticc_bench::json::JsonDoc::new();
    if let Some(e13) = &h.e13 {
        doc.section("e13", e13_json(e13));
    }
    if let Some((t, ns)) = h.e1 {
        doc.section(
            "e1",
            format!("{{\"history_len\": {t}, \"ns_per_state\": {ns:.1}}}"),
        );
    }
    if let Some((instants, rate)) = h.e7 {
        doc.section(
            "e7",
            format!("{{\"instants\": {instants}, \"appends_per_sec\": {rate:.1}}}"),
        );
    }
    if let Some(e14) = &h.e14 {
        doc.section(
            "e14",
            format!(
                "{{\"history\": {}, \"snapshot_bytes\": {}, \
                 \"restore_ms\": {:.3}, \"replay_ms\": {:.3}, \
                 \"speedup_restore_vs_replay\": {:.2}}}",
                e14.history,
                e14.snapshot_bytes,
                e14.restore.as_secs_f64() * 1e3,
                e14.replay.as_secs_f64() * 1e3,
                e14.speedup
            ),
        );
    }
    if let Some(e15) = &h.e15 {
        doc.section("e15", e15_json(e15));
    }
    if let Some(e16) = &h.e16 {
        doc.section("e16", e16_json(e16));
    }
    if let Some(e19) = &h.e19 {
        doc.section("e19", e19_json(e19));
    }
    doc.section("threads", ticc_bench::json::string(&threads.to_string()));
    doc.section(
        "host",
        ticc_bench::json::host_section(&threads.to_string(), 1),
    );
    doc.write(path);
}

/// E10: the binary-counter family — a single state forces `2^n`
/// automaton exploration (Section 6's lower-bound shape).
fn e10_counter_family() {
    let mut t = Table::new(
        "E10: binary-counter family (single state D0, k = 0)",
        "Section 6: |R_D| cannot leave the exponent — |phi| grows \
         polynomially, the explored automaton ~2^n",
        &["bits", "|phi|", "sat?", "aut states", "time"],
    );
    for bits in 1..=8usize {
        let inst = counter_instance(bits, true);
        let mut out = None;
        let d = ticc_bench::time_best_of(1, || {
            out = Some(
                check_potential_satisfaction(
                    &inst.history,
                    &inst.constraint,
                    &CheckOptions::default(),
                )
                .unwrap(),
            );
        });
        let out = out.unwrap();
        t.row([
            bits.to_string(),
            inst.constraint.size().to_string(),
            out.potentially_satisfied.to_string(),
            out.stats.sat.states.to_string(),
            fmt_duration(d),
        ]);
        let _ = Duration::ZERO;
    }
    t.print();
}
