//! Latency order statistics shared by the throughput emitters.
//!
//! E17 (server load) and E18 (worker pool) both measure per-call
//! latencies across many worker threads; this module is the one
//! place that turns those samples into percentiles and a histogram,
//! so every `BENCH_*.json` payload reports them identically.

use std::time::Duration;

/// Order statistics plus a power-of-two histogram over a set of
/// measured latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples summarised.
    pub samples: usize,
    /// Median.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
    /// Largest sample.
    pub max: Duration,
    /// `histogram[i]` counts samples in `[2^i, 2^(i+1))` µs; bucket 0
    /// additionally holds everything below 1 µs. Trailing empty
    /// buckets are trimmed.
    pub histogram: Vec<u64>,
}

impl LatencySummary {
    /// The summary of an empty sample set: all zeros.
    pub fn empty() -> Self {
        Self {
            samples: 0,
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            p999: Duration::ZERO,
            max: Duration::ZERO,
            histogram: Vec::new(),
        }
    }

    /// Renders the summary as a JSON object (`*_us` fields carry
    /// microseconds, matching the other bench payloads).
    pub fn json(&self) -> String {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        let buckets: Vec<String> = self.histogram.iter().map(u64::to_string).collect();
        format!(
            "{{\"samples\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"p999_us\": {:.1}, \"max_us\": {:.1}, \"histogram_pow2_us\": [{}]}}",
            self.samples,
            us(self.p50),
            us(self.p99),
            us(self.p999),
            us(self.max),
            buckets.join(", ")
        )
    }
}

/// Summarises a sample set (consumed: the samples are sorted in
/// place). Percentiles use the nearest-rank method on the sorted
/// samples, so `p50` of one sample is that sample.
pub fn summarize(mut lat: Vec<Duration>) -> LatencySummary {
    if lat.is_empty() {
        return LatencySummary::empty();
    }
    lat.sort_unstable();
    let pct = |per_mille: usize| lat[(lat.len() * per_mille / 1000).min(lat.len() - 1)];
    let mut histogram = Vec::new();
    for &d in &lat {
        let bucket = 64 - (d.as_micros() as u64).leading_zeros() as usize;
        let bucket = bucket.saturating_sub(1);
        if histogram.len() <= bucket {
            histogram.resize(bucket + 1, 0);
        }
        histogram[bucket] += 1;
    }
    LatencySummary {
        samples: lat.len(),
        p50: pct(500),
        p99: pct(990),
        p999: pct(999),
        max: *lat.last().expect("non-empty"),
        histogram,
    }
}

/// The `(p50, p99)` pair — the shape the E17 load reports carry.
pub fn percentiles(lat: Vec<Duration>) -> (Duration, Duration) {
    let s = summarize(lat);
    (s.p50, s.p99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let lat: Vec<Duration> = (1..=1000).map(Duration::from_micros).collect();
        let s = summarize(lat);
        assert_eq!(s.samples, 1000);
        assert_eq!(s.p50, Duration::from_micros(501));
        assert_eq!(s.p99, Duration::from_micros(991));
        assert_eq!(s.p999, Duration::from_micros(1000));
        assert_eq!(s.max, Duration::from_micros(1000));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let lat = vec![
            Duration::from_nanos(500), // < 1µs → bucket 0
            Duration::from_micros(1),  // [1, 2) → bucket 0
            Duration::from_micros(3),  // [2, 4) → bucket 1
            Duration::from_micros(9),  // [8, 16) → bucket 3
        ];
        let s = summarize(lat);
        assert_eq!(s.histogram, vec![2, 1, 0, 1]);
        assert_eq!(s.histogram.iter().sum::<u64>(), s.samples as u64);
    }

    #[test]
    fn empty_and_singleton_sets_are_well_defined() {
        assert_eq!(summarize(Vec::new()), LatencySummary::empty());
        let s = summarize(vec![Duration::from_micros(7)]);
        assert_eq!(s.p50, Duration::from_micros(7));
        assert_eq!(s.p999, Duration::from_micros(7));
        let (p50, p99) = percentiles(vec![Duration::from_micros(7)]);
        assert_eq!(
            (p50, p99),
            (Duration::from_micros(7), Duration::from_micros(7))
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let j = summarize(vec![Duration::from_micros(2)]).json();
        assert!(j.starts_with("{\"samples\": 1, \"p50_us\": 2.0"), "{j}");
        assert!(j.contains("\"p999_us\": 2.0"), "{j}");
        assert!(j.ends_with("\"histogram_pow2_us\": [0, 1]}"), "{j}");
    }
}
