//! Finite relations.
//!
//! The interpretation of a predicate symbol in one database state: a
//! finite set of tuples over the universe. Backed by a `BTreeSet` so
//! iteration order is deterministic — determinism matters because the
//! grounding of Theorem 4.1 and the workload generators must be
//! reproducible run to run.

use crate::Value;
use std::collections::BTreeSet;

/// A finite relation of fixed arity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Vec<Value>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns whether it was newly added.
    ///
    /// # Panics
    /// Panics if the tuple length does not match the arity.
    pub fn insert(&mut self, tuple: Vec<Value>) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        self.tuples.insert(tuple)
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        self.tuples.remove(tuple)
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        tuple.len() == self.arity && self.tuples.contains(tuple)
    }

    /// Iterates over tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.tuples.iter().map(|t| t.as_slice())
    }

    /// All universe elements mentioned by some tuple, in order.
    pub fn active_values(&self) -> BTreeSet<Value> {
        self.tuples.iter().flatten().copied().collect()
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a [Value];
    type IntoIter = std::iter::Map<
        std::collections::btree_set::Iter<'a, Vec<Value>>,
        fn(&'a Vec<Value>) -> &'a [Value],
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter().map(|t| t.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![1, 2]));
        assert!(!r.insert(vec![1, 2]), "duplicate insert is a no-op");
        assert!(r.contains(&[1, 2]));
        assert!(!r.contains(&[2, 1]));
        assert!(!r.contains(&[1]), "wrong-arity lookup is false");
        assert_eq!(r.len(), 1);
        assert!(r.remove(&[1, 2]));
        assert!(!r.remove(&[1, 2]));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_insert() {
        let mut r = Relation::new(2);
        r.insert(vec![1]);
    }

    #[test]
    fn deterministic_iteration() {
        let mut r = Relation::new(1);
        for v in [5, 1, 3] {
            r.insert(vec![v]);
        }
        let order: Vec<Value> = r.iter().map(|t| t[0]).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn active_values_flattens() {
        let mut r = Relation::new(2);
        r.insert(vec![7, 2]);
        r.insert(vec![2, 9]);
        let v: Vec<Value> = r.active_values().into_iter().collect();
        assert_eq!(v, vec![2, 7, 9]);
    }
}
