//! Log-structured history storage.
//!
//! [`crate::History`] stores one full snapshot per instant — simple and
//! fast to read, but memory grows with `t × |state|`. For long-running
//! monitored databases, [`LogHistory`] stores the **transaction log**
//! plus periodic **checkpoints**: memory is `O(log + |state| · t /
//! checkpoint_every)`, reads of arbitrary instants reconstruct from the
//! nearest checkpoint, and the current state stays materialised for
//! O(1) access (which is all the incremental monitor needs — the
//! grounding only consumes `R_D`, maintained here incrementally, and the
//! newest state).

use crate::history::History;
use crate::schema::{ConstId, Schema};
use crate::state::State;
use crate::update::Transaction;
use crate::{TdbError, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A finite-time temporal database stored as a transaction log with
/// periodic checkpoints.
#[derive(Debug, Clone)]
pub struct LogHistory {
    schema: Arc<Schema>,
    consts: Vec<Value>,
    /// `log[t]` produced the state at instant `t` (from the state at
    /// `t-1`, or from the empty state for `t = 0`).
    log: Vec<Transaction>,
    /// Materialised states at selected instants (always contains the
    /// latest instant once non-empty).
    checkpoints: BTreeMap<usize, State>,
    checkpoint_every: usize,
    /// Every element ever present in some state, plus constants.
    relevant: BTreeSet<Value>,
}

impl LogHistory {
    /// An empty log-structured history; a checkpoint is kept every
    /// `checkpoint_every` instants (≥ 1; `1` checkpoints every state,
    /// making reads O(1) and memory equal to [`History`]).
    pub fn new(schema: Arc<Schema>, checkpoint_every: usize) -> Self {
        assert!(checkpoint_every >= 1, "checkpoint interval must be ≥ 1");
        let consts: Vec<Value> = (0..schema.const_count() as Value).collect();
        let relevant = consts.iter().copied().collect();
        Self {
            schema,
            consts,
            log: Vec::new(),
            checkpoints: BTreeMap::new(),
            checkpoint_every,
            relevant,
        }
    }

    /// Rebuilds a log history by replaying `txs` in order — the
    /// store-recovery bridge: a WAL is exactly such a transaction
    /// list, and replaying it through [`LogHistory::apply`] restores
    /// states, checkpoints, and `R_D` alike.
    pub fn from_transactions(
        schema: Arc<Schema>,
        consts: &[(ConstId, Value)],
        checkpoint_every: usize,
        txs: &[Transaction],
    ) -> Result<Self, TdbError> {
        let mut log = Self::new(schema, checkpoint_every);
        for &(c, v) in consts {
            log.set_constant(c, v);
        }
        for tx in txs {
            log.apply(tx)?;
        }
        Ok(log)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The transaction log, in application order (`log()[t]` produced
    /// the state at instant `t`).
    pub fn log(&self) -> &[Transaction] {
        &self.log
    }

    /// Overrides a constant's interpretation (before the first apply).
    pub fn set_constant(&mut self, c: ConstId, v: Value) {
        assert!(self.log.is_empty(), "constants are rigid");
        self.relevant.remove(&self.consts[c.index()]);
        self.consts[c.index()] = v;
        self.relevant.insert(v);
    }

    /// Number of instants.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if no transaction has been applied yet.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Applies a transaction, producing the next instant. Returns its
    /// index.
    pub fn apply(&mut self, tx: &Transaction) -> Result<usize, TdbError> {
        let mut next = match self.latest_checkpoint() {
            Some((_, s)) => s.clone(),
            None => State::empty(self.schema.clone()),
        };
        tx.apply_to(&mut next)?;
        let t = self.log.len();
        self.relevant.extend(next.active_domain());
        // The newest state is always checkpointed (O(1) reads of the
        // current state); the previous checkpoint is dropped again
        // unless it falls on the checkpoint grid.
        if t > 0 {
            let prev = t - 1;
            if !prev.is_multiple_of(self.checkpoint_every) {
                self.checkpoints.remove(&prev);
            }
        }
        self.checkpoints.insert(t, next);
        self.log.push(tx.clone());
        Ok(t)
    }

    fn latest_checkpoint(&self) -> Option<(usize, &State)> {
        self.checkpoints.iter().next_back().map(|(&t, s)| (t, s))
    }

    /// The current (latest) state, if any. O(1).
    pub fn last(&self) -> Option<&State> {
        self.latest_checkpoint().map(|(_, s)| s)
    }

    /// Reconstructs the state at instant `t` (from the nearest
    /// checkpoint at or before `t`, replaying at most
    /// `checkpoint_every - 1` log entries).
    ///
    /// # Panics
    /// Panics if `t >= len()`.
    pub fn state_at(&self, t: usize) -> State {
        assert!(t < self.log.len(), "instant out of range");
        let (start, mut state) = self
            .checkpoints
            .range(..=t)
            .next_back()
            .map(|(&c, s)| (c + 1, s.clone()))
            .unwrap_or_else(|| (0, State::empty(self.schema.clone())));
        for tx in &self.log[start..=t] {
            tx.apply_to(&mut state)
                .expect("log entries were validated on apply");
        }
        state
    }

    /// The set `R_D` of relevant elements, maintained incrementally.
    pub fn relevant(&self) -> &BTreeSet<Value> {
        &self.relevant
    }

    /// Number of materialised states currently held (the memory gauge:
    /// `≈ len / checkpoint_every + 1` instead of `len`).
    pub fn materialised_states(&self) -> usize {
        self.checkpoints.len()
    }

    /// Materialises the full snapshot-per-instant [`History`] (bridge to
    /// the batch checking APIs).
    pub fn to_history(&self) -> History {
        let mut h = History::new(self.schema.clone());
        for (c, &v) in self.consts.iter().enumerate() {
            h.set_constant(crate::schema::ConstId(c as u32), v);
        }
        for t in 0..self.len() {
            h.push_state(self.state_at(t));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Arc<Schema> {
        Schema::builder().pred("P", 1).pred("E", 2).build()
    }

    fn tx_p(ins: &[Value], del: &[Value], sc: &Schema) -> Transaction {
        let p = sc.pred("P").unwrap();
        let mut tx = Transaction::new();
        for &v in del {
            tx = tx.delete(p, vec![v]);
        }
        for &v in ins {
            tx = tx.insert(p, vec![v]);
        }
        tx
    }

    #[test]
    fn reconstruction_matches_snapshots() {
        let sc = schema();
        let mut log = LogHistory::new(sc.clone(), 4);
        let mut full = History::new(sc.clone());
        let steps = [
            tx_p(&[1], &[], &sc),
            tx_p(&[2], &[], &sc),
            tx_p(&[3], &[1], &sc),
            tx_p(&[], &[2], &sc),
            tx_p(&[4, 5], &[], &sc),
            tx_p(&[1], &[3], &sc),
            tx_p(&[], &[4], &sc),
        ];
        for tx in &steps {
            log.apply(tx).unwrap();
            full.apply(tx).unwrap();
        }
        assert_eq!(log.len(), full.len());
        for t in 0..full.len() {
            assert_eq!(&log.state_at(t), full.state(t), "instant {t}");
        }
        assert_eq!(log.last(), full.last());
        assert_eq!(log.relevant(), &full.relevant());
        assert_eq!(log.to_history(), full);
    }

    #[test]
    fn memory_stays_sublinear() {
        let sc = schema();
        let mut log = LogHistory::new(sc.clone(), 16);
        for i in 0..100u64 {
            log.apply(&tx_p(&[i % 7], &[(i + 3) % 7], &sc)).unwrap();
        }
        assert_eq!(log.len(), 100);
        // ~100/16 grid checkpoints + the newest state.
        assert!(
            log.materialised_states() <= 100 / 16 + 2,
            "got {}",
            log.materialised_states()
        );
    }

    #[test]
    fn checkpoint_every_one_keeps_all_states() {
        let sc = schema();
        let mut log = LogHistory::new(sc.clone(), 1);
        for i in 0..10u64 {
            log.apply(&tx_p(&[i], &[], &sc)).unwrap();
        }
        assert_eq!(log.materialised_states(), 10);
        assert!(log.state_at(5).holds(sc.pred("P").unwrap(), &[5]));
    }

    #[test]
    fn constants_participate_in_relevant() {
        let sc = Schema::builder().pred("P", 1).constant("c").build();
        let mut log = LogHistory::new(sc.clone(), 4);
        log.set_constant(sc.constant("c").unwrap(), 42);
        log.apply(&Transaction::new()).unwrap();
        assert!(log.relevant().contains(&42));
        let h = log.to_history();
        assert_eq!(h.const_value(sc.constant("c").unwrap()), 42);
    }

    #[test]
    fn relevant_includes_deleted_elements() {
        let sc = schema();
        let mut log = LogHistory::new(sc.clone(), 4);
        log.apply(&tx_p(&[9], &[], &sc)).unwrap();
        log.apply(&tx_p(&[], &[9], &sc)).unwrap();
        assert!(log.relevant().contains(&9), "9 appeared in a state");
        // But an insert-then-delete within ONE transaction never
        // materialises in any state, so it stays irrelevant (matching
        // `History::relevant`).
        let p = sc.pred("P").unwrap();
        let mut log2 = LogHistory::new(sc.clone(), 4);
        log2.apply(&Transaction::new().insert(p, vec![7]).delete(p, vec![7]))
            .unwrap();
        assert!(!log2.relevant().contains(&7));
    }

    #[test]
    #[should_panic(expected = "instant out of range")]
    fn out_of_range_read_panics() {
        let sc = schema();
        let log = LogHistory::new(sc, 4);
        let _ = log.state_at(0);
    }

    /// Checkpoint reconstruction vs the snapshot-per-instant oracle,
    /// across 120 randomized insert/delete streams and every
    /// checkpoint interval shape (every state, sparse grid, sparser
    /// than the run is long).
    #[test]
    fn randomized_reconstruction_matches_history_oracle() {
        use crate::rng::Rng;
        let sc = schema();
        let p = sc.pred("P").unwrap();
        let e = sc.pred("E").unwrap();
        for seed in 0..120u64 {
            let mut rng = Rng::seed_from_u64(0x10c5 ^ seed);
            let every = [1, 3, 7, 64][(seed % 4) as usize];
            let mut log = LogHistory::new(sc.clone(), every);
            let mut full = History::new(sc.clone());
            let mut present_p: Vec<Value> = Vec::new();
            let mut present_e: Vec<(Value, Value)> = Vec::new();
            let steps = rng.gen_range_usize(1..20);
            for _ in 0..steps {
                let mut tx = Transaction::new();
                present_p.retain(|&v| {
                    if rng.gen_bool(0.3) {
                        tx = std::mem::take(&mut tx).delete(p, vec![v]);
                        false
                    } else {
                        true
                    }
                });
                present_e.retain(|&(a, b)| {
                    if rng.gen_bool(0.3) {
                        tx = std::mem::take(&mut tx).delete(e, vec![a, b]);
                        false
                    } else {
                        true
                    }
                });
                for _ in 0..rng.gen_range_usize(0..4) {
                    let v = rng.gen_range(0..12);
                    tx = std::mem::take(&mut tx).insert(p, vec![v]);
                    if !present_p.contains(&v) {
                        present_p.push(v);
                    }
                }
                for _ in 0..rng.gen_range_usize(0..2) {
                    let (a, b) = (rng.gen_range(0..8), rng.gen_range(0..8));
                    tx = std::mem::take(&mut tx).insert(e, vec![a, b]);
                    if !present_e.contains(&(a, b)) {
                        present_e.push((a, b));
                    }
                }
                assert_eq!(log.apply(&tx).unwrap(), full.apply(&tx).unwrap());
            }
            // Every instant reconstructs; the current state is the
            // O(1) materialised one; R_D agrees; the bridge to the
            // batch API agrees wholesale.
            for t in 0..full.len() {
                assert_eq!(&log.state_at(t), full.state(t), "seed {seed} t={t}");
            }
            assert_eq!(log.last(), full.last(), "seed {seed}");
            assert_eq!(log.relevant(), &full.relevant(), "seed {seed}");
            assert_eq!(log.to_history(), full, "seed {seed}");
            // And a log rebuilt from its own transaction list (the
            // store-recovery path) is indistinguishable.
            let rebuilt = LogHistory::from_transactions(sc.clone(), &[], every, log.log()).unwrap();
            assert_eq!(rebuilt.last(), log.last(), "seed {seed}");
            assert_eq!(rebuilt.relevant(), log.relevant(), "seed {seed}");
            assert_eq!(rebuilt.to_history(), full, "seed {seed}");
        }
    }
}
