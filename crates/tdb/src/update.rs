//! Updates and transactions.
//!
//! The paper's framework checks constraints "after an update": a
//! transaction transforms the current state into the next one, and the
//! history grows by one state. A [`Transaction`] is an ordered list of
//! tuple insertions and deletions applied atomically by
//! [`crate::History::apply`].

use crate::schema::PredId;
use crate::state::State;
use crate::{TdbError, Value};

/// A single tuple-level update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert a tuple into a predicate.
    Insert(PredId, Vec<Value>),
    /// Delete a tuple from a predicate.
    Delete(PredId, Vec<Value>),
}

/// An ordered, atomically-applied list of updates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transaction {
    updates: Vec<Update>,
}

impl Transaction {
    /// An empty transaction (appends an unchanged snapshot).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an insertion.
    pub fn insert(mut self, p: PredId, tuple: Vec<Value>) -> Self {
        self.updates.push(Update::Insert(p, tuple));
        self
    }

    /// Adds a deletion.
    pub fn delete(mut self, p: PredId, tuple: Vec<Value>) -> Self {
        self.updates.push(Update::Delete(p, tuple));
        self
    }

    /// The update list, in application order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// True if the transaction contains no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Applies the updates in order to a state.
    pub fn apply_to(&self, state: &mut State) -> Result<(), TdbError> {
        for u in &self.updates {
            match u {
                Update::Insert(p, t) => {
                    state.insert(*p, t.clone())?;
                }
                Update::Delete(p, t) => {
                    state.delete(*p, t);
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<Update> for Transaction {
    fn from_iter<I: IntoIterator<Item = Update>>(iter: I) -> Self {
        Self {
            updates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn apply_in_order() {
        let sc = Schema::builder().pred("P", 1).build();
        let p = sc.pred("P").unwrap();
        let mut s = State::empty(sc);
        // Insert then delete the same tuple: net effect nothing.
        let tx = Transaction::new().insert(p, vec![1]).delete(p, vec![1]);
        tx.apply_to(&mut s).unwrap();
        assert!(!s.holds(p, &[1]));
        // Delete then insert: present.
        let tx2 = Transaction::new().delete(p, vec![2]).insert(p, vec![2]);
        tx2.apply_to(&mut s).unwrap();
        assert!(s.holds(p, &[2]));
    }

    #[test]
    fn arity_error_propagates() {
        let sc = Schema::builder().pred("P", 2).build();
        let p = sc.pred("P").unwrap();
        let mut s = State::empty(sc);
        let tx = Transaction::new().insert(p, vec![1]);
        assert!(tx.apply_to(&mut s).is_err());
    }

    #[test]
    fn from_iterator() {
        let sc = Schema::builder().pred("P", 1).build();
        let p = sc.pred("P").unwrap();
        let tx: Transaction = vec![Update::Insert(p, vec![1])].into_iter().collect();
        assert_eq!(tx.updates().len(), 1);
        assert!(!tx.is_empty());
        assert!(Transaction::new().is_empty());
    }
}
