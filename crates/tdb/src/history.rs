//! Finite-time temporal databases (histories).
//!
//! A history is the sequence `(D0, …, Dt)` of database states up to the
//! current instant, together with the rigid interpretation of the
//! constant symbols. Temporal integrity constraints are imposed on
//! histories; their semantics quantifies over infinite extensions
//! (potential satisfaction), which is what `ticc-core` decides.
//!
//! A history may be **truncated**: under a bounded memory budget the
//! engine drops the in-memory prefix `(D0, …, D_{base-1})` once a
//! checkpoint covers it, keeping only the resident suffix. Instant
//! indices stay *absolute* — [`History::len`] still counts from the
//! beginning of time, [`History::state`] still takes an absolute `t`
//! (and panics for spilled instants, which only the engine's pager
//! can serve) — so every caller keeps the paper's `(D0, …, Dt)`
//! arithmetic unchanged. The active domains of dropped states are
//! folded into a frozen set so `R_D` (Lemma 4.1) stays exact.

use crate::schema::{ConstId, Schema};
use crate::state::State;
use crate::update::Transaction;
use crate::{TdbError, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A finite-time temporal database `(D0, …, Dt)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    schema: Arc<Schema>,
    consts: Vec<Value>,
    /// Number of leading instants truncated away (0 = full history).
    base: usize,
    /// Active-domain elements of the truncated prefix, kept so
    /// [`History::relevant`] stays exact after truncation.
    frozen: BTreeSet<Value>,
    /// The resident suffix: `states[i]` is instant `base + i`.
    states: Vec<State>,
}

impl History {
    /// A history with zero states. Constant interpretations default to
    /// `0, 1, 2, …` in declaration order; override with
    /// [`History::set_constant`] before appending states.
    pub fn new(schema: Arc<Schema>) -> Self {
        let consts = (0..schema.const_count() as Value).collect();
        Self {
            schema,
            consts,
            base: 0,
            frozen: BTreeSet::new(),
            states: Vec::new(),
        }
    }

    /// Reassembles a (possibly truncated) history from parts — the
    /// snapshot-restore path. `states[i]` is instant `base + i`;
    /// `frozen` carries the active domains of the `base` truncated
    /// instants (ignored when `base == 0`).
    pub fn from_parts(
        schema: Arc<Schema>,
        consts: Vec<Value>,
        base: usize,
        frozen: BTreeSet<Value>,
        states: Vec<State>,
    ) -> History {
        assert_eq!(consts.len(), schema.const_count(), "one value per constant");
        assert!(
            states.iter().all(|s| Arc::ptr_eq(s.schema(), &schema)),
            "state schemas must match history schema"
        );
        let frozen = if base == 0 { BTreeSet::new() } else { frozen };
        History {
            schema,
            consts,
            base,
            frozen,
            states,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of states (the `t+1` of the paper when non-empty),
    /// *including* any truncated prefix.
    pub fn len(&self) -> usize {
        self.base + self.states.len()
    }

    /// True if no state has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First resident instant: states `t < base` have been truncated
    /// behind a checkpoint and live only in the engine's spill tier.
    pub fn base(&self) -> usize {
        self.base
    }

    /// True if a prefix has been truncated away.
    pub fn is_truncated(&self) -> bool {
        self.base > 0
    }

    /// The rigid constant interpretations, in declaration order.
    pub fn constants(&self) -> &[Value] {
        &self.consts
    }

    /// Active-domain elements of the truncated prefix (empty while
    /// `base == 0`).
    pub fn frozen(&self) -> &BTreeSet<Value> {
        &self.frozen
    }

    /// The state at (absolute) instant `t`.
    ///
    /// # Panics
    /// Panics if `t < base`: that instant was truncated and only the
    /// engine's spill tier can serve it.
    pub fn state(&self, t: usize) -> &State {
        assert!(
            t >= self.base,
            "instant {t} was truncated (history base is {}); \
             load it through the engine's spill tier",
            self.base
        );
        &self.states[t - self.base]
    }

    /// The resident states in temporal order: element `i` is instant
    /// `base + i` (so the full history when `base == 0`).
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Drops the first `k` resident states, folding their active
    /// domains into the frozen set and advancing `base`. The engine
    /// only does this once a checkpoint covers the dropped instants.
    ///
    /// # Panics
    /// Panics if `k` exceeds the resident suffix.
    pub fn truncate_prefix(&mut self, k: usize) {
        assert!(k <= self.states.len(), "cannot truncate beyond residency");
        for s in self.states.drain(..k) {
            self.frozen.extend(s.active_domain());
        }
        self.base += k;
    }

    /// The most recent state, if any.
    pub fn last(&self) -> Option<&State> {
        self.states.last()
    }

    /// The rigid interpretation of a constant symbol.
    pub fn const_value(&self, c: ConstId) -> Value {
        self.consts[c.index()]
    }

    /// Overrides a constant's interpretation. Only allowed before the
    /// first state is appended (constants are rigid).
    ///
    /// # Panics
    /// Panics if states already exist.
    pub fn set_constant(&mut self, c: ConstId, v: Value) {
        assert!(
            self.is_empty(),
            "constants are rigid: set them before appending states"
        );
        self.consts[c.index()] = v;
    }

    /// Appends an explicit state.
    ///
    /// # Panics
    /// Panics if the state's schema differs from the history's.
    pub fn push_state(&mut self, s: State) {
        assert!(
            Arc::ptr_eq(s.schema(), &self.schema),
            "state schema must match history schema"
        );
        self.states.push(s);
    }

    /// Appends an empty state.
    pub fn push_empty(&mut self) -> &mut State {
        self.states.push(State::empty(self.schema.clone()));
        self.states.last_mut().expect("just pushed")
    }

    /// Appends a state obtained by applying a transaction to the last
    /// state (or to the empty state if the history is empty). Returns
    /// the (absolute) index of the new state.
    pub fn apply(&mut self, tx: &Transaction) -> Result<usize, TdbError> {
        let mut next = match self.states.last() {
            Some(s) => s.clone(),
            None => State::empty(self.schema.clone()),
        };
        tx.apply_to(&mut next)?;
        self.states.push(next);
        Ok(self.len() - 1)
    }

    /// The set `R_D` of relevant elements (Lemma 4.1): interpretations of
    /// constants plus every element in the domain of some relation in
    /// some state — including states folded into the frozen set by
    /// truncation, so the answer is identical to the untruncated one.
    pub fn relevant(&self) -> BTreeSet<Value> {
        let mut out: BTreeSet<Value> = self.consts.iter().copied().collect();
        out.extend(self.frozen.iter().copied());
        for s in &self.states {
            out.extend(s.active_domain());
        }
        out
    }

    /// Restriction `D|A` to a subuniverse containing all constants
    /// (Section 4). Tuples mentioning elements outside `A` are dropped
    /// in every state.
    ///
    /// # Panics
    /// Panics if `A` does not contain every constant's interpretation,
    /// or if the history is truncated (materialize it first).
    pub fn restrict(&self, a: &BTreeSet<Value>) -> History {
        assert!(
            self.consts.iter().all(|c| a.contains(c)),
            "restriction set must contain all constants"
        );
        assert!(!self.is_truncated(), "restrict needs the full history");
        History {
            schema: self.schema.clone(),
            consts: self.consts.clone(),
            base: 0,
            frozen: BTreeSet::new(),
            states: self.states.iter().map(|s| s.restrict(a)).collect(),
        }
    }

    /// The prefix `(D0, …, Dn)` as a new history (`n + 1` states).
    ///
    /// # Panics
    /// Panics on a truncated history (materialize it first): a prefix
    /// that starts behind `base` cannot be cut from the suffix.
    pub fn prefix(&self, n_states: usize) -> History {
        assert!(!self.is_truncated(), "prefix needs the full history");
        History {
            schema: self.schema.clone(),
            consts: self.consts.clone(),
            base: 0,
            frozen: BTreeSet::new(),
            states: self.states[..n_states].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{Transaction, Update};

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .pred("Sub", 1)
            .pred("Fill", 1)
            .constant("vip")
            .build()
    }

    #[test]
    fn constants_default_and_override() {
        let sc = schema();
        let mut h = History::new(sc.clone());
        let vip = sc.constant("vip").unwrap();
        assert_eq!(h.const_value(vip), 0);
        h.set_constant(vip, 42);
        assert_eq!(h.const_value(vip), 42);
    }

    #[test]
    #[should_panic(expected = "constants are rigid")]
    fn constants_frozen_after_first_state() {
        let sc = schema();
        let mut h = History::new(sc.clone());
        h.push_empty();
        h.set_constant(sc.constant("vip").unwrap(), 7);
    }

    #[test]
    fn apply_builds_successive_snapshots() {
        let sc = schema();
        let sub = sc.pred("Sub").unwrap();
        let mut h = History::new(sc.clone());
        let t0 = Transaction::new().insert(sub, vec![1]);
        let t1 = Transaction::new().insert(sub, vec![2]).delete(sub, vec![1]);
        h.apply(&t0).unwrap();
        h.apply(&t1).unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.state(0).holds(sub, &[1]));
        assert!(!h.state(1).holds(sub, &[1]));
        assert!(h.state(1).holds(sub, &[2]));
    }

    #[test]
    fn relevant_includes_constants_and_all_states() {
        let sc = schema();
        let sub = sc.pred("Sub").unwrap();
        let mut h = History::new(sc.clone());
        h.set_constant(sc.constant("vip").unwrap(), 99);
        h.apply(&Transaction::new().insert(sub, vec![1])).unwrap();
        h.apply(&Transaction::new().delete(sub, vec![1])).unwrap();
        let r: Vec<Value> = h.relevant().into_iter().collect();
        // 1 stays relevant even after deletion (it appeared in D0).
        assert_eq!(r, vec![1, 99]);
    }

    #[test]
    fn restrict_and_prefix() {
        let sc = schema();
        let sub = sc.pred("Sub").unwrap();
        let mut h = History::new(sc.clone());
        h.apply(&Transaction::new().insert(sub, vec![1]).insert(sub, vec![5]))
            .unwrap();
        h.apply(&Transaction::new().insert(sub, vec![2])).unwrap();
        let a: BTreeSet<Value> = [0, 1, 2].into_iter().collect();
        let r = h.restrict(&a);
        assert!(r.state(0).holds(sub, &[1]));
        assert!(!r.state(0).holds(sub, &[5]));
        let p = h.prefix(1);
        assert_eq!(p.len(), 1);
        assert!(p.state(0).holds(sub, &[5]));
    }

    #[test]
    fn truncate_keeps_absolute_indices_and_relevance() {
        let sc = schema();
        let sub = sc.pred("Sub").unwrap();
        let mut h = History::new(sc.clone());
        for v in 1..=4 {
            h.apply(
                &Transaction::new()
                    .insert(sub, vec![v])
                    .delete(sub, vec![v - 1]),
            )
            .unwrap();
        }
        let full_relevant = h.relevant();
        assert_eq!(h.len(), 4);
        h.truncate_prefix(2);
        assert_eq!(h.base(), 2);
        assert!(h.is_truncated());
        assert_eq!(h.len(), 4, "len stays absolute");
        assert_eq!(h.states().len(), 2, "two resident states");
        assert!(h.state(2).holds(sub, &[3]), "absolute indexing");
        assert!(h.last().unwrap().holds(sub, &[4]));
        assert_eq!(h.relevant(), full_relevant, "frozen set keeps R_D exact");
        // Appends continue with absolute indices.
        assert_eq!(
            h.apply(&Transaction::new().insert(sub, vec![9])).unwrap(),
            4
        );
        assert_eq!(h.len(), 5);
        let rebuilt = History::from_parts(
            sc.clone(),
            h.constants().to_vec(),
            h.base(),
            h.frozen().clone(),
            h.states().to_vec(),
        );
        assert_eq!(rebuilt, h);
    }

    #[test]
    #[should_panic(expected = "was truncated")]
    fn truncated_instants_panic_on_direct_access() {
        let sc = schema();
        let sub = sc.pred("Sub").unwrap();
        let mut h = History::new(sc);
        h.apply(&Transaction::new().insert(sub, vec![1])).unwrap();
        h.apply(&Transaction::new().insert(sub, vec![2])).unwrap();
        h.truncate_prefix(1);
        let _ = h.state(0);
    }

    #[test]
    fn transaction_updates_list() {
        let sc = schema();
        let sub = sc.pred("Sub").unwrap();
        let tx = Transaction::new().insert(sub, vec![1]).delete(sub, vec![2]);
        assert_eq!(tx.updates().len(), 2);
        assert!(matches!(tx.updates()[0], Update::Insert(_, _)));
    }
}
