//! Reproducible workload generators.
//!
//! Two families, both seeded and deterministic:
//!
//! * [`random_history`] — arbitrary tuples over a schema, used for
//!   scaling experiments (E1/E2) where only `t`, `|R_D|` and arity
//!   matter;
//! * [`OrderWorkload`] — the paper's running example (Section 2): a
//!   stream of customer orders that are submitted once and filled in
//!   FIFO order, with optional injected violations of either constraint.

use crate::history::History;
use crate::rng::Rng;
use crate::schema::Schema;
use crate::state::State;
use crate::Value;
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration for [`random_history`].
#[derive(Debug, Clone)]
pub struct RandomHistoryCfg {
    /// Number of states `t+1`.
    pub states: usize,
    /// Values are drawn from `0..domain`.
    pub domain: Value,
    /// Tuples inserted per relation per state.
    pub tuples_per_relation: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a history of independent random states over `schema`.
pub fn random_history(schema: Arc<Schema>, cfg: &RandomHistoryCfg) -> History {
    assert!(cfg.domain > 0, "domain must be non-empty");
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut h = History::new(schema.clone());
    for _ in 0..cfg.states {
        let mut s = State::empty(schema.clone());
        for p in schema.preds() {
            let arity = schema.arity(p);
            for _ in 0..cfg.tuples_per_relation {
                let tuple: Vec<Value> = (0..arity).map(|_| rng.gen_range(0..cfg.domain)).collect();
                let _ = s.insert(p, tuple).expect("arity correct by construction");
            }
        }
        h.push_state(s);
    }
    h
}

/// A violation to inject into an [`OrderWorkload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderViolation {
    /// Submit an already-submitted order a second time, breaking
    /// `∀x □(Sub(x) ⇒ ○□¬Sub(x))`.
    DoubleSubmit,
    /// Fill a younger order before an older pending one, breaking the
    /// FIFO constraint.
    OutOfOrderFill,
}

/// Configuration for the customer-order workload of Section 2.
#[derive(Debug, Clone)]
pub struct OrderWorkload {
    /// Number of instants to generate.
    pub instants: usize,
    /// Probability a new order is submitted at each instant.
    pub submit_prob: f64,
    /// Probability the oldest pending order is filled at each instant.
    pub fill_prob: f64,
    /// Optional violation and the instant at which to inject it.
    pub violation: Option<(OrderViolation, usize)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrderWorkload {
    fn default() -> Self {
        Self {
            instants: 16,
            submit_prob: 0.6,
            fill_prob: 0.4,
            violation: None,
            seed: 0,
        }
    }
}

impl OrderWorkload {
    /// The order schema: monadic `Sub` and `Fill`.
    pub fn schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    /// Generates the history. `Sub(a)` holds at the instant order `a` is
    /// submitted, `Fill(a)` at the instant it is filled (event-style
    /// predicates, as in the paper's example).
    pub fn generate(&self) -> History {
        let schema = Self::schema();
        let sub = schema.pred("Sub").unwrap();
        let fill = schema.pred("Fill").unwrap();
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut h = History::new(schema.clone());
        let mut next_order: Value = 0;
        let mut pending: VecDeque<Value> = VecDeque::new();
        let mut submitted: Vec<Value> = Vec::new();

        for t in 0..self.instants {
            let mut s = State::empty(schema.clone());
            if rng.gen_bool(self.submit_prob) {
                s.insert(sub, vec![next_order]).unwrap();
                pending.push_back(next_order);
                submitted.push(next_order);
                next_order += 1;
            }
            if rng.gen_bool(self.fill_prob) {
                if let Some(oldest) = pending.pop_front() {
                    s.insert(fill, vec![oldest]).unwrap();
                }
            }
            match self.violation {
                Some((OrderViolation::DoubleSubmit, at)) if at == t => {
                    if let Some(&old) = submitted.first() {
                        s.insert(sub, vec![old]).unwrap();
                    }
                }
                // Fill the *youngest* pending order while an older one
                // is still pending.
                Some((OrderViolation::OutOfOrderFill, at)) if at == t && pending.len() >= 2 => {
                    let young = pending.pop_back().unwrap();
                    s.insert(fill, vec![young]).unwrap();
                }
                _ => {}
            }
            h.push_state(s);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_history_is_reproducible() {
        let sc = Schema::builder().pred("P", 2).build();
        let cfg = RandomHistoryCfg {
            states: 5,
            domain: 10,
            tuples_per_relation: 3,
            seed: 7,
        };
        let a = random_history(sc.clone(), &cfg);
        let b = random_history(sc, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // Duplicates possible, so ≤ 3 tuples per state.
        assert!(a.states().iter().all(|s| s.tuple_count() <= 3));
    }

    #[test]
    fn random_history_domain_respected() {
        let sc = Schema::builder().pred("P", 1).build();
        let cfg = RandomHistoryCfg {
            states: 10,
            domain: 4,
            tuples_per_relation: 8,
            seed: 1,
        };
        let h = random_history(sc, &cfg);
        assert!(h.relevant().iter().all(|&v| v < 4));
    }

    #[test]
    fn clean_order_workload_fills_fifo() {
        let w = OrderWorkload {
            instants: 40,
            submit_prob: 0.7,
            fill_prob: 0.5,
            violation: None,
            seed: 3,
        };
        let h = w.generate();
        let sc = h.schema().clone();
        let (sub, fill) = (sc.pred("Sub").unwrap(), sc.pred("Fill").unwrap());
        // Each order submitted at most once; fills in submission order.
        let mut subs = Vec::new();
        let mut fills = Vec::new();
        for s in h.states() {
            for t in s.relation(sub).iter() {
                assert!(!subs.contains(&t[0]), "order {} submitted twice", t[0]);
                subs.push(t[0]);
            }
            for t in s.relation(fill).iter() {
                fills.push(t[0]);
            }
        }
        let mut sorted = fills.clone();
        sorted.sort_unstable();
        assert_eq!(fills, sorted, "fills must be FIFO");
    }

    #[test]
    fn double_submit_injection() {
        let w = OrderWorkload {
            instants: 20,
            submit_prob: 1.0,
            fill_prob: 0.0,
            violation: Some((OrderViolation::DoubleSubmit, 10)),
            seed: 0,
        };
        let h = w.generate();
        let sub = h.schema().pred("Sub").unwrap();
        // Order 0 submitted at instant 0 and again at instant 10.
        assert!(h.state(0).holds(sub, &[0]));
        assert!(h.state(10).holds(sub, &[0]));
    }

    #[test]
    fn out_of_order_fill_injection() {
        let w = OrderWorkload {
            instants: 20,
            submit_prob: 1.0,
            fill_prob: 0.0,
            violation: Some((OrderViolation::OutOfOrderFill, 5)),
            seed: 0,
        };
        let h = w.generate();
        let fill = h.schema().pred("Fill").unwrap();
        // At instant 5 the youngest pending order is filled while older
        // ones are pending: some fill happens at 5, and it is not order 0.
        let filled: Vec<Value> = h.state(5).relation(fill).iter().map(|t| t[0]).collect();
        assert_eq!(filled.len(), 1);
        assert_ne!(filled[0], 0);
    }
}

/// A violation to inject into a [`SessionWorkload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionViolation {
    /// A user acts without ever logging in.
    ActWithoutLogin,
    /// A user acts after logging out (and before any new login).
    ActAfterLogout,
}

/// A login/activity/logout audit workload: the natural home for *past*
/// constraints such as `∀x □(Act(x) → (¬Logout(x)) S Login(x))`.
#[derive(Debug, Clone)]
pub struct SessionWorkload {
    /// Number of instants.
    pub instants: usize,
    /// Number of users cycling through sessions.
    pub users: u64,
    /// Probability an idle user logs in at an instant.
    pub login_prob: f64,
    /// Probability a logged-in user acts at an instant.
    pub act_prob: f64,
    /// Probability a logged-in user logs out at an instant.
    pub logout_prob: f64,
    /// Optional violation and the instant to inject it.
    pub violation: Option<(SessionViolation, usize)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SessionWorkload {
    fn default() -> Self {
        Self {
            instants: 16,
            users: 3,
            login_prob: 0.4,
            act_prob: 0.6,
            logout_prob: 0.3,
            violation: None,
            seed: 0,
        }
    }
}

impl SessionWorkload {
    /// The session schema: monadic `Login`, `Act`, `Logout`.
    pub fn schema() -> Arc<Schema> {
        Schema::builder()
            .pred("Login", 1)
            .pred("Act", 1)
            .pred("Logout", 1)
            .build()
    }

    /// Generates the history (event-style predicates).
    pub fn generate(&self) -> History {
        let schema = Self::schema();
        let login = schema.pred("Login").unwrap();
        let act = schema.pred("Act").unwrap();
        let logout = schema.pred("Logout").unwrap();
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut h = History::new(schema.clone());
        let mut logged_in = vec![false; self.users as usize];
        let mut ever_out = vec![false; self.users as usize];

        for t in 0..self.instants {
            let mut s = State::empty(schema.clone());
            for u in 0..self.users {
                let ui = u as usize;
                if logged_in[ui] {
                    // Acting and logging out are exclusive within one
                    // instant: under the paper's `since` semantics,
                    // `(¬Logout) S Login` already fails at the logout
                    // instant itself.
                    if rng.gen_bool(self.act_prob) {
                        s.insert(act, vec![u]).unwrap();
                    } else if rng.gen_bool(self.logout_prob) {
                        s.insert(logout, vec![u]).unwrap();
                        logged_in[ui] = false;
                        ever_out[ui] = true;
                    }
                } else if rng.gen_bool(self.login_prob) {
                    s.insert(login, vec![u]).unwrap();
                    logged_in[ui] = true;
                }
            }
            match self.violation {
                Some((SessionViolation::ActWithoutLogin, at)) if at == t => {
                    // A brand-new user id acts with no session at all.
                    s.insert(act, vec![self.users + 100]).unwrap();
                }
                Some((SessionViolation::ActAfterLogout, at)) if at == t => {
                    if let Some(u) = ever_out.iter().position(|&out| out).map(|ui| ui as Value) {
                        if !logged_in[u as usize] {
                            s.insert(act, vec![u]).unwrap();
                        }
                    }
                }
                _ => {}
            }
            h.push_state(s);
        }
        h
    }
}

#[cfg(test)]
mod session_tests {
    use super::*;

    #[test]
    fn clean_sessions_act_only_while_logged_in() {
        let h = SessionWorkload {
            instants: 30,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let sc = h.schema().clone();
        let (login, act, logout) = (
            sc.pred("Login").unwrap(),
            sc.pred("Act").unwrap(),
            sc.pred("Logout").unwrap(),
        );
        let mut open: std::collections::BTreeSet<Value> = Default::default();
        for s in h.states() {
            for t in s.relation(login).iter() {
                open.insert(t[0]);
            }
            for t in s.relation(act).iter() {
                assert!(open.contains(&t[0]), "act outside a session");
            }
            for t in s.relation(logout).iter() {
                open.remove(&t[0]);
            }
        }
    }

    #[test]
    fn violations_inject_as_described() {
        let h = SessionWorkload {
            instants: 10,
            violation: Some((SessionViolation::ActWithoutLogin, 4)),
            seed: 1,
            ..Default::default()
        }
        .generate();
        let act = h.schema().pred("Act").unwrap();
        assert!(h.state(4).holds(act, &[103]));
        // ActAfterLogout requires someone to have logged out first; with
        // enough instants that's near-certain for this seed.
        let h2 = SessionWorkload {
            instants: 20,
            violation: Some((SessionViolation::ActAfterLogout, 15)),
            seed: 2,
            ..Default::default()
        }
        .generate();
        assert!(!h2.state(15).relation(act).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let w = SessionWorkload::default();
        assert_eq!(w.generate(), w.generate());
    }
}
