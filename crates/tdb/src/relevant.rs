//! Relevant and irrelevant elements (Lemma 4.1).
//!
//! An element `m ∈ N` is *relevant* to a database `D` if it interprets a
//! constant symbol or occurs in some tuple of some state; otherwise it is
//! irrelevant. For a finite-time database, `R_D` is finite and its
//! complement `I_D` infinite — the fact Lemma 4.1 exploits to replace
//! arbitrary extensions by extensions that touch only `R_D`.

use crate::history::History;
use crate::Value;
use std::collections::BTreeSet;

/// Computes `R_D` for a history (alias of [`History::relevant`], exposed
/// as a free function for symmetry with the paper's notation).
pub fn relevant_elements(d: &History) -> BTreeSet<Value> {
    d.relevant()
}

/// Returns the first `k` elements of `I_D = N ∖ R_D` (fresh witnesses,
/// the `z1 … zk` of Theorem 4.1 when concrete values are needed, e.g. to
/// decode a propositional witness back into database states).
pub fn fresh_elements(d: &History, k: usize) -> Vec<Value> {
    let relevant = d.relevant();
    let mut out = Vec::with_capacity(k);
    let mut candidate: Value = 0;
    while out.len() < k {
        if !relevant.contains(&candidate) {
            out.push(candidate);
        }
        candidate = candidate
            .checked_add(1)
            .expect("universe exhausted (impossible for u64)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::update::Transaction;

    #[test]
    fn fresh_elements_avoid_relevant() {
        let sc = Schema::builder().pred("P", 1).constant("c").build();
        let p = sc.pred("P").unwrap();
        let mut h = History::new(sc.clone());
        h.set_constant(sc.constant("c").unwrap(), 1);
        h.apply(&Transaction::new().insert(p, vec![0]).insert(p, vec![3]))
            .unwrap();
        let r: Vec<Value> = relevant_elements(&h).into_iter().collect();
        assert_eq!(r, vec![0, 1, 3]);
        let fresh = fresh_elements(&h, 3);
        assert_eq!(fresh, vec![2, 4, 5]);
    }

    #[test]
    fn empty_history_relevant_is_constants_only() {
        let sc = Schema::builder().pred("P", 1).constant("c").build();
        let h = History::new(sc);
        let r: Vec<Value> = relevant_elements(&h).into_iter().collect();
        assert_eq!(r, vec![0]);
        assert_eq!(fresh_elements(&h, 2), vec![1, 2]);
    }
}
