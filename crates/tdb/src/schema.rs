//! Vocabularies: predicate and constant symbols.
//!
//! The paper's vocabulary is a finite set of predicate symbols (each with
//! an arity ≥ 1) and a finite set of constant symbols. Equality and the
//! extended-vocabulary symbols (`≤`, `succ`, `Zero`) are *not* database
//! predicates (they denote infinite, rigid relations) and therefore do
//! not appear in a [`Schema`]; they are handled at the logic layer.

use std::sync::Arc;

/// Identifier of a predicate symbol within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a constant symbol within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(pub u32);

impl ConstId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PredDecl {
    name: String,
    arity: usize,
}

/// A finite vocabulary of predicate and constant symbols.
///
/// Schemas are immutable once built (via [`SchemaBuilder`]) and cheaply
/// shared behind [`Arc`] by every state of a history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    preds: Vec<PredDecl>,
    consts: Vec<String>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of predicate symbols.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// Number of constant symbols.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// Name of a predicate.
    pub fn pred_name(&self, p: PredId) -> &str {
        &self.preds[p.index()].name
    }

    /// Declared arity of a predicate.
    pub fn arity(&self, p: PredId) -> usize {
        self.preds[p.index()].arity
    }

    /// Maximum arity over all predicates (the `l` of Theorem 4.2); 0 for
    /// an empty schema.
    pub fn max_arity(&self) -> usize {
        self.preds.iter().map(|p| p.arity).max().unwrap_or(0)
    }

    /// Name of a constant symbol.
    pub fn const_name(&self, c: ConstId) -> &str {
        &self.consts[c.index()]
    }

    /// Looks up a predicate by name.
    pub fn pred(&self, name: &str) -> Option<PredId> {
        self.preds
            .iter()
            .position(|p| p.name == name)
            .map(|i| PredId(i as u32))
    }

    /// Looks up a constant by name.
    pub fn constant(&self, name: &str) -> Option<ConstId> {
        self.consts
            .iter()
            .position(|c| c == name)
            .map(|i| ConstId(i as u32))
    }

    /// Iterates over all predicate ids.
    pub fn preds(&self) -> impl Iterator<Item = PredId> {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// Iterates over all constant ids.
    pub fn consts(&self) -> impl Iterator<Item = ConstId> {
        (0..self.consts.len() as u32).map(ConstId)
    }
}

/// Builder for [`Schema`]. Symbol names must be unique across predicates
/// and constants.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Declares a predicate symbol with the given arity (≥ 1, per the
    /// paper's convention).
    ///
    /// # Panics
    /// Panics on duplicate names or zero arity.
    pub fn pred(mut self, name: &str, arity: usize) -> Self {
        assert!(arity >= 1, "predicate arity must be at least 1");
        assert!(
            self.schema.pred(name).is_none() && self.schema.constant(name).is_none(),
            "duplicate symbol {name}"
        );
        self.schema.preds.push(PredDecl {
            name: name.to_owned(),
            arity,
        });
        self
    }

    /// Declares a constant symbol.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn constant(mut self, name: &str) -> Self {
        assert!(
            self.schema.pred(name).is_none() && self.schema.constant(name).is_none(),
            "duplicate symbol {name}"
        );
        self.schema.consts.push(name.to_owned());
        self
    }

    /// Finishes the schema.
    pub fn build(self) -> Arc<Schema> {
        Arc::new(self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::builder()
            .pred("Sub", 1)
            .pred("Fill", 1)
            .pred("Edge", 2)
            .constant("root")
            .build();
        assert_eq!(s.pred_count(), 3);
        assert_eq!(s.const_count(), 1);
        let sub = s.pred("Sub").unwrap();
        assert_eq!(s.pred_name(sub), "Sub");
        assert_eq!(s.arity(sub), 1);
        assert_eq!(s.max_arity(), 2);
        assert!(s.pred("Nope").is_none());
        assert_eq!(s.constant("root"), Some(ConstId(0)));
        assert_eq!(s.preds().count(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_names_rejected() {
        let _ = Schema::builder().pred("P", 1).constant("P");
    }

    #[test]
    #[should_panic(expected = "arity must be at least 1")]
    fn zero_arity_rejected() {
        let _ = Schema::builder().pred("P", 0);
    }

    #[test]
    fn empty_schema_max_arity() {
        let s = Schema::builder().build();
        assert_eq!(s.max_arity(), 0);
    }
}
