//! Database states.
//!
//! A database state is a first-order structure: one finite relation per
//! predicate symbol of the schema. The universe is implicit (all of `N`);
//! constants live on the [`crate::History`], since their interpretation
//! is rigid across states.

use crate::relation::Relation;
use crate::schema::{PredId, Schema};
use crate::{TdbError, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One database state: an interpretation of every predicate symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    schema: Arc<Schema>,
    relations: Vec<Relation>,
}

impl State {
    /// An empty state (all relations empty) over a schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let relations = schema
            .preds()
            .map(|p| Relation::new(schema.arity(p)))
            .collect();
        Self { schema, relations }
    }

    /// The schema this state conforms to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The relation interpreting a predicate.
    pub fn relation(&self, p: PredId) -> &Relation {
        &self.relations[p.index()]
    }

    /// Whether `p` is true about `tuple` in this state.
    pub fn holds(&self, p: PredId, tuple: &[Value]) -> bool {
        self.relations[p.index()].contains(tuple)
    }

    /// Inserts a tuple; checks arity against the schema.
    pub fn insert(&mut self, p: PredId, tuple: Vec<Value>) -> Result<bool, TdbError> {
        let expected = self.schema.arity(p);
        if tuple.len() != expected {
            return Err(TdbError::ArityMismatch {
                pred: self.schema.pred_name(p).to_owned(),
                expected,
                got: tuple.len(),
            });
        }
        Ok(self.relations[p.index()].insert(tuple))
    }

    /// Deletes a tuple; returns whether it was present.
    pub fn delete(&mut self, p: PredId, tuple: &[Value]) -> bool {
        self.relations[p.index()].remove(tuple)
    }

    /// Convenience: inserts into a predicate looked up by name.
    pub fn insert_named(&mut self, pred: &str, tuple: Vec<Value>) -> Result<bool, TdbError> {
        let p = self
            .schema
            .pred(pred)
            .ok_or_else(|| TdbError::UnknownSymbol(pred.to_owned()))?;
        self.insert(p, tuple)
    }

    /// The active domain of this single state: every element mentioned in
    /// some tuple.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for r in &self.relations {
            out.extend(r.active_values());
        }
        out
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Restricts the state to a subuniverse `A`: keeps only tuples whose
    /// values all lie in `A` (the `D|A` of Section 4).
    pub fn restrict(&self, a: &BTreeSet<Value>) -> State {
        let mut out = self.clone();
        for (p, rel) in out.relations.iter_mut().enumerate() {
            let keep: Vec<Vec<Value>> = self.relations[p]
                .iter()
                .filter(|t| t.iter().all(|v| a.contains(v)))
                .map(|t| t.to_vec())
                .collect();
            rel.clear();
            for t in keep {
                rel.insert(t);
            }
        }
        out
    }

    /// Renders the state as `{P(1), Q(2,3), …}` in deterministic order.
    pub fn display(&self) -> String {
        let mut parts = Vec::new();
        for p in self.schema.preds() {
            for t in self.relation(p).iter() {
                let args: Vec<String> = t.iter().map(|v| v.to_string()).collect();
                parts.push(format!("{}({})", self.schema.pred_name(p), args.join(",")));
            }
        }
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::builder().pred("P", 1).pred("E", 2).build()
    }

    #[test]
    fn empty_state_has_empty_relations() {
        let s = State::empty(schema());
        assert_eq!(s.tuple_count(), 0);
        assert!(s.active_domain().is_empty());
    }

    #[test]
    fn insert_and_holds() {
        let sc = schema();
        let mut s = State::empty(sc.clone());
        let p = sc.pred("P").unwrap();
        let e = sc.pred("E").unwrap();
        s.insert(p, vec![3]).unwrap();
        s.insert(e, vec![3, 4]).unwrap();
        assert!(s.holds(p, &[3]));
        assert!(!s.holds(p, &[4]));
        assert!(s.holds(e, &[3, 4]));
        let dom: Vec<Value> = s.active_domain().into_iter().collect();
        assert_eq!(dom, vec![3, 4]);
    }

    #[test]
    fn arity_error_reported() {
        let sc = schema();
        let mut s = State::empty(sc.clone());
        let p = sc.pred("P").unwrap();
        let err = s.insert(p, vec![1, 2]).unwrap_err();
        assert!(matches!(
            err,
            TdbError::ArityMismatch {
                expected: 1,
                got: 2,
                ..
            }
        ));
    }

    #[test]
    fn restrict_drops_outside_tuples() {
        let sc = schema();
        let mut s = State::empty(sc.clone());
        let e = sc.pred("E").unwrap();
        s.insert(e, vec![1, 2]).unwrap();
        s.insert(e, vec![1, 9]).unwrap();
        let a: BTreeSet<Value> = [1, 2].into_iter().collect();
        let r = s.restrict(&a);
        assert!(r.holds(e, &[1, 2]));
        assert!(!r.holds(e, &[1, 9]));
    }

    #[test]
    fn display_is_deterministic() {
        let sc = schema();
        let mut s = State::empty(sc.clone());
        s.insert_named("P", vec![2]).unwrap();
        s.insert_named("P", vec![1]).unwrap();
        assert_eq!(s.display(), "{P(1), P(2)}");
        assert!(s.insert_named("Q", vec![1]).is_err());
    }
}
