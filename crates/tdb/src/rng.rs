//! A small deterministic PRNG with no external dependencies.
//!
//! Workload generation and randomized tests must be reproducible and
//! must build offline, so instead of the `rand` crate the repo carries
//! its own generator: xoshiro256** (Blackman & Vigna) seeded through
//! splitmix64, the standard pairing — splitmix64 decorrelates
//! low-entropy seeds (0, 1, 2, …) before they reach the xoshiro state.
//!
//! The API mirrors the subset of `rand` the repo uses (`seed_from_u64`,
//! `gen_range`, `gen_bool`), so call sites read the same.

/// The splitmix64 step: advances `state` and returns the next output.
///
/// Public because it doubles as the repo's canonical cheap mixer: the
/// engine's transition cache fingerprints support-restricted
/// propositional states by folding atom ids through this function.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xoshiro256** generator. `Clone` gives cheap stream forking;
/// equality compares states (useful in determinism tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state from one `u64` via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[range.start, range.end)` (widening-multiply
    /// range reduction; the bias over 64-bit outputs is negligible).
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.checked_sub(range.start).expect("empty range");
        assert!(span > 0, "gen_range over an empty range");
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`. Exact at the endpoints: `p = 0.0`
    /// never fires, `p = 1.0` always does.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_respected() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
        // Small ranges hit every value.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_endpoints_exact() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn bool_roughly_fair() {
        let mut r = Rng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
