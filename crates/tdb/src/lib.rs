//! Temporal database substrate.
//!
//! Implements the data model of Section 2 of Chomicki & Niwiński (PODS
//! 1993): a *temporal database* is a sequence of first-order structures
//! (database states) over a fixed vocabulary, sharing one countably
//! infinite universe (here `N`, represented by [`Value`]). Constants are
//! rigid (same interpretation in every state); each predicate is
//! interpreted by a **finite** relation that may change from state to
//! state.
//!
//! The crate provides:
//! * schemas (predicate and constant symbols) — [`schema`],
//! * finite relations and database states — [`relation`], [`state`],
//! * finite-time histories with an append/transaction API — [`history`],
//!   [`update`] — and a log-structured alternative with periodic
//!   checkpoints for long-running monitored databases — [`log`],
//! * the set `R_D` of *relevant* elements from Lemma 4.1 and restriction
//!   to a subuniverse — [`relevant`],
//! * reproducible workload generators used by the examples and the
//!   benchmark harness — [`workload`] — driven by an in-repo
//!   deterministic PRNG — [`rng`].

pub mod history;
pub mod log;
pub mod relation;
pub mod relevant;
pub mod rng;
pub mod schema;
pub mod state;
pub mod update;
pub mod workload;

pub use history::History;
pub use log::LogHistory;
pub use relation::Relation;
pub use relevant::relevant_elements;
pub use schema::{ConstId, PredId, Schema, SchemaBuilder};
pub use state::State;
pub use update::{Transaction, Update};

/// An element of the database universe (the natural numbers).
pub type Value = u64;

/// Errors raised by the substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdbError {
    /// A tuple's length does not match the predicate's declared arity.
    ArityMismatch {
        /// The predicate involved.
        pred: String,
        /// Declared arity.
        expected: usize,
        /// Tuple length supplied.
        got: usize,
    },
    /// A predicate or constant name was not found in the schema.
    UnknownSymbol(String),
}

impl std::fmt::Display for TdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdbError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for {pred}: expected {expected}, got {got}"
            ),
            TdbError::UnknownSymbol(s) => write!(f, "unknown symbol {s}"),
        }
    }
}

impl std::error::Error for TdbError {}
