//! Deterministic randomized tests for the temporal database substrate —
//! the live, always-on counterpart of the gated `properties.rs` suite,
//! driven by the in-repo xoshiro PRNG with fixed seeds.

use std::collections::BTreeSet;
use std::sync::Arc;
use ticc_tdb::rng::Rng;
use ticc_tdb::{History, LogHistory, Schema, State, Transaction, Value};

fn schema() -> Arc<Schema> {
    Schema::builder().pred("P", 1).pred("E", 2).build()
}

type Spec = Vec<(Vec<Value>, Vec<(Value, Value)>)>;

fn gen_spec(rng: &mut Rng) -> Spec {
    let len = rng.gen_range_usize(1..5);
    (0..len)
        .map(|_| {
            let ps = (0..rng.gen_range_usize(0..4))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let es = (0..rng.gen_range_usize(0..4))
                .map(|_| (rng.gen_range(0..6), rng.gen_range(0..6)))
                .collect();
            (ps, es)
        })
        .collect()
}

fn gen_keep(rng: &mut Rng) -> BTreeSet<Value> {
    (0..rng.gen_range_usize(0..6))
        .map(|_| rng.gen_range(0..6))
        .collect()
}

fn build(sc: &Arc<Schema>, spec: &Spec) -> History {
    let mut h = History::new(sc.clone());
    for (ps, es) in spec {
        let mut s = State::empty(sc.clone());
        for &v in ps {
            s.insert_named("P", vec![v]).unwrap();
        }
        for &(a, b) in es {
            s.insert_named("E", vec![a, b]).unwrap();
        }
        h.push_state(s);
    }
    h
}

#[test]
fn relevant_is_union_of_state_domains() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..200 {
        let sc = schema();
        let h = build(&sc, &gen_spec(&mut rng));
        let mut expected = BTreeSet::new();
        for s in h.states() {
            expected.extend(s.active_domain());
        }
        assert_eq!(h.relevant(), expected);
    }
}

#[test]
fn restriction_keeps_only_inside_tuples_and_is_idempotent() {
    let mut rng = Rng::seed_from_u64(12);
    for _ in 0..200 {
        let sc = schema();
        let h = build(&sc, &gen_spec(&mut rng));
        let keep = gen_keep(&mut rng);
        let r = h.restrict(&keep);
        assert!(r.relevant().is_subset(&keep));
        // Tuples fully inside `keep` survive; others are gone.
        for (t, s) in h.states().iter().enumerate() {
            for p in sc.preds() {
                for tuple in s.relation(p).iter() {
                    let inside = tuple.iter().all(|v| keep.contains(v));
                    assert_eq!(r.state(t).holds(p, tuple), inside);
                }
            }
        }
        assert_eq!(r.restrict(&keep), r, "restriction must be idempotent");
    }
}

#[test]
fn prefix_then_relevant_shrinks() {
    let mut rng = Rng::seed_from_u64(13);
    for _ in 0..200 {
        let sc = schema();
        let h = build(&sc, &gen_spec(&mut rng));
        let mut prev = BTreeSet::new();
        for n in 1..=h.len() {
            let r = h.prefix(n).relevant();
            assert!(prev.is_subset(&r), "relevant sets grow with the prefix");
            prev = r;
        }
        assert_eq!(prev, h.relevant());
    }
}

#[test]
fn transactions_replay_histories() {
    let mut rng = Rng::seed_from_u64(14);
    for _ in 0..200 {
        // Any history can be reconstructed by delete-all/insert-all
        // transactions, and the apply path agrees with push_state.
        let sc = schema();
        let h = build(&sc, &gen_spec(&mut rng));
        let mut replayed = History::new(sc.clone());
        for (i, s) in h.states().iter().enumerate() {
            let mut tx = Transaction::new();
            if i > 0 {
                for p in sc.preds() {
                    for tuple in h.state(i - 1).relation(p).iter() {
                        tx = tx.delete(p, tuple.to_vec());
                    }
                }
            }
            for p in sc.preds() {
                for tuple in s.relation(p).iter() {
                    tx = tx.insert(p, tuple.to_vec());
                }
            }
            replayed.apply(&tx).unwrap();
        }
        assert_eq!(replayed, h);
    }
}

#[test]
fn log_history_equals_snapshot_history() {
    let mut rng = Rng::seed_from_u64(15);
    for _ in 0..150 {
        let sc = schema();
        let (p, e) = (sc.pred("P").unwrap(), sc.pred("E").unwrap());
        let every = rng.gen_range_usize(1..5);
        let mut log = LogHistory::new(sc.clone(), every);
        let mut full = History::new(sc.clone());
        for _ in 0..rng.gen_range_usize(1..8) {
            let mut tx = Transaction::new();
            for _ in 0..rng.gen_range_usize(0..4) {
                let v = rng.gen_range(0..6);
                tx = if rng.gen_bool(0.5) {
                    tx.insert(p, vec![v])
                } else {
                    tx.delete(p, vec![v])
                };
            }
            for _ in 0..rng.gen_range_usize(0..3) {
                let (a, b) = (rng.gen_range(0..6), rng.gen_range(0..6));
                tx = if rng.gen_bool(0.5) {
                    tx.insert(e, vec![a, b])
                } else {
                    tx.delete(e, vec![a, b])
                };
            }
            log.apply(&tx).unwrap();
            full.apply(&tx).unwrap();
        }
        assert_eq!(log.to_history(), full);
        assert_eq!(log.relevant(), &full.relevant());
        for t in 0..full.len() {
            assert_eq!(&log.state_at(t), full.state(t));
        }
        assert!(log.materialised_states() <= full.len());
    }
}
