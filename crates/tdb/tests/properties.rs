//! Property-based tests for the temporal database substrate.

// Gated: `proptest` is an off-by-default feature so the workspace
// resolves with no registry access. To run this suite, restore the
// `proptest` dev-dependency and pass `--features proptest`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use ticc_tdb::{History, LogHistory, Schema, State, Transaction, Value};

fn schema() -> Arc<Schema> {
    Schema::builder().pred("P", 1).pred("E", 2).build()
}

type Spec = Vec<(Vec<Value>, Vec<(Value, Value)>)>;

fn history_spec() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u64..6, 0..4),
            proptest::collection::vec((0u64..6, 0u64..6), 0..4),
        ),
        1..5,
    )
}

fn build(sc: &Arc<Schema>, spec: &Spec) -> History {
    let mut h = History::new(sc.clone());
    for (ps, es) in spec {
        let mut s = State::empty(sc.clone());
        for &v in ps {
            s.insert_named("P", vec![v]).unwrap();
        }
        for &(a, b) in es {
            s.insert_named("E", vec![a, b]).unwrap();
        }
        h.push_state(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn relevant_is_union_of_state_domains(spec in history_spec()) {
        let sc = schema();
        let h = build(&sc, &spec);
        let mut expected = BTreeSet::new();
        for s in h.states() {
            expected.extend(s.active_domain());
        }
        prop_assert_eq!(h.relevant(), expected);
    }

    #[test]
    fn restriction_keeps_only_inside_tuples(
        spec in history_spec(),
        keep in proptest::collection::btree_set(0u64..6, 0..6),
    ) {
        let sc = schema();
        let h = build(&sc, &spec);
        let r = h.restrict(&keep);
        prop_assert!(r.relevant().is_subset(&keep));
        // Tuples fully inside `keep` survive; others are gone.
        for (t, s) in h.states().iter().enumerate() {
            for p in sc.preds() {
                for tuple in s.relation(p).iter() {
                    let inside = tuple.iter().all(|v| keep.contains(v));
                    prop_assert_eq!(r.state(t).holds(p, tuple), inside);
                }
            }
        }
    }

    #[test]
    fn restriction_is_idempotent(
        spec in history_spec(),
        keep in proptest::collection::btree_set(0u64..6, 0..6),
    ) {
        let sc = schema();
        let h = build(&sc, &spec).restrict(&keep);
        prop_assert_eq!(h.restrict(&keep), h.clone());
    }

    #[test]
    fn prefix_then_relevant_shrinks(spec in history_spec()) {
        let sc = schema();
        let h = build(&sc, &spec);
        let mut prev = BTreeSet::new();
        for n in 1..=h.len() {
            let r = h.prefix(n).relevant();
            prop_assert!(prev.is_subset(&r), "relevant sets grow with the prefix");
            prev = r;
        }
        prop_assert_eq!(prev, h.relevant());
    }

    #[test]
    fn transactions_replay_histories(spec in history_spec()) {
        // Any history can be reconstructed by delete-all/insert-all
        // transactions, and the apply path agrees with push_state.
        let sc = schema();
        let h = build(&sc, &spec);
        let mut replayed = History::new(sc.clone());
        for (i, s) in h.states().iter().enumerate() {
            let mut tx = Transaction::new();
            if i > 0 {
                for p in sc.preds() {
                    for tuple in h.state(i - 1).relation(p).iter() {
                        tx = tx.delete(p, tuple.to_vec());
                    }
                }
            }
            for p in sc.preds() {
                for tuple in s.relation(p).iter() {
                    tx = tx.insert(p, tuple.to_vec());
                }
            }
            replayed.apply(&tx).unwrap();
        }
        prop_assert_eq!(replayed, h);
    }

    #[test]
    fn insert_then_delete_roundtrips(
        tuples in proptest::collection::vec((0u64..6, 0u64..6), 0..8),
    ) {
        let sc = schema();
        let e = sc.pred("E").unwrap();
        let mut s = State::empty(sc.clone());
        for &(a, b) in &tuples {
            s.insert(e, vec![a, b]).unwrap();
        }
        let unique: BTreeSet<_> = tuples.iter().copied().collect();
        prop_assert_eq!(s.relation(e).len(), unique.len());
        for &(a, b) in &unique {
            prop_assert!(s.delete(e, &[a, b]));
        }
        prop_assert!(s.relation(e).is_empty());
    }

    #[test]
    fn log_history_equals_snapshot_history(
        txs in proptest::collection::vec(
            (
                proptest::collection::vec((any::<bool>(), 0u64..6), 0..4),
                proptest::collection::vec((any::<bool>(), 0u64..6, 0u64..6), 0..3),
            ),
            1..8,
        ),
        every in 1usize..5,
    ) {
        let sc = schema();
        let (p, e) = (sc.pred("P").unwrap(), sc.pred("E").unwrap());
        let mut log = LogHistory::new(sc.clone(), every);
        let mut full = History::new(sc.clone());
        for (ps, es) in &txs {
            let mut tx = Transaction::new();
            for &(ins, v) in ps {
                tx = if ins { tx.insert(p, vec![v]) } else { tx.delete(p, vec![v]) };
            }
            for &(ins, a, b) in es {
                tx = if ins { tx.insert(e, vec![a, b]) } else { tx.delete(e, vec![a, b]) };
            }
            log.apply(&tx).unwrap();
            full.apply(&tx).unwrap();
        }
        prop_assert_eq!(log.to_history(), full.clone());
        prop_assert_eq!(log.relevant(), &full.relevant());
        for t in 0..full.len() {
            prop_assert_eq!(&log.state_at(t), full.state(t));
        }
        prop_assert!(log.materialised_states() <= full.len());
    }
}
