//! Property-based tests for the grounding/extension pipeline.
//!
//! * the literal (`Full`, with `□Axiom_D`) and constant-folded
//!   groundings decide the same extension problem on arbitrary
//!   universal sentences and histories;
//! * violations are prefix-monotone for safety constraints (safety =
//!   the class the paper restricts to);
//! * decoded witness extensions really extend: appending them keeps the
//!   constraint potentially satisfied;
//! * the online monitor replay agrees with the batch earliest-violation
//!   search.

// Gated: `proptest` is an off-by-default feature so the workspace
// resolves with no registry access. To run this suite, restore the
// `proptest` dev-dependency and pass `--features proptest`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::sync::Arc;
use ticc_core::diagnostics::earliest_violation;
use ticc_core::{check_potential_satisfaction, CheckOptions, GroundMode, Monitor, Status};
use ticc_fotl::{Formula, Term};
use ticc_ptl::sat::SatSolver;
use ticc_tdb::{History, Schema, State, Transaction, Value};

fn schema() -> Arc<Schema> {
    Schema::builder().pred("P", 1).pred("Q", 1).build()
}

/// A recipe for a random quantifier-free future matrix over variables
/// `x`, `y` and small explicit values.
#[derive(Debug, Clone)]
enum MShape {
    Lit { pred_p: bool, neg: bool, term: u8 }, // term: 0 = x, 1 = y, 2.. = value
    Eq(u8, u8),
    And(Box<MShape>, Box<MShape>),
    Or(Box<MShape>, Box<MShape>),
    Next(Box<MShape>),
    Always(Box<MShape>),
    Until(Box<MShape>, Box<MShape>),
}

impl MShape {
    fn term(code: u8) -> Term {
        match code % 4 {
            0 => Term::var("x"),
            1 => Term::var("y"),
            n => Term::Value(n as Value - 2),
        }
    }

    fn build(&self, sc: &Schema) -> Formula {
        match self {
            MShape::Lit { pred_p, neg, term } => {
                let p = if *pred_p {
                    sc.pred("P").unwrap()
                } else {
                    sc.pred("Q").unwrap()
                };
                let f = Formula::pred(p, vec![Self::term(*term)]);
                if *neg {
                    f.not()
                } else {
                    f
                }
            }
            MShape::Eq(a, b) => Formula::eq(Self::term(*a), Self::term(*b)),
            MShape::And(a, b) => a.build(sc).and(b.build(sc)),
            MShape::Or(a, b) => a.build(sc).or(b.build(sc)),
            MShape::Next(a) => a.build(sc).next(),
            MShape::Always(a) => a.build(sc).always(),
            MShape::Until(a, b) => a.build(sc).until(b.build(sc)),
        }
    }

    /// True if the shape avoids positive untils (syntactically safe
    /// after the ∀-prefix, given negations only sit on literals here).
    fn is_safe_shape(&self) -> bool {
        match self {
            MShape::Lit { .. } | MShape::Eq(_, _) => true,
            MShape::And(a, b) | MShape::Or(a, b) => a.is_safe_shape() && b.is_safe_shape(),
            MShape::Next(a) | MShape::Always(a) => a.is_safe_shape(),
            MShape::Until(_, _) => false,
        }
    }
}

fn mshape(depth: u32, with_until: bool) -> impl Strategy<Value = MShape> {
    let leaf = prop_oneof![
        (any::<bool>(), any::<bool>(), 0u8..6).prop_map(|(pred_p, neg, term)| MShape::Lit {
            pred_p,
            neg,
            term
        }),
        (0u8..6, 0u8..6).prop_map(|(a, b)| MShape::Eq(a, b)),
    ];
    leaf.prop_recursive(depth, 16, 2, move |inner| {
        let mut options = vec![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MShape::And(Box::new(a), Box::new(b)))
                .boxed(),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MShape::Or(Box::new(a), Box::new(b)))
                .boxed(),
            inner
                .clone()
                .prop_map(|a| MShape::Next(Box::new(a)))
                .boxed(),
            inner
                .clone()
                .prop_map(|a| MShape::Always(Box::new(a)))
                .boxed(),
        ];
        if with_until {
            options.push(
                (inner.clone(), inner)
                    .prop_map(|(a, b)| MShape::Until(Box::new(a), Box::new(b)))
                    .boxed(),
            );
        }
        proptest::strategy::Union::new(options)
    })
}

/// A small random history: per state, tuples for P and Q over 0..3.
fn history_strategy() -> impl Strategy<Value = Vec<(Vec<Value>, Vec<Value>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u64..3, 0..3),
            proptest::collection::vec(0u64..3, 0..3),
        ),
        1..4,
    )
}

fn build_history(sc: &Arc<Schema>, spec: &[(Vec<Value>, Vec<Value>)]) -> History {
    let mut h = History::new(sc.clone());
    for (ps, qs) in spec {
        let mut s = State::empty(sc.clone());
        for &v in ps {
            s.insert_named("P", vec![v]).unwrap();
        }
        for &v in qs {
            s.insert_named("Q", vec![v]).unwrap();
        }
        h.push_state(s);
    }
    h
}

fn close(sc: &Schema, m: &MShape) -> Formula {
    Formula::forall_many(["x", "y"], m.build(sc))
}

/// Single-variable closure (smaller groundings for the expensive
/// engine-agreement properties; `y` occurrences become a free-variable
/// error, so substitute them away first).
fn close1(sc: &Schema, m: &MShape) -> Formula {
    let body = m.build(sc);
    let theta: ticc_fotl::subst::Subst = [("y".to_owned(), Term::var("x"))].into_iter().collect();
    Formula::forall("x", ticc_fotl::subst::substitute(&body, &theta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn full_and_folded_groundings_agree(
        m in mshape(2, true),
        spec in history_strategy(),
    ) {
        let sc = schema();
        let phi = close1(&sc, &m);
        let h = build_history(&sc, &spec);
        let folded = check_potential_satisfaction(&h, &phi,
            &CheckOptions::builder().mode(GroundMode::Folded).solver(SatSolver::Buchi).build()).unwrap();
        let full = check_potential_satisfaction(&h, &phi,
            &CheckOptions::builder().mode(GroundMode::Full).solver(SatSolver::Buchi).build()).unwrap();
        prop_assert_eq!(folded.potentially_satisfied, full.potentially_satisfied);
    }

    #[test]
    fn probe_and_exhaustive_agree(
        m in mshape(2, true),
        spec in history_strategy(),
    ) {
        let sc = schema();
        let phi = close1(&sc, &m);
        let h = build_history(&sc, &spec);
        let probe = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        let exhaustive = check_potential_satisfaction(&h, &phi,
            &CheckOptions::builder().mode(GroundMode::Folded).solver(SatSolver::BuchiExhaustive).build()).unwrap();
        prop_assert_eq!(probe.potentially_satisfied, exhaustive.potentially_satisfied);
    }

    #[test]
    fn safety_violations_are_prefix_monotone(
        m in mshape(3, false).prop_filter("safe shapes only", MShape::is_safe_shape),
        spec in history_strategy(),
    ) {
        let sc = schema();
        let phi = close(&sc, &m);
        prop_assume!(ticc_fotl::classify::is_syntactically_safe(&phi));
        let h = build_history(&sc, &spec);
        let mut violated = false;
        for n in 1..=h.len() {
            let sat = check_potential_satisfaction(&h.prefix(n), &phi, &CheckOptions::default())
                .unwrap()
                .potentially_satisfied;
            if violated {
                prop_assert!(!sat, "violation must persist at prefix {n}");
            }
            violated = !sat;
        }
    }

    #[test]
    fn witness_extensions_are_real_extensions(
        m in mshape(2, false).prop_filter("safe shapes only", MShape::is_safe_shape),
        spec in history_strategy(),
    ) {
        let sc = schema();
        let phi = close(&sc, &m);
        prop_assume!(ticc_fotl::classify::is_syntactically_safe(&phi));
        let h = build_history(&sc, &spec);
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        if let Some(w) = out.witness {
            prop_assert!(out.potentially_satisfied);
            let mut ext = h.clone();
            for s in w.prefix.iter().chain(w.cycle.iter()).chain(w.cycle.iter()) {
                ext.push_state(s.clone());
            }
            let again = check_potential_satisfaction(&ext, &phi, &CheckOptions::default())
                .unwrap();
            prop_assert!(again.potentially_satisfied,
                "appending the witness must preserve satisfiability");
        }
    }

    #[test]
    fn monitor_replay_matches_batch_diagnosis(
        m in mshape(2, false).prop_filter("safe shapes only", MShape::is_safe_shape),
        spec in history_strategy(),
    ) {
        let sc = schema();
        let phi = close(&sc, &m);
        prop_assume!(ticc_fotl::classify::is_syntactically_safe(&phi));
        let h = build_history(&sc, &spec);
        let batch = earliest_violation(&h, &phi, &CheckOptions::default()).unwrap();

        let mut monitor = Monitor::new(sc.clone(), CheckOptions::default());
        let id = match monitor.add_constraint("c", phi.clone()) {
            Ok(id) => id,
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        // A constraint can be unsatisfiable outright (batch says 0).
        if batch == Some(0) {
            prop_assert_eq!(monitor.status(id), Status::Violated { at: 0 });
            return Ok(());
        }
        let mut online: Option<usize> = None;
        for (i, s) in h.states().iter().enumerate() {
            // Rebuild state i as a transaction from state i-1.
            let mut tx = Transaction::new();
            if i > 0 {
                for p in sc.preds() {
                    for t in h.state(i - 1).relation(p).iter() {
                        tx = tx.delete(p, t.to_vec());
                    }
                }
            }
            for p in sc.preds() {
                for t in s.relation(p).iter() {
                    tx = tx.insert(p, t.to_vec());
                }
            }
            let events = monitor.append(&tx).unwrap();
            if online.is_none() {
                if let Some(e) = events.first() {
                    online = Some(e.at);
                }
            }
        }
        prop_assert_eq!(online, batch,
            "online and batch detection must coincide");
    }
}
