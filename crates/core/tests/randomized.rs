//! Deterministic randomized tests for the core pipeline — the live,
//! always-on counterpart of the gated `properties.rs` suite, driven by
//! the in-repo xoshiro PRNG with fixed seeds.
//!
//! * the full (paper-literal) and folded grounding constructions decide
//!   the same answers,
//! * safety violations are prefix-monotone (once no extension exists,
//!   longer prefixes have none either),
//! * the incremental engine (delta re-grounding, residue progression,
//!   memoised satisfiability) agrees with one-shot batch checks at
//!   every prefix — the monitor-vs-batch oracle.

use std::sync::Arc;
use ticc_core::{check_potential_satisfaction, CheckOptions, GroundMode, Monitor, Status};
use ticc_fotl::parser::parse;
use ticc_fotl::Formula;
use ticc_tdb::rng::Rng;
use ticc_tdb::{History, Schema, State, Transaction, Value};

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
}

fn formula_pool(sc: &Schema) -> Vec<Formula> {
    [
        "forall x. G (Sub(x) -> X G !Sub(x))",
        "G !Sub(5)",
        "forall x. G (Fill(x) -> F Sub(x))",
        "forall x. G !(Sub(x) & Fill(x))",
    ]
    .iter()
    .map(|src| parse(sc, src).unwrap())
    .collect()
}

/// A random history over small domains; elements arrive staggered so
/// prefixes keep growing the relevant set. `states`/`domain` bound the
/// size (the full grounding construction is exponential in `|M|`, so
/// tests comparing against it must stay small).
fn gen_history_sized(rng: &mut Rng, sc: &Arc<Schema>, states: usize, domain: u64) -> History {
    let mut h = History::new(sc.clone());
    for _ in 0..rng.gen_range_usize(1..states + 1) {
        let mut s = State::empty(sc.clone());
        for _ in 0..rng.gen_range_usize(0..3) {
            s.insert_named("Sub", vec![rng.gen_range(0..domain)])
                .unwrap();
        }
        for _ in 0..rng.gen_range_usize(0..3) {
            s.insert_named("Fill", vec![rng.gen_range(0..domain)])
                .unwrap();
        }
        h.push_state(s);
    }
    h
}

fn gen_history(rng: &mut Rng, sc: &Arc<Schema>) -> History {
    gen_history_sized(rng, sc, 5, 5)
}

#[test]
fn full_and_folded_groundings_agree() {
    let mut rng = Rng::seed_from_u64(31);
    let sc = schema();
    // The liveness-flavoured pool member (`F Sub(x)`) makes the
    // paper-literal construction intractable at this size; the safety
    // members cover the mode-agreement claim.
    let pool: Vec<Formula> = formula_pool(&sc)
        .into_iter()
        .filter(ticc_fotl::classify::is_syntactically_safe)
        .collect();
    assert!(pool.len() >= 2);
    for i in 0..60 {
        let h = gen_history_sized(&mut rng, &sc, 3, 3);
        let phi = &pool[i % pool.len()];
        let folded = check_potential_satisfaction(
            &h,
            phi,
            &CheckOptions::builder().mode(GroundMode::Folded).build(),
        )
        .unwrap();
        let full = check_potential_satisfaction(
            &h,
            phi,
            &CheckOptions::builder().mode(GroundMode::Full).build(),
        )
        .unwrap();
        assert_eq!(
            folded.potentially_satisfied,
            full.potentially_satisfied,
            "modes disagree on history of length {}",
            h.len()
        );
    }
}

#[test]
fn safety_violations_are_prefix_monotone() {
    let mut rng = Rng::seed_from_u64(32);
    let sc = schema();
    let pool = formula_pool(&sc);
    for i in 0..32 {
        let h = gen_history_sized(&mut rng, &sc, 4, 4);
        let phi = &pool[i % pool.len()];
        let mut violated = false;
        for n in 1..=h.len() {
            let out =
                check_potential_satisfaction(&h.prefix(n), phi, &CheckOptions::default()).unwrap();
            if violated {
                assert!(
                    !out.potentially_satisfied,
                    "violation vanished when the prefix grew to {n}"
                );
            }
            violated = !out.potentially_satisfied;
        }
    }
}

#[test]
fn incremental_engine_agrees_with_batch_checks() {
    // The monitor replays the history one transaction at a time —
    // exercising the fast path, delta re-grounding, and the residue
    // cache — while the batch side grounds each prefix from scratch.
    // Status must agree at every instant, and the violation instant
    // must be the earliest prefix with no extension.
    let mut rng = Rng::seed_from_u64(33);
    let sc = schema();
    let pool = formula_pool(&sc);
    for i in 0..32 {
        let h = gen_history_sized(&mut rng, &sc, 4, 4);
        let phi = &pool[i % pool.len()];
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let id = match m.add_constraint("c", phi.clone()) {
            Ok(id) => id,
            Err(e) => panic!("constraint rejected: {e}"),
        };
        for n in 1..=h.len() {
            // delete-all/insert-all transaction producing state n-1.
            let mut tx = Transaction::new();
            if n > 1 {
                for p in sc.preds() {
                    for tuple in h.state(n - 2).relation(p).iter() {
                        tx = tx.delete(p, tuple.to_vec());
                    }
                }
            }
            for p in sc.preds() {
                for tuple in h.state(n - 1).relation(p).iter() {
                    tx = tx.insert(p, tuple.to_vec());
                }
            }
            m.append(&tx).unwrap();
            let batch =
                check_potential_satisfaction(&h.prefix(n), phi, &CheckOptions::default()).unwrap();
            match m.status(id) {
                Status::Satisfied => assert!(
                    batch.potentially_satisfied,
                    "monitor satisfied, batch violated at prefix {n}"
                ),
                Status::Violated { at } => {
                    assert!(
                        !batch.potentially_satisfied || at < n,
                        "monitor violated at {at}, batch satisfied at prefix {n}"
                    );
                    assert!(at <= n, "violation instant in the future");
                }
            }
        }
        // Earliest-violation agreement: the monitor's `at` equals the
        // first prefix length the batch checker rejects.
        if let Status::Violated { at } = m.status(id) {
            for n in 1..=h.len().min(at.saturating_sub(1)) {
                let batch =
                    check_potential_satisfaction(&h.prefix(n), phi, &CheckOptions::default())
                        .unwrap();
                assert!(
                    batch.potentially_satisfied,
                    "batch rejects prefix {n} but monitor fired only at {at}"
                );
            }
        }
    }
}

/// The relevant set never shrinks as states append — the precondition
/// the delta re-grounding design rests on (a new relevant element
/// appears in no earlier state).
#[test]
fn relevant_set_is_monotone_under_appends() {
    let mut rng = Rng::seed_from_u64(34);
    let sc = schema();
    for _ in 0..100 {
        let h = gen_history(&mut rng, &sc);
        let mut prev: std::collections::BTreeSet<Value> = Default::default();
        for n in 1..=h.len() {
            let r = h.prefix(n).relevant();
            assert!(prev.is_subset(&r));
            prev = r;
        }
    }
}
