//! History-budget equivalence: bounded-memory engines must be
//! *observationally identical* to unbounded ones — same violation
//! events in the same order, same statuses at every instant — across a
//! randomized 120-seed sweep, including a snapshot/restore round trip
//! mid-stream. The budget changes only where states live (resident
//! suffix vs. spill tier), never what the engine says.

use std::sync::Arc;
use ticc_core::{CheckOptions, Engine, HistoryBudget, MonitorEvent, Status};
use ticc_fotl::parser::parse;
use ticc_fotl::Formula;
use ticc_tdb::rng::Rng;
use ticc_tdb::{History, Schema, Transaction};

fn schema() -> Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
}

fn formula_pool(sc: &Schema) -> Vec<Formula> {
    [
        "forall x. G (Sub(x) -> X G !Sub(x))",
        "G !Sub(5)",
        "forall x. G (Fill(x) -> F Sub(x))",
        "forall x. G !(Sub(x) & Fill(x))",
    ]
    .iter()
    .map(|src| parse(sc, src).unwrap())
    .collect()
}

/// A random transaction stream of `steps` delete-all/insert-some
/// transactions. The domain widens as the stream progresses, so new
/// relevant elements keep arriving — after truncation has begun, that
/// forces delta re-grounds to replay through the cold tier.
fn gen_stream(rng: &mut Rng, sc: &Arc<Schema>, steps: usize) -> Vec<Transaction> {
    let mut txs = Vec::with_capacity(steps);
    let mut prev: Vec<(&str, u64)> = Vec::new();
    for t in 0..steps {
        let domain = (2 + t as u64 / 5).min(4);
        let mut tx = Transaction::new();
        for &(p, v) in &prev {
            tx = tx.delete(sc.pred(p).unwrap(), vec![v]);
        }
        prev.clear();
        for p in ["Sub", "Fill"] {
            for _ in 0..rng.gen_range_usize(0..3) {
                let v = rng.gen_range(0..domain);
                if !prev.contains(&(p, v)) {
                    tx = tx.insert(sc.pred(p).unwrap(), vec![v]);
                    prev.push((p, v));
                }
            }
        }
        txs.push(tx);
    }
    txs
}

/// The observable record of a run: per-step violation events plus the
/// per-step status of every constraint.
type Record = Vec<(Vec<MonitorEvent>, Vec<Status>)>;

/// One run: appends the stream under `budget`, snapshotting and
/// restoring the engine halfway through when `restore_midway`, and
/// returns the observable record and the truncation count.
fn run(
    sc: &Arc<Schema>,
    phis: &[&Formula],
    txs: &[Transaction],
    budget: HistoryBudget,
    restore_midway: bool,
) -> (Record, u64) {
    let opts = CheckOptions::builder().history_budget(budget).build();
    let mut engine = Engine::with_history(History::new(sc.clone()), opts);
    let ids: Vec<_> = phis
        .iter()
        .enumerate()
        .map(|(i, phi)| {
            engine
                .add_constraint(format!("c{i}"), (*phi).clone())
                .unwrap()
        })
        .collect();
    let mut record = Vec::with_capacity(txs.len());
    for (t, tx) in txs.iter().enumerate() {
        if restore_midway && t == txs.len() / 2 {
            let snap = engine.snapshot_bytes(&[]);
            let (restored, app) = Engine::restore_bytes(&snap, opts).unwrap();
            assert!(app.is_empty());
            engine = restored;
        }
        let events = engine.append(tx).unwrap();
        let statuses = ids.iter().map(|&id| engine.status(id)).collect();
        record.push((events, statuses));
    }
    (record, engine.stats().history.truncations)
}

#[test]
fn bounded_budgets_are_bit_identical_across_120_seeds() {
    let sc = schema();
    let pool = formula_pool(&sc);
    let mut total_truncations = 0u64;
    // Each seed pits one bounded configuration against the unbounded
    // baseline; the budget rotates across seeds and every other seed
    // additionally snapshots + restores the bounded engine mid-stream.
    let budgets = [
        HistoryBudget::Window(3),
        HistoryBudget::Window(6),
        HistoryBudget::Bytes(512),
    ];
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let steps = rng.gen_range_usize(8..18);
        let txs = gen_stream(&mut rng, &sc, steps);
        let phis = [
            &pool[seed as usize % pool.len()],
            &pool[(seed as usize + 1) % pool.len()],
        ];
        let (baseline, base_truncs) = run(&sc, &phis, &txs, HistoryBudget::Unbounded, false);
        assert_eq!(base_truncs, 0, "unbounded engines never truncate");
        let budget = budgets[seed as usize % budgets.len()];
        let restore_midway = seed % 2 == 1;
        let (bounded, truncs) = run(&sc, &phis, &txs, budget, restore_midway);
        assert_eq!(
            bounded, baseline,
            "seed {seed} diverged under {budget} (restore mid-stream: {restore_midway})"
        );
        total_truncations += truncs;
    }
    assert!(
        total_truncations > 40,
        "the sweep exercised truncation only {total_truncations} time(s) — streams too short?"
    );
}

/// Tight windows leave the resident suffix O(window) while the
/// unbounded twin retains every instant — the memory claim behind the
/// whole subsystem, checked on the actual gauges.
#[test]
fn window_budget_bounds_resident_states() {
    let sc = schema();
    let pool = formula_pool(&sc);
    let mut rng = Rng::seed_from_u64(7);
    let txs = gen_stream(&mut rng, &sc, 120);
    let phis = [&pool[0], &pool[3]];
    let opts = |b| CheckOptions::builder().history_budget(b).build();
    let mut bounded =
        Engine::with_history(History::new(sc.clone()), opts(HistoryBudget::Window(4)));
    let mut unbounded =
        Engine::with_history(History::new(sc.clone()), opts(HistoryBudget::Unbounded));
    for (i, phi) in phis.iter().enumerate() {
        bounded
            .add_constraint(format!("c{i}"), (*phi).clone())
            .unwrap();
        unbounded
            .add_constraint(format!("c{i}"), (*phi).clone())
            .unwrap();
    }
    for tx in &txs {
        bounded.append(tx).unwrap();
        unbounded.append(tx).unwrap();
    }
    let bs = bounded.stats().history;
    let us = unbounded.stats().history;
    assert_eq!(unbounded.history().len(), txs.len());
    assert_eq!(us.spilled_instants, 0);
    assert_eq!(
        bounded.history().len(),
        txs.len(),
        "truncation must not change the logical length"
    );
    assert!(
        bs.resident_states <= 16,
        "window(4) retains O(window) states, got {}",
        bs.resident_states
    );
    assert_eq!(
        bs.spilled_instants + bs.resident_states,
        txs.len() as u64,
        "every instant is either resident or spilled"
    );
    assert!(
        bs.spilled_distinct < bs.spilled_instants,
        "cyclic churn dedups: {} distinct pages for {} spilled instants",
        bs.spilled_distinct,
        bs.spilled_instants
    );
    assert!(bs.truncations > 0 && bs.reclaimed_bytes > 0);
    assert!(
        us.resident_states >= 10 * bs.resident_states,
        "unbounded resident {} vs bounded {}",
        us.resident_states,
        bs.resident_states
    );
    // The full history materialises bit-identically through the tier.
    let full = bounded.full_history().unwrap();
    for t in 0..txs.len() {
        assert_eq!(full.state(t), unbounded.history().state(t), "instant {t}");
    }
}
