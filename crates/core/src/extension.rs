//! The extension checker — Theorem 4.2.
//!
//! Decides *potential constraint satisfaction*: a constraint `φ` is
//! potentially satisfied at instant `t` if the current history
//! `(D0, …, Dt)` has an infinite extension to a model of `φ`. The
//! pipeline is ground (Theorem 4.1) → progress `w_D` (Lemma 4.2 phase 1)
//! → PTL satisfiability (phase 2). When an extension exists, the
//! ultimately-periodic propositional witness is decoded back to database
//! states (the decoding direction in the proof of Theorem 4.1).

use crate::engine::{check_once, Regrounding};
use crate::error::Error;
use crate::ground::{GroundMode, GroundStats, GroundStrategy, Grounding};
use crate::par::Threads;
use std::time::Duration;
use ticc_fotl::Formula;
use ticc_ptl::sat::{SatSolver, SatStats};
use ticc_tdb::{History, State};

/// How the engine derives the propositional valuation of an appended
/// state on the fast path (the E13 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// Re-derive the full valuation over `L_D` by walking every tuple
    /// of the state (the paper-shaped construction; the rebuild
    /// baseline of experiment E13).
    Rebuild,
    /// Patch the previous valuation in place from the transaction's
    /// inserts and deletes — `O(|Δtx|)` letter flips through the
    /// grounding's letter index. Bit-identical to [`Encoding::Rebuild`]
    /// (property-tested); folded groundings only — [`GroundMode::Full`]
    /// always rebuilds.
    #[default]
    Incremental,
}

/// How eagerly the engine hardens appended transactions when a durable
/// store is attached (no store attached ⇒ no logging regardless).
///
/// Theorem 4.1 makes durability cheap: the monitor's whole state is the
/// current database plus bounded per-constraint residues, so a snapshot
/// is `O(|snapshot|)` to write and restore, and the WAL only has to
/// carry the transactions since the last snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No write-ahead logging even with a store attached (snapshots via
    /// explicit checkpoints still work).
    Off,
    /// Log every transaction to the WAL before returning, letting the
    /// OS schedule the flush. A crash can lose the tail the kernel had
    /// not written; recovery truncates to the last intact frame.
    #[default]
    Wal,
    /// Log and `fsync` every transaction. Nothing acknowledged is ever
    /// lost, at one device flush per append.
    WalFsync,
}

/// Memory budget for the history and the per-constraint traces — the
/// bounded-memory knob the paper's §3 feasibility separation makes
/// sound: a progressed safety residue's dependence on the past is
/// syntactically bounded (see `core::window`), so instants behind the
/// retention horizon can be dropped from memory once a checkpoint
/// covers them, with cold states paged to a checksummed spill segment
/// for the rare replay that still needs them.
///
/// Every setting is **bit-identical** on events and statuses to
/// [`HistoryBudget::Unbounded`] (property-tested across 120 seeds):
/// the budget changes *where* states live, never what the monitor
/// answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryBudget {
    /// Keep every instant in memory (today's behaviour).
    #[default]
    Unbounded,
    /// Keep roughly `n` resident instants (never fewer than the
    /// engine's retention floor; truncation is hysteretic, so up to
    /// `2n` may be resident between truncations).
    Window(usize),
    /// Keep roughly `b` bytes of resident history, converted to a
    /// window via a per-instant size estimate.
    Bytes(usize),
}

impl HistoryBudget {
    /// Parses the shell / server syntax: `unbounded`, a window count
    /// `n`, or a byte budget like `64mb` / `512kb`.
    pub fn parse(s: &str) -> Result<HistoryBudget, String> {
        let s = s.trim().to_ascii_lowercase();
        if s == "unbounded" {
            return Ok(HistoryBudget::Unbounded);
        }
        let (digits, unit) = s.split_at(s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len()));
        let n: usize = digits.parse().map_err(|_| {
            format!("invalid history budget '{s}' (want unbounded|<n>|<n>kb|<n>mb)")
        })?;
        match unit {
            "" => Ok(HistoryBudget::Window(n)),
            "kb" => Ok(HistoryBudget::Bytes(n << 10)),
            "mb" => Ok(HistoryBudget::Bytes(n << 20)),
            other => Err(format!(
                "invalid history budget unit '{other}' (want kb|mb)"
            )),
        }
    }
}

impl std::fmt::Display for HistoryBudget {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryBudget::Unbounded => write!(out, "unbounded"),
            HistoryBudget::Window(n) => write!(out, "window({n})"),
            HistoryBudget::Bytes(b) => write!(out, "bytes({b})"),
        }
    }
}

/// Options for [`check_potential_satisfaction`] and the
/// [`Engine`](crate::engine::Engine) layer.
///
/// Marked `#[non_exhaustive]`: construct through
/// [`CheckOptions::default()`] or [`CheckOptions::builder()`] so that
/// future knobs (like this revision's `encoding` and
/// `transition_cache`) are not breaking changes.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct CheckOptions {
    /// Grounding construction.
    pub mode: GroundMode,
    /// Phase-2 satisfiability engine.
    pub solver: SatSolver,
    /// Re-grounding policy when the relevant domain grows (engine /
    /// monitor path; one-shot checks always ground from scratch).
    pub regrounding: Regrounding,
    /// Worker-thread policy for the sharded grounding and the
    /// per-constraint fan-out (deterministic: results are identical to
    /// [`Threads::Off`]).
    pub threads: Threads,
    /// Fast-path state encoding (incremental patching vs full rebuild).
    pub encoding: Encoding,
    /// Whether to memoise `(residue, letter) → (next residue, verdict)`
    /// transitions of the lazily materialised safety automaton. A hit
    /// skips progression and phase-2 satisfiability. On by default;
    /// deterministic either way (the E13 ablation toggles it off).
    pub transition_cache: bool,
    /// Whether to compile residues into explicit per-template safety
    /// automata (the E16 layer): the residue is split into
    /// support-disjoint units, each unit's progression graph is
    /// subset-constructed once per *template* (shape modulo letter
    /// renaming) with per-state sat verdicts precomputed, and every
    /// instantiation then steps as a dense `u32` table lookup. Falls
    /// back transparently to the symbolic path (and the transition
    /// cache) whenever compilation exceeds the state budget, a unit's
    /// support is too wide, or units stop being disjoint. On by
    /// default; results are bit-identical either way (the E16 ablation
    /// toggles it off). [`Notion::Potential`](crate::engine::Notion)
    /// and folded groundings only.
    pub template_automata: bool,
    /// Maximum explicit states per compiled template automaton; a
    /// template exceeding the budget leaves the whole context on the
    /// symbolic path.
    pub automaton_state_budget: usize,
    /// WAL write policy when a durable store is attached to the engine.
    pub durability: Durability,
    /// Instantiation enumeration — the Grounding knob. The default
    /// [`GroundStrategy::Indexed`] walks the join of per-atom candidate
    /// sets derived from the history's occurrence index and skips
    /// instantiations whose flexible atoms never occur;
    /// [`GroundStrategy::Odometer`] sweeps all `|M|^k` maps (kept for
    /// the E15 ablation). Check results are identical either way on
    /// the indexed class; outside it the engine falls back to the
    /// odometer transparently.
    pub grounding: GroundStrategy,
    /// Memory budget for the history and per-constraint traces.
    /// Bounded budgets truncate the in-memory prefix behind a
    /// checkpoint-covered horizon and page cold states to a spill
    /// segment; results are bit-identical to
    /// [`HistoryBudget::Unbounded`].
    pub history_budget: HistoryBudget,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            mode: GroundMode::default(),
            solver: SatSolver::default(),
            regrounding: Regrounding::default(),
            threads: Threads::default(),
            encoding: Encoding::default(),
            transition_cache: true,
            template_automata: true,
            automaton_state_budget: 64,
            durability: Durability::default(),
            grounding: GroundStrategy::default(),
            history_budget: HistoryBudget::default(),
        }
    }
}

impl CheckOptions {
    /// A builder starting from the defaults.
    pub fn builder() -> CheckOptionsBuilder {
        CheckOptionsBuilder {
            opts: CheckOptions::default(),
        }
    }
}

/// Builder for [`CheckOptions`] — the supported way to construct
/// non-default options outside this crate.
///
/// ```
/// use ticc_core::{CheckOptions, GroundMode, Threads};
/// let opts = CheckOptions::builder()
///     .mode(GroundMode::Folded)
///     .threads(Threads::Fixed(4))
///     .build();
/// assert_eq!(opts.threads, Threads::Fixed(4));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckOptionsBuilder {
    opts: CheckOptions,
}

impl CheckOptionsBuilder {
    /// Grounding construction.
    pub fn mode(mut self, mode: GroundMode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Phase-2 satisfiability engine.
    pub fn solver(mut self, solver: SatSolver) -> Self {
        self.opts.solver = solver;
        self
    }

    /// Re-grounding policy when the relevant domain grows.
    pub fn regrounding(mut self, regrounding: Regrounding) -> Self {
        self.opts.regrounding = regrounding;
        self
    }

    /// Worker-thread policy.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Fast-path state encoding.
    pub fn encoding(mut self, encoding: Encoding) -> Self {
        self.opts.encoding = encoding;
        self
    }

    /// Enables or disables the safety-automaton transition cache.
    pub fn transition_cache(mut self, on: bool) -> Self {
        self.opts.transition_cache = on;
        self
    }

    /// Enables or disables compiled template automata (the E16
    /// ablation knob).
    pub fn template_automata(mut self, on: bool) -> Self {
        self.opts.template_automata = on;
        self
    }

    /// Maximum explicit states per compiled template automaton.
    pub fn automaton_state_budget(mut self, budget: usize) -> Self {
        self.opts.automaton_state_budget = budget;
        self
    }

    /// WAL write policy when a durable store is attached.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.opts.durability = durability;
        self
    }

    /// Instantiation enumeration strategy (the Grounding knob).
    pub fn grounding(mut self, grounding: GroundStrategy) -> Self {
        self.opts.grounding = grounding;
        self
    }

    /// Memory budget for the history and per-constraint traces.
    pub fn history_budget(mut self, budget: HistoryBudget) -> Self {
        self.opts.history_budget = budget;
        self
    }

    /// The finished options.
    pub fn build(self) -> CheckOptions {
        self.opts
    }
}

/// Per-phase wall-clock timings (the E5 decomposition).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Grounding (Theorem 4.1).
    pub ground: Duration,
    /// Progression + satisfiability (Lemma 4.2). The `ticc-ptl` facade
    /// runs them together; progression alone is `O(t·|φ_D|)`.
    pub decide: Duration,
}

/// Statistics of one check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Grounding sizes.
    pub ground: GroundStats,
    /// Satisfiability statistics (automaton states etc.).
    pub sat: SatStats,
    /// Wall-clock per phase.
    pub timings: PhaseTimings,
    /// Whether the constraint passed the syntactic safety check
    /// (advisory: Theorem 4.2 assumes a safety sentence; the check is a
    /// sufficient condition only).
    pub syntactically_safe: bool,
}

/// A decoded witness extension: database states whose infinite
/// repetition `prefix · cycleω`, appended after the history, yields a
/// model of the constraint.
#[derive(Debug, Clone)]
pub struct WitnessExtension {
    /// Transient states to append first.
    pub prefix: Vec<State>,
    /// States to repeat forever (non-empty).
    pub cycle: Vec<State>,
}

/// Outcome of a potential-satisfaction check.
pub struct CheckOutcome {
    /// Whether an infinite extension satisfying the constraint exists.
    pub potentially_satisfied: bool,
    /// A concrete witness extension when one exists.
    pub witness: Option<WitnessExtension>,
    /// Run statistics.
    pub stats: CheckStats,
    /// The grounding, for reuse (e.g. incremental monitoring).
    pub grounding: Grounding,
}

/// Former error type of this module.
#[deprecated(since = "0.2.0", note = "use the unified `ticc_core::Error`")]
pub type CheckError = Error;

/// Decides whether `history` can be extended to an infinite temporal
/// database satisfying the universal safety sentence `phi`
/// (Theorem 4.2).
pub fn check_potential_satisfaction(
    history: &History,
    phi: &Formula,
    opts: &CheckOptions,
) -> Result<CheckOutcome, Error> {
    let shot = check_once(history, phi, opts)?;
    let (grounding, result) = (shot.grounding, shot.result);

    let witness = result.witness.as_ref().map(|lasso| WitnessExtension {
        prefix: lasso
            .prefix
            .iter()
            .map(|w| grounding.prop_to_state(w))
            .collect(),
        cycle: lasso
            .cycle
            .iter()
            .map(|w| grounding.prop_to_state(w))
            .collect(),
    });

    let stats = CheckStats {
        ground: grounding.stats,
        sat: result.stats,
        timings: PhaseTimings {
            ground: shot.ground_time,
            decide: shot.decide_time,
        },
        syntactically_safe: ticc_fotl::classify::is_syntactically_safe(phi),
    };
    Ok(CheckOutcome {
        potentially_satisfied: result.satisfiable,
        witness,
        stats,
        grounding,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ticc_fotl::parser::parse;
    use ticc_tdb::{Schema, Value};

    fn order_schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    fn history(spec: &[(&[Value], &[Value])]) -> History {
        let sc = order_schema();
        let mut h = History::new(sc.clone());
        for (subs, fills) in spec {
            let mut s = State::empty(sc.clone());
            for &v in *subs {
                s.insert_named("Sub", vec![v]).unwrap();
            }
            for &v in *fills {
                s.insert_named("Fill", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        h
    }

    fn once_only(sc: &Schema) -> Formula {
        parse(sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap()
    }

    #[test]
    fn clean_history_is_potentially_satisfied() {
        let h = history(&[(&[1], &[]), (&[2], &[1])]);
        let phi = once_only(h.schema());
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert!(out.potentially_satisfied);
        assert!(out.stats.syntactically_safe);
        let w = out.witness.unwrap();
        assert!(!w.cycle.is_empty());
    }

    #[test]
    fn double_submission_is_violated() {
        let h = history(&[(&[1], &[]), (&[1], &[])]);
        let phi = once_only(h.schema());
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert!(!out.potentially_satisfied);
        assert!(out.witness.is_none());
    }

    #[test]
    fn violation_detected_at_earliest_time_not_later() {
        // Prefix (Sub 1) alone is fine; after the duplicate it is not.
        let sc = order_schema();
        let phi = once_only(&sc);
        let good = history(&[(&[1], &[])]);
        assert!(
            check_potential_satisfaction(&good, &phi, &CheckOptions::default())
                .unwrap()
                .potentially_satisfied
        );
    }

    #[test]
    fn full_and_folded_modes_agree() {
        let sc = order_schema();
        let phi = once_only(&sc);
        for h in [
            history(&[(&[1], &[])]),
            history(&[(&[1], &[]), (&[1], &[])]),
            history(&[(&[1], &[]), (&[2], &[1]), (&[], &[2])]),
        ] {
            let folded = check_potential_satisfaction(
                &h,
                &phi,
                &CheckOptions::builder()
                    .mode(GroundMode::Folded)
                    .solver(SatSolver::Buchi)
                    .build(),
            )
            .unwrap();
            let full = check_potential_satisfaction(
                &h,
                &phi,
                &CheckOptions::builder()
                    .mode(GroundMode::Full)
                    .solver(SatSolver::Buchi)
                    .build(),
            )
            .unwrap();
            assert_eq!(
                folded.potentially_satisfied,
                full.potentially_satisfied,
                "modes disagree on history of length {}",
                h.len()
            );
        }
    }

    #[test]
    fn witness_extension_respects_constraint() {
        // Extend the history by the witness and re-check: still
        // potentially satisfied (safety ⇒ prefix-closed).
        let h = history(&[(&[1], &[]), (&[2], &[1])]);
        let phi = once_only(h.schema());
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        let w = out.witness.unwrap();
        let mut extended = h.clone();
        for s in &w.prefix {
            extended.push_state(s.clone());
        }
        for _ in 0..3 {
            for s in &w.cycle {
                extended.push_state(s.clone());
            }
        }
        let again =
            check_potential_satisfaction(&extended, &phi, &CheckOptions::default()).unwrap();
        assert!(
            again.potentially_satisfied,
            "witness must itself be extensible"
        );
    }

    #[test]
    fn eventually_fill_is_always_potentially_satisfied_but_flagged_unsafe() {
        // ∀x □(Sub(x) ⇒ ◇Fill(x)) — not a safety formula: any history
        // extends (fill everything later). The checker still decides it;
        // stats flag the safety caveat.
        let h = history(&[(&[1], &[]), (&[2], &[])]);
        let phi = parse(h.schema(), "forall x. G (Sub(x) -> F Fill(x))").unwrap();
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert!(out.potentially_satisfied);
        assert!(!out.stats.syntactically_safe);
    }

    #[test]
    fn fifo_constraint_end_to_end() {
        let sc = order_schema();
        let src = "forall x y. G !(x != y & Sub(x) & \
                   ((!Fill(x)) U (Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))";
        let phi = parse(&sc, src).unwrap();
        // In-order fills: fine.
        let good = history(&[(&[1], &[]), (&[2], &[]), (&[], &[1]), (&[], &[2])]);
        assert!(
            check_potential_satisfaction(&good, &phi, &CheckOptions::default())
                .unwrap()
                .potentially_satisfied
        );
        // Out-of-order: 2 filled while 1 still pending.
        let bad = history(&[(&[1], &[]), (&[2], &[]), (&[], &[2])]);
        assert!(
            !check_potential_satisfaction(&bad, &phi, &CheckOptions::default())
                .unwrap()
                .potentially_satisfied
        );
    }

    #[test]
    fn empty_history_reduces_to_validity_of_extension() {
        let sc = order_schema();
        let phi = once_only(&sc);
        let h = History::new(sc.clone());
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert!(out.potentially_satisfied);
    }

    #[test]
    fn stats_are_populated() {
        let h = history(&[(&[1], &[]), (&[2], &[1])]);
        let phi = once_only(h.schema());
        let out = check_potential_satisfaction(&h, &phi, &CheckOptions::default()).unwrap();
        assert_eq!(out.stats.ground.external_vars, 1);
        assert!(out.stats.ground.mappings >= 3);
        // The constant-word safety probe may answer without building the
        // automaton (states == 0); the exhaustive engine must not.
        assert_eq!(out.stats.sat.prefix_len, 2);
        let exhaustive = check_potential_satisfaction(
            &h,
            &phi,
            &CheckOptions::builder()
                .mode(crate::ground::GroundMode::Folded)
                .solver(ticc_ptl::sat::SatSolver::BuchiExhaustive)
                .build(),
        )
        .unwrap();
        assert!(exhaustive.stats.sat.states > 0);
        assert_eq!(exhaustive.potentially_satisfied, out.potentially_satisfied);
    }
}
