//! First-class session lifecycle: schema definition, constraints,
//! triggers, staged updates, durability, and versioned stats — one
//! handle.
//!
//! Historically this logic lived inside the interactive shell, which
//! meant every other embedder (benchmarks, tests, and now the
//! multi-tenant server) re-derived its own engine/trigger/store
//! plumbing. A [`Session`] is that lifecycle extracted into `ticc-core`:
//!
//! ```text
//! Session::builder() ── open() ──► Defining ── freeze() ──► Running
//!        │                          declare_pred/const       add_constraint
//!        │                                                   add_trigger
//!        ├─ .store(path)   per-session WAL (Engine-attached) stage/commit
//!        └─ .group(wal, name)  shared group-commit WAL       checkpoint/stats
//! ```
//!
//! A session is either **self-stored** (its engine owns a
//! [`Store`], exactly the `ticc-shell --store`
//! behaviour), **group-backed** (it logs through a shared
//! [`GroupWal`], the multi-tenant server path: one fsync per commit
//! window covers many sessions), or ephemeral. The durability policy
//! is still [`CheckOptions::durability`]; a group-backed session maps
//! `WalFsync` to a *synced* group append (waits for its commit window)
//! and `Wal` to an unsynced one.
//!
//! The apply-then-log ordering of the engine's own WAL is preserved
//! for group logging: the transaction is applied (and checked) first,
//! then logged; a log failure surfaces as [`Error::Store`] with the
//! state applied — the same contract `Engine::append` has always had.
//!
//! Trigger definitions persist inside the checkpoint's application
//! blob (the versioned encoding the shell introduced, now owned here),
//! so a restored session fires the same triggers the original did.

use std::path::Path;
use std::sync::Arc;

use crate::engine::Engine;
use crate::error::Error;
use crate::extension::{CheckOptions, Durability};
use crate::monitor::{ConstraintId, MonitorEvent, Status};
use crate::obs::EngineStats;
use crate::trigger::{Action, FiredTrigger, Trigger, TriggerEngine};
use ticc_fotl::Formula;
use ticc_store::codec::{formula_decode, formula_encode, tx_from_bytes};
use ticc_store::{Dec, Enc, GroupWal, Store, StoreStats};
use ticc_tdb::{History, Schema, Transaction, Value};

/// Version tag of the session's application blob inside checkpoints
/// (currently: the registered triggers).
const APP_VERSION: u32 = 1;

/// The JSON schema tag emitted by [`Session::stats_json`] and the
/// server's `stats` frames. v2 folds the `automata` object into the
/// documented schema and adds the `session` and `server` objects; v1
/// readers should upgrade by treating both as absent.
pub const STATS_SCHEMA: &str = "ticc-engine-stats-v2";

/// The JSON schema tag v1 emitters used (accepted by upgrade readers).
pub const STATS_SCHEMA_V1: &str = "ticc-engine-stats-v1";

/// One committed state: where it landed and everything that fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Committed {
    /// Index of the new state (`history.len() - 1` after the append).
    pub t: usize,
    /// Constraint violations that became unavoidable at this state.
    pub events: Vec<MonitorEvent>,
    /// Trigger firings evaluated at this state.
    pub fired: Vec<FiredTrigger>,
    /// Staged operations folded into this commit (0 for a direct
    /// [`Session::append`]).
    pub ops: usize,
}

/// What opening a session found in its backing store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenSummary {
    /// A checkpoint was found and the whole session resumed from it.
    pub resumed: bool,
    /// States in the history after any replay.
    pub states: usize,
    /// Constraints restored from the checkpoint.
    pub constraints: usize,
    /// Triggers restored from the application blob.
    pub triggers: usize,
    /// Logged transactions replayed on top of the checkpoint.
    pub replayed: usize,
    /// Logged transactions parked until the schema is (re)declared —
    /// non-zero only when a store exists but holds no checkpoint.
    pub pending_replay: usize,
    /// Bytes of torn/corrupt tail recovery discarded.
    pub truncated_bytes: u64,
}

/// Session-level counters layered over [`EngineStats`] — the `session`
/// object of the v2 stats schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// The engine's counters, gauges, and timers.
    pub engine: EngineStats,
    /// Committed transactions (staged commits and direct appends).
    pub commits: u64,
    /// Violation events across all commits.
    pub violations: u64,
    /// Trigger firings across all commits.
    pub trigger_firings: u64,
    /// Registered constraints.
    pub constraints: u64,
    /// Registered triggers.
    pub triggers: u64,
    /// States in the history.
    pub history_len: u64,
    /// Operations currently staged for the next commit.
    pub staged: u64,
    /// Whether the session has a durable backend (own store or group).
    pub durable: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    commits: u64,
    violations: u64,
    trigger_firings: u64,
}

struct GroupBinding {
    wal: Arc<GroupWal>,
    id: u32,
}

enum Phase {
    /// Collecting schema declarations.
    Defining {
        preds: Vec<(String, usize)>,
        consts: Vec<(String, Value)>,
    },
    /// Schema frozen; engine live.
    Running(Box<Running>),
}

struct Running {
    engine: Engine,
    triggers: TriggerEngine,
    trigger_defs: Vec<(String, Formula)>,
    pending: Transaction,
    pending_ops: usize,
}

/// A monitored session: schema lifecycle, constraints, triggers,
/// staged updates, and durability behind one handle. See the module
/// docs for the phase diagram.
pub struct Session {
    name: String,
    opts: CheckOptions,
    phase: Phase,
    /// A store opened before the schema exists: attached at freeze.
    deferred_store: Option<Store>,
    /// Logged transactions replayed at freeze (deferred store or
    /// group recovery without a checkpoint).
    pending_replay: Vec<Vec<u8>>,
    group: Option<GroupBinding>,
    counters: Counters,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder()
            .open()
            .expect("ephemeral open cannot fail")
            .0
    }
}

impl Session {
    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The session's name (registry key on a server; cosmetic
    /// elsewhere).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The options every engine, trigger, and check in this session
    /// uses.
    pub fn options(&self) -> CheckOptions {
        self.opts
    }

    /// Whether the schema is still open for declarations.
    pub fn is_defining(&self) -> bool {
        matches!(self.phase, Phase::Defining { .. })
    }

    /// Predicates declared so far (meaningful while defining; the
    /// schema's count afterwards).
    pub fn declared_preds(&self) -> usize {
        match &self.phase {
            Phase::Defining { preds, .. } => preds.len(),
            Phase::Running(r) => r.engine.history().schema().pred_count(),
        }
    }

    /// Declares a predicate. Errors once the schema is frozen or on a
    /// duplicate symbol.
    pub fn declare_pred(&mut self, name: &str, arity: usize) -> Result<(), Error> {
        if arity == 0 {
            return Err(Error::Session("arity must be at least 1".to_owned()));
        }
        let (preds, consts) = self.defining_mut()?;
        if preds.iter().any(|(n, _)| n == name) || consts.iter().any(|(n, _)| n == name) {
            return Err(Error::Session(format!("duplicate symbol '{name}'")));
        }
        preds.push((name.to_owned(), arity));
        Ok(())
    }

    /// Declares a rigid constant with its interpretation. Errors once
    /// the schema is frozen or on a duplicate symbol.
    pub fn declare_const(&mut self, name: &str, value: Value) -> Result<(), Error> {
        let (preds, consts) = self.defining_mut()?;
        if preds.iter().any(|(n, _)| n == name) || consts.iter().any(|(n, _)| n == name) {
            return Err(Error::Session(format!("duplicate symbol '{name}'")));
        }
        consts.push((name.to_owned(), value));
        Ok(())
    }

    #[allow(clippy::type_complexity)]
    fn defining_mut(
        &mut self,
    ) -> Result<(&mut Vec<(String, usize)>, &mut Vec<(String, Value)>), Error> {
        match &mut self.phase {
            Phase::Defining { preds, consts } => Ok((preds, consts)),
            Phase::Running(_) => Err(Error::Session(
                "the schema is frozen once constraints or updates exist".to_owned(),
            )),
        }
    }

    /// Freezes the schema and brings the engine up: builds the
    /// history (with constant interpretations), replays any parked
    /// transactions, and attaches a deferred store. Idempotent once
    /// running; errors if no predicate was declared.
    pub fn freeze(&mut self) -> Result<(), Error> {
        let Phase::Defining { preds, consts } = &self.phase else {
            return Ok(());
        };
        if preds.is_empty() {
            return Err(Error::Session(
                "declare at least one predicate before the schema can freeze".to_owned(),
            ));
        }
        let mut b = Schema::builder();
        for (name, arity) in preds {
            b = b.pred(name, *arity);
        }
        for (name, _) in consts {
            b = b.constant(name);
        }
        let schema = b.build();
        let mut history = History::new(schema.clone());
        for (name, value) in consts {
            let c = schema.constant(name).expect("just declared");
            history.set_constant(c, *value);
        }
        let mut engine = Engine::with_history(history, self.opts);
        // Parked transactions (a store or group log that predates this
        // schema declaration): replay through the ordinary append path.
        // The store is not attached yet, so nothing is re-logged.
        for payload in std::mem::take(&mut self.pending_replay) {
            let tx = tx_from_bytes(&payload, &schema).map_err(|e| {
                Error::Session(format!(
                    "logged transaction does not match the declared schema: {e}"
                ))
            })?;
            engine
                .append(&tx)
                .map_err(|e| Error::Session(format!("cannot replay logged transaction: {e}")))?;
        }
        if let Some(store) = self.deferred_store.take() {
            engine.attach_store(store);
        }
        self.phase = Phase::Running(Box::new(Running {
            engine,
            triggers: TriggerEngine::new(self.opts),
            trigger_defs: Vec::new(),
            pending: Transaction::new(),
            pending_ops: 0,
        }));
        Ok(())
    }

    fn running_mut(&mut self) -> Result<&mut Running, Error> {
        self.freeze()?;
        match &mut self.phase {
            Phase::Running(r) => Ok(r),
            Phase::Defining { .. } => unreachable!("freeze() leaves the session running"),
        }
    }

    fn running(&self) -> Option<&Running> {
        match &self.phase {
            Phase::Running(r) => Some(r),
            Phase::Defining { .. } => None,
        }
    }

    /// Registers a universal safety constraint (freezing the schema if
    /// needed) and returns its id plus current status.
    pub fn add_constraint(&mut self, name: &str, phi: Formula) -> Result<ConstraintId, Error> {
        let r = self.running_mut()?;
        r.engine.add_constraint(name.to_owned(), phi)
    }

    /// Registers a condition–action trigger with the `Log` action
    /// (freezing the schema if needed).
    pub fn add_trigger(&mut self, name: &str, condition: Formula) -> Result<(), Error> {
        let r = self.running_mut()?;
        r.triggers.add(Trigger {
            name: name.to_owned(),
            condition: condition.clone(),
            action: Action::Log,
        })?;
        r.trigger_defs.push((name.to_owned(), condition));
        Ok(())
    }

    /// Stages one tuple insertion or deletion for the next
    /// [`Session::commit`] (freezing the schema if needed).
    pub fn stage(
        &mut self,
        insert: bool,
        pred: ticc_tdb::PredId,
        tuple: Vec<Value>,
    ) -> Result<(), Error> {
        let r = self.running_mut()?;
        let staged = std::mem::take(&mut r.pending);
        r.pending = if insert {
            staged.insert(pred, tuple)
        } else {
            staged.delete(pred, tuple)
        };
        r.pending_ops += 1;
        Ok(())
    }

    /// Operations staged for the next commit.
    pub fn staged_ops(&self) -> usize {
        self.running().map_or(0, |r| r.pending_ops)
    }

    /// Commits the staged operations as the next state: applies the
    /// transaction, checks every constraint, logs it per the
    /// durability policy, and evaluates triggers.
    pub fn commit(&mut self) -> Result<Committed, Error> {
        let r = self.running_mut()?;
        let tx = std::mem::take(&mut r.pending);
        let ops = std::mem::replace(&mut r.pending_ops, 0);
        let mut out = self.append(&tx)?;
        out.ops = ops;
        Ok(out)
    }

    /// Appends `tx` directly as the next state (the staged buffer is
    /// untouched): apply + check, log per the durability policy, then
    /// evaluate triggers.
    pub fn append(&mut self, tx: &Transaction) -> Result<Committed, Error> {
        self.freeze()?;
        let durability = self.opts.durability;
        let group = &self.group;
        let Phase::Running(r) = &mut self.phase else {
            unreachable!("freeze() leaves the session running")
        };
        // Apply-then-log, exactly like the engine's own WAL path. A
        // self-stored session logs inside `Engine::append`; a
        // group-backed one logs here, mapping WalFsync to a synced
        // append (whose fsync the commit window shares).
        let events = r.engine.append(tx)?;
        if let Some(g) = group {
            let sync = match durability {
                Durability::Off => None,
                Durability::Wal => Some(false),
                Durability::WalFsync => Some(true),
            };
            if let Some(sync) = sync {
                g.wal
                    .append_tx(g.id, tx, sync)
                    .map_err(|e| Error::Store(e.to_string()))?;
            }
        }
        // Triggers ground the history from instant 0, so a budgeted
        // engine hands them a materialised view (borrowed when nothing
        // was truncated) — firings are budget-invariant.
        let fired = if r.trigger_defs.is_empty() {
            Vec::new()
        } else {
            let hist = r.engine.full_history()?;
            r.triggers.evaluate(hist.as_ref())?
        };
        self.counters.commits += 1;
        self.counters.violations += events.len() as u64;
        self.counters.trigger_firings += fired.len() as u64;
        Ok(Committed {
            t: r.engine.history().len() - 1,
            events,
            fired,
            ops: 0,
        })
    }

    /// Appends a batch of transactions as consecutive states in one
    /// constraint sweep — [`Engine::append_batch`], so statuses,
    /// events, and stats are bit-identical to appending them one at a
    /// time. A group-backed session logs every transaction and lets
    /// the final one carry the fsync request: one commit window
    /// covers the whole batch. Triggers are evaluated at every new
    /// state (over the history prefix for intermediate ones), so the
    /// returned [`Committed`] values match a per-transaction
    /// [`Session::append`] loop. The staged buffer is untouched.
    pub fn append_batch(&mut self, txs: &[Transaction]) -> Result<Vec<Committed>, Error> {
        self.freeze()?;
        let durability = self.opts.durability;
        let group = &self.group;
        let Phase::Running(r) = &mut self.phase else {
            unreachable!("freeze() leaves the session running")
        };
        let base = r.engine.history().len();
        let per_tx_events = r.engine.append_batch(txs)?;
        if let Some(g) = group {
            let sync = match durability {
                Durability::Off => None,
                Durability::Wal => Some(false),
                Durability::WalFsync => Some(true),
            };
            if let Some(sync) = sync {
                for (i, tx) in txs.iter().enumerate() {
                    let last = i + 1 == txs.len();
                    g.wal
                        .append_tx(g.id, tx, sync && last)
                        .map_err(|e| Error::Store(e.to_string()))?;
                }
            }
        }
        let mut out = Vec::with_capacity(per_tx_events.len());
        for (t, events) in per_tx_events.into_iter().enumerate() {
            let fired = if r.trigger_defs.is_empty() {
                Vec::new()
            } else if base + t + 1 == r.engine.history().len() {
                let hist = r.engine.full_history()?;
                r.triggers.evaluate(hist.as_ref())?
            } else {
                // `history_prefix` materialises through the spill tier,
                // so mid-batch trigger sweeps see the same prefix a
                // per-transaction append loop would have.
                let prefix = r.engine.history_prefix(base + t + 1)?;
                r.triggers.evaluate(&prefix)?
            };
            self.counters.commits += 1;
            self.counters.violations += events.len() as u64;
            self.counters.trigger_firings += fired.len() as u64;
            out.push(Committed {
                t: base + t,
                events,
                fired,
                ops: 0,
            });
        }
        Ok(out)
    }

    /// The history, once the schema is frozen. Under a bounded
    /// [`HistoryBudget`](crate::HistoryBudget) this is the *resident*
    /// view (`base() > 0` once truncation has run); callers that need
    /// instants behind the horizon should use
    /// [`Session::full_history`].
    pub fn history(&self) -> Option<&History> {
        self.running().map(|r| r.engine.history())
    }

    /// The full history, rehydrating any truncated prefix from the
    /// spill tier — borrowed (free) when nothing was truncated. `None`
    /// before the schema freezes.
    pub fn full_history(&self) -> Result<Option<std::borrow::Cow<'_, History>>, Error> {
        match self.running() {
            Some(r) => r.engine.full_history().map(Some),
            None => Ok(None),
        }
    }

    /// The frozen schema.
    pub fn schema(&self) -> Option<Arc<Schema>> {
        self.running().map(|r| r.engine.history().schema().clone())
    }

    /// A constraint's current status.
    ///
    /// # Panics
    /// Panics if the schema has not frozen (no constraint can exist).
    pub fn status(&self, id: ConstraintId) -> Status {
        self.running()
            .expect("no constraints before freeze")
            .engine
            .status(id)
    }

    /// Registered constraints in registration order:
    /// `(id, name, formula)`.
    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &str, &Formula)> {
        self.running().into_iter().flat_map(|r| {
            r.engine
                .constraints()
                .map(move |id| (id, r.engine.name(id), r.engine.formula(id)))
        })
    }

    /// Registered trigger definitions in registration order.
    pub fn trigger_defs(&self) -> &[(String, Formula)] {
        self.running().map_or(&[], |r| &r.trigger_defs)
    }

    /// Whether a durable backend exists (own store, deferred store, or
    /// group log).
    pub fn has_store(&self) -> bool {
        self.group.is_some()
            || self.deferred_store.is_some()
            || self.running().is_some_and(|r| r.engine.store().is_some())
    }

    /// The engine's own store counters, if self-stored.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.running().and_then(|r| r.engine.store_stats())
    }

    /// Cumulative trigger-engine counters (one-shot checks driven by
    /// trigger evaluation).
    pub fn trigger_stats(&self) -> EngineStats {
        self.running()
            .map_or_else(EngineStats::default, |r| r.triggers.stats())
    }

    /// Session-level stats: engine counters plus commit/violation/
    /// firing totals and gauge context.
    pub fn stats(&self) -> SessionStats {
        let engine = self
            .running()
            .map_or_else(EngineStats::default, |r| r.engine.stats());
        SessionStats {
            engine,
            commits: self.counters.commits,
            violations: self.counters.violations,
            trigger_firings: self.counters.trigger_firings,
            constraints: self
                .running()
                .map_or(0, |r| r.engine.constraints().count() as u64),
            triggers: self.running().map_or(0, |r| r.trigger_defs.len() as u64),
            history_len: self
                .running()
                .map_or(0, |r| r.engine.history().len() as u64),
            staged: self.staged_ops() as u64,
            durable: self.has_store(),
        }
    }

    /// Renders the versioned stats JSON (schema [`STATS_SCHEMA`]) with
    /// `"server":null` — servers splice their own object via
    /// [`stats_json_with`].
    pub fn stats_json(&self) -> String {
        stats_json_with(&self.stats(), None)
    }

    /// Writes a checkpoint — a full snapshot of the session (schema,
    /// history, constraints, residues, triggers) — to the durable
    /// backend. Returns the snapshot size in bytes.
    pub fn checkpoint(&mut self) -> Result<u64, Error> {
        self.checkpoint_inner().map(|(bytes, _)| bytes)
    }

    /// Checkpoint plus, for a group-backed session, the snapshot bytes
    /// themselves (a shared log cannot be re-scanned per session, so
    /// the caller keeps them to hand a later reopen).
    fn checkpoint_inner(&mut self) -> Result<(u64, Option<Vec<u8>>), Error> {
        let group_id = self.group.as_ref().map(|g| g.id);
        let r = self.running_mut()?;
        let app = encode_app(&r.trigger_defs);
        if let Some(id) = group_id {
            let snap = r.engine.snapshot_bytes(&app);
            let g = self.group.as_ref().expect("just read");
            g.wal
                .append_snapshot(id, &snap)
                .map_err(|e| Error::Store(e.to_string()))?;
            return Ok((snap.len() as u64, Some(snap)));
        }
        if r.engine.store().is_none() {
            return Err(Error::Store("no store attached".to_owned()));
        }
        r.engine.checkpoint(&app)?;
        let bytes = r
            .engine
            .store_stats()
            .unwrap_or_default()
            .last_snapshot_bytes;
        Ok((bytes, None))
    }

    /// Checkpoints, then rewrites the log to hold nothing but that
    /// snapshot. Self-stored sessions only: a group log is shared, so
    /// one session cannot rewrite it.
    pub fn compact(&mut self) -> Result<u64, Error> {
        if self.group.is_some() {
            return Err(Error::Session(
                "compact is per-file; a group-backed session can only checkpoint".to_owned(),
            ));
        }
        let r = self.running_mut()?;
        let app = encode_app(&r.trigger_defs);
        if r.engine.store().is_none() {
            return Err(Error::Store("no store attached".to_owned()));
        }
        r.engine.compact(&app)?;
        Ok(r.engine
            .store_stats()
            .unwrap_or_default()
            .last_snapshot_bytes)
    }

    /// Closes the session: checkpoints to the durable backend (if any
    /// and the schema froze) so a reopen resumes without replay, and
    /// flushes the group log.
    pub fn close(mut self) -> Result<(), Error> {
        self.close_snapshot().map(|_| ())
    }

    /// The work of [`Session::close`] — checkpoint (if durable and
    /// frozen) plus group-log flush — without consuming the handle:
    /// on error the session stays usable. For a group-backed session
    /// the checkpoint's snapshot bytes are returned; a server parks
    /// them so a later open of the same name resumes from exactly the
    /// state this close made durable (the shared log is never
    /// re-scanned while the server is live).
    pub fn close_snapshot(&mut self) -> Result<Option<Vec<u8>>, Error> {
        let mut snapshot = None;
        if self.has_store() && self.running().is_some() {
            snapshot = self.checkpoint_inner()?.1;
        }
        if let Some(g) = &self.group {
            g.wal.flush().map_err(|e| Error::Store(e.to_string()))?;
        }
        Ok(snapshot)
    }

    /// Escape hatch: the underlying engine (once running). Prefer the
    /// session surface; this exists for diagnostics and tests.
    pub fn engine(&self) -> Option<&Engine> {
        self.running().map(|r| &r.engine)
    }

    /// Idle-parking hook: checkpoints the session and returns the
    /// state a server needs to transparently resume it later via
    /// [`SessionBuilder::resume`]. Durability is left exactly as a
    /// [`Session::close`] would leave it — a group-backed session
    /// appends the checkpoint to the shared log and flushes it, so a
    /// crash while parked recovers the same state the park captured;
    /// an ephemeral session parks purely in memory (its snapshot bytes
    /// live only in the returned [`ParkedSession`]).
    ///
    /// Errors while the schema is still defining (no engine to
    /// checkpoint) or with staged-but-uncommitted operations (parking
    /// would silently drop them).
    pub fn park(&mut self) -> Result<ParkedSession, Error> {
        if self.running().is_none() {
            return Err(Error::Session(
                "cannot park a session whose schema never froze".to_owned(),
            ));
        }
        if self.staged_ops() > 0 {
            return Err(Error::Session(
                "cannot park with staged uncommitted operations".to_owned(),
            ));
        }
        let snapshot = if self.group.is_some() {
            self.checkpoint_inner()?
                .1
                .expect("group checkpoint returns its snapshot bytes")
        } else {
            let r = self.running_mut()?;
            let app = encode_app(&r.trigger_defs);
            if r.engine.store().is_some() {
                // Self-stored: make the park durable in the store too,
                // then hand back the same bytes for in-memory resume.
                r.engine.checkpoint(&app)?;
            }
            r.engine.snapshot_bytes(&app)
        };
        if let Some(g) = &self.group {
            g.wal.flush().map_err(|e| Error::Store(e.to_string()))?;
        }
        Ok(ParkedSession {
            name: self.name.clone(),
            snapshot,
            opts: self.opts,
            counters: self.counters,
        })
    }
}

/// Everything needed to transparently resume an idle-parked session:
/// the engine checkpoint plus the session-level state a snapshot alone
/// does not carry (effective options, commit/violation counters).
/// Produced by [`Session::park`], consumed by
/// [`SessionBuilder::resume`].
#[derive(Clone)]
pub struct ParkedSession {
    name: String,
    snapshot: Vec<u8>,
    opts: CheckOptions,
    counters: Counters,
}

impl ParkedSession {
    /// The parked session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The checkpoint bytes the parked engine resumes from (for a
    /// group-backed session, the same bytes the shared log now holds).
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot
    }
}

/// Configures and opens a [`Session`]. See the module docs for the
/// three backend shapes.
pub struct SessionBuilder {
    name: String,
    opts: CheckOptions,
    store: Option<std::path::PathBuf>,
    group: Option<(Arc<GroupWal>, String)>,
    snapshot: Option<Vec<u8>>,
    replay: Vec<Vec<u8>>,
    preds: Vec<(String, usize)>,
    consts: Vec<(String, Value)>,
    resume_counters: Option<Counters>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// A builder with default options and no backend.
    pub fn new() -> Self {
        Self {
            name: "session".to_owned(),
            opts: CheckOptions::default(),
            store: None,
            group: None,
            snapshot: None,
            replay: Vec::new(),
            preds: Vec::new(),
            consts: Vec::new(),
            resume_counters: None,
        }
    }

    /// Names the session (the registry key on a server).
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Uses `opts` for every engine, trigger, and check.
    pub fn options(mut self, opts: CheckOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Backs the session with its own store file at `path`
    /// (`Store::open_or_create` semantics: resumes from a checkpoint
    /// if one exists, parks logged transactions otherwise).
    pub fn store(mut self, path: impl AsRef<Path>) -> Self {
        self.store = Some(path.as_ref().to_path_buf());
        self
    }

    /// Backs the session with a shared group-commit log, registering
    /// it under the builder's name. Recovery of group-backed sessions
    /// is the *caller's* job (the log is shared): pass the recovered
    /// snapshot/suffix via [`SessionBuilder::snapshot`] and
    /// [`SessionBuilder::replay`].
    pub fn group(mut self, wal: Arc<GroupWal>) -> Self {
        self.group = Some((wal, self.name.clone()));
        self
    }

    /// Restores the session from checkpoint bytes (a group recovery's
    /// [`ticc_store::RecoveredSession::snapshot`]).
    pub fn snapshot(mut self, bytes: Vec<u8>) -> Self {
        self.snapshot = Some(bytes);
        self
    }

    /// Transactions to replay after the snapshot (or after the schema
    /// freezes, if there is no snapshot).
    pub fn replay(mut self, payloads: Vec<Vec<u8>>) -> Self {
        self.replay = payloads;
        self
    }

    /// Resumes an idle-parked session from [`Session::park`]'s state:
    /// name, snapshot, options, and session counters, so observable
    /// behaviour continues exactly where the parked session left off.
    /// Call before [`SessionBuilder::group`] (the group registration
    /// uses the builder's name at the time it is called); not for
    /// self-stored sessions, whose store recovery supplies its own
    /// snapshot.
    pub fn resume(mut self, parked: ParkedSession) -> Self {
        self.name = parked.name;
        self.opts = parked.opts;
        self.snapshot = Some(parked.snapshot);
        self.resume_counters = Some(parked.counters);
        self
    }

    /// Declares a predicate up front; with at least one, `open()`
    /// freezes the schema immediately.
    pub fn pred(mut self, name: &str, arity: usize) -> Self {
        self.preds.push((name.to_owned(), arity));
        self
    }

    /// Declares a rigid constant up front.
    pub fn constant(mut self, name: &str, value: Value) -> Self {
        self.consts.push((name.to_owned(), value));
        self
    }

    /// Opens the session. See [`OpenSummary`] for what recovery found;
    /// error messages carry the failing path.
    pub fn open(self) -> Result<(Session, OpenSummary), Error> {
        let mut summary = OpenSummary::default();
        let mut snapshot = self.snapshot;
        let mut replay = self.replay;
        let mut deferred_store = None;
        if let Some(path) = &self.store {
            let (store, recovered) = Store::open_or_create(path)
                .map_err(|e| Error::Store(format!("cannot open store {}: {e}", path.display())))?;
            summary.truncated_bytes = recovered.truncated_bytes;
            snapshot = recovered.snapshot;
            replay = recovered.suffix;
            deferred_store = Some(store);
        }
        let group = match self.group {
            Some((wal, name)) => {
                let id = wal
                    .register(&name)
                    .map_err(|e| Error::Store(format!("cannot register session: {e}")))?;
                Some(GroupBinding { wal, id })
            }
            None => None,
        };

        if let Some(snap) = snapshot {
            // Resume: engine + statuses from the snapshot, triggers
            // from the app blob, then the logged suffix on top.
            let store_ctx = |e: &dyn std::fmt::Display| match &self.store {
                Some(path) => format!("cannot restore checkpoint from {}: {e}", path.display()),
                None => format!("cannot restore checkpoint: {e}"),
            };
            let (mut engine, app) =
                Engine::restore_bytes(&snap, self.opts).map_err(|e| Error::Store(store_ctx(&e)))?;
            let schema = engine.history().schema().clone();
            for payload in &replay {
                // The store is not attached yet, so replay is not
                // re-logged (and group replay is already in the log).
                let tx = tx_from_bytes(payload, &schema).map_err(|e| {
                    Error::Store(match &self.store {
                        Some(path) => {
                            format!("corrupt logged transaction in {}: {e}", path.display())
                        }
                        None => format!("corrupt logged transaction: {e}"),
                    })
                })?;
                engine.append(&tx).map_err(|e| {
                    Error::Session(format!("cannot replay logged transaction: {e}"))
                })?;
            }
            if let Some(store) = deferred_store.take() {
                engine.attach_store(store);
            }
            let trigger_defs = decode_app(&app, &schema)?;
            let mut triggers = TriggerEngine::new(self.opts);
            for (name, phi) in &trigger_defs {
                triggers
                    .add(Trigger {
                        name: name.clone(),
                        condition: phi.clone(),
                        action: Action::Log,
                    })
                    .map_err(|e| Error::Session(format!("cannot restore trigger '{name}': {e}")))?;
            }
            summary.resumed = true;
            summary.states = engine.history().len();
            summary.constraints = engine.constraints().count();
            summary.triggers = trigger_defs.len();
            summary.replayed = replay.len();
            let session = Session {
                name: self.name,
                opts: self.opts,
                phase: Phase::Running(Box::new(Running {
                    engine,
                    triggers,
                    trigger_defs,
                    pending: Transaction::new(),
                    pending_ops: 0,
                })),
                deferred_store: None,
                pending_replay: Vec::new(),
                group,
                counters: self.resume_counters.unwrap_or_default(),
            };
            return Ok((session, summary));
        }

        summary.pending_replay = replay.len();
        let mut session = Session {
            name: self.name,
            opts: self.opts,
            phase: Phase::Defining {
                preds: self.preds,
                consts: self.consts,
            },
            deferred_store,
            pending_replay: replay,
            group,
            counters: Counters::default(),
        };
        if session.declared_preds() > 0 {
            session.freeze()?;
            summary.states = session.history().map_or(0, |h| h.len());
            summary.replayed = std::mem::take(&mut summary.pending_replay);
        }
        Ok((session, summary))
    }
}

/// Encodes the session's trigger definitions into the checkpoint's
/// application blob.
fn encode_app(trigger_defs: &[(String, Formula)]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(APP_VERSION);
    e.usize(trigger_defs.len());
    for (name, phi) in trigger_defs {
        e.str(name);
        formula_encode(&mut e, phi);
    }
    e.into_bytes()
}

/// Decodes the application blob back into trigger definitions. An
/// empty blob (a checkpoint written by a non-session embedder) simply
/// restores no triggers.
fn decode_app(bytes: &[u8], schema: &Schema) -> Result<Vec<(String, Formula)>, Error> {
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let fail = |e: ticc_store::StoreError| {
        Error::Session(format!("corrupt session state in checkpoint: {e}"))
    };
    let mut d = Dec::new(bytes);
    let version = d.u32().map_err(fail)?;
    if version != APP_VERSION {
        return Err(Error::Session(format!(
            "checkpoint written by a newer session (app blob version {version}, \
             this build speaks {APP_VERSION})"
        )));
    }
    let n = d.usize().map_err(fail)?;
    let mut defs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str().map_err(fail)?.to_owned();
        let phi = formula_decode(&mut d, schema).map_err(fail)?;
        defs.push((name, phi));
    }
    d.finish().map_err(fail)?;
    Ok(defs)
}

/// Renders session statistics as the versioned
/// [`STATS_SCHEMA`] JSON object. `server` is a pre-rendered JSON
/// object spliced in verbatim by the server (null when absent);
/// durations are nanoseconds.
pub fn stats_json_with(stats: &SessionStats, server: Option<&str>) -> String {
    use std::fmt::Write as _;
    let s = &stats.engine;
    let mut o = String::from("{");
    let _ = write!(o, "\"schema\":\"{STATS_SCHEMA}\"");
    let _ = write!(o, ",\"appends\":{}", s.appends);
    let _ = write!(o, ",\"fast_appends\":{}", s.fast_appends);
    let _ = write!(o, ",\"grounds\":{}", s.grounds);
    let _ = write!(o, ",\"regrounds\":{}", s.regrounds);
    let _ = write!(o, ",\"delta_grounds\":{}", s.delta_grounds);
    let _ = write!(o, ",\"new_conjuncts\":{}", s.new_conjuncts);
    let _ = write!(o, ",\"replayed_conjuncts\":{}", s.replayed_conjuncts);
    let _ = write!(o, ",\"progress_steps\":{}", s.progress_steps);
    let _ = write!(o, ",\"encode_patched_atoms\":{}", s.encode_patched_atoms);
    let _ = write!(o, ",\"sat_checks\":{}", s.sat_checks);
    let _ = write!(
        o,
        ",\"automata\":{{\"templates_compiled\":{},\"automaton_states\":{},\
         \"automaton_insts\":{},\"automaton_appends\":{},\"automaton_steps\":{},\
         \"compile_time_ns\":{}}}",
        s.templates_compiled,
        s.automaton_states,
        s.automaton_insts,
        s.automaton_appends,
        s.automaton_steps,
        s.automaton_compile_time.as_nanos()
    );
    let _ = write!(
        o,
        ",\"cache\":{{\"sat_hits\":{},\"sat_evictions\":{},\"transition_hits\":{},\
         \"transition_misses\":{},\"transition_evictions\":{},\"letter_index_len\":{}}}",
        s.cache.sat_hits,
        s.cache.sat_evictions,
        s.cache.transition_hits,
        s.cache.transition_misses,
        s.cache.transition_evictions,
        s.cache.letter_index_len
    );
    let _ = write!(
        o,
        ",\"store\":{{\"tx_frames\":{},\"snapshot_frames\":{},\"bytes_written\":{},\
         \"fsyncs\":{},\"last_snapshot_bytes\":{},\"recovered_txs\":{},\"truncated_bytes\":{},\
         \"reclaimed_bytes\":{}}}",
        s.store.tx_frames,
        s.store.snapshot_frames,
        s.store.bytes_written,
        s.store.fsyncs,
        s.store.last_snapshot_bytes,
        s.store.recovered_txs,
        s.store.truncated_bytes,
        s.store.reclaimed_bytes
    );
    let _ = write!(
        o,
        ",\"history\":{{\"resident_states\":{},\"resident_bytes\":{},\"spilled_instants\":{},\
         \"spilled_distinct\":{},\"spilled_bytes\":{},\"truncations\":{},\"page_loads\":{},\
         \"reclaimed_bytes\":{}}}",
        s.history.resident_states,
        s.history.resident_bytes,
        s.history.spilled_instants,
        s.history.spilled_distinct,
        s.history.spilled_bytes,
        s.history.truncations,
        s.history.page_loads,
        s.history.reclaimed_bytes
    );
    let _ = write!(o, ",\"letters\":{}", s.letters);
    let _ = write!(o, ",\"arena_nodes\":{}", s.arena_nodes);
    let _ = write!(o, ",\"mappings\":{}", s.mappings);
    let _ = write!(o, ",\"inst_enumerated\":{}", s.inst_enumerated);
    let _ = write!(o, ",\"inst_pruned\":{}", s.inst_pruned);
    let _ = write!(o, ",\"inst_shared\":{}", s.inst_shared);
    let _ = write!(o, ",\"ground_time_ns\":{}", s.ground_time.as_nanos());
    let _ = write!(
        o,
        ",\"index_build_time_ns\":{}",
        s.index_build_time.as_nanos()
    );
    let _ = write!(o, ",\"progress_time_ns\":{}", s.progress_time.as_nanos());
    let _ = write!(o, ",\"sat_time_ns\":{}", s.sat_time.as_nanos());
    let _ = write!(o, ",\"par_phases\":{}", s.par_phases);
    let _ = write!(o, ",\"par_workers\":{}", s.par_workers);
    let _ = write!(o, ",\"par_time_ns\":{}", s.par_time.as_nanos());
    let _ = write!(o, ",\"par_busy_time_ns\":{}", s.par_busy_time.as_nanos());
    let _ = write!(o, ",\"pool_workers\":{}", s.pool_workers);
    let _ = write!(o, ",\"pool_buf_allocs\":{}", s.pool_buf_allocs);
    let _ = write!(o, ",\"batches\":{}", s.batches);
    let _ = write!(o, ",\"batched_txs\":{}", s.batched_txs);
    let _ = write!(
        o,
        ",\"session\":{{\"commits\":{},\"violations\":{},\"trigger_firings\":{},\
         \"constraints\":{},\"triggers\":{},\"history_len\":{},\"staged\":{},\"durable\":{}}}",
        stats.commits,
        stats.violations,
        stats.trigger_firings,
        stats.constraints,
        stats.triggers,
        stats.history_len,
        stats.staged,
        stats.durable
    );
    let _ = write!(o, ",\"server\":{}", server.unwrap_or("null"));
    o.push('}');
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_fotl::parser::parse;

    fn formula(session: &Session, src: &str) -> Formula {
        parse(&session.schema().expect("frozen"), src).expect("parses")
    }

    fn tx(session: &Session, pred: &str, v: Value) -> Transaction {
        let p = session.schema().unwrap().pred(pred).unwrap();
        Transaction::new().insert(p, vec![v])
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ticc-session-{tag}-{}.wal", std::process::id()))
    }

    #[test]
    fn lifecycle_defining_to_running() {
        let (mut s, summary) = Session::builder().open().unwrap();
        assert_eq!(summary, OpenSummary::default());
        assert!(s.is_defining());
        s.declare_pred("Sub", 1).unwrap();
        assert!(s.declare_pred("Sub", 2).is_err(), "duplicate symbol");
        assert!(s.declare_pred("Zero", 0).is_err(), "zero arity");
        s.freeze().unwrap();
        assert!(!s.is_defining());
        // Frozen means frozen.
        let err = s.declare_pred("Late", 1).unwrap_err();
        assert!(err.to_string().contains("frozen"), "{err}");
        // Idempotent.
        s.freeze().unwrap();
    }

    #[test]
    fn freeze_without_preds_is_an_error() {
        let (mut s, _) = Session::builder().open().unwrap();
        assert!(matches!(s.freeze(), Err(Error::Session(_))));
        let (mut s2, _) = Session::builder().open().unwrap();
        assert!(
            s2.commit().is_err(),
            "commit auto-freeze hits the same rule"
        );
    }

    #[test]
    fn builder_schema_opens_running() {
        let (mut s, summary) = Session::builder()
            .pred("Sub", 1)
            .constant("vip", 7)
            .open()
            .unwrap();
        assert!(!s.is_defining());
        assert_eq!(summary.states, 0);
        let phi = formula(&s, "G !Sub(vip)");
        let id = s.add_constraint("novip", phi).unwrap();
        let t = tx(&s, "Sub", 7);
        let out = s.append(&t).unwrap();
        assert_eq!(out.t, 0);
        assert_eq!(out.events.len(), 1, "constant resolves and violates");
        assert!(matches!(s.status(id), Status::Violated { .. }));
    }

    #[test]
    fn commit_folds_staged_ops_and_counts() {
        let (mut s, _) = Session::builder().pred("P", 1).open().unwrap();
        let p = s.schema().unwrap().pred("P").unwrap();
        s.stage(true, p, vec![1]).unwrap();
        s.stage(true, p, vec![2]).unwrap();
        assert_eq!(s.staged_ops(), 2);
        let out = s.commit().unwrap();
        assert_eq!(out.ops, 2);
        assert_eq!(s.staged_ops(), 0);
        assert_eq!(s.history().unwrap().len(), 1);
        let st = s.stats();
        assert_eq!(st.commits, 1);
        assert_eq!(st.history_len, 1);
        assert!(!st.durable);
    }

    #[test]
    fn triggers_fire_and_are_counted() {
        let (mut s, _) = Session::builder().pred("Sub", 1).open().unwrap();
        let cond = formula(&s, "F (Sub(x) & X F Sub(x))");
        s.add_trigger("dup", cond).unwrap();
        s.append(&tx(&s, "Sub", 2)).unwrap();
        let out = s.append(&tx(&s, "Sub", 2)).unwrap();
        assert_eq!(out.fired.len(), 1);
        assert_eq!(out.fired[0].name, "dup");
        assert_eq!(s.stats().trigger_firings, 1);
        assert_eq!(s.trigger_defs().len(), 1);
    }

    #[test]
    fn append_batch_commits_each_state() {
        // A batch must hand back one Committed per transaction —
        // events, trigger firings, and counters exactly as a
        // per-transaction append loop would produce them.
        let (mut s, _) = Session::builder().pred("Sub", 1).open().unwrap();
        let phi = formula(&s, "forall x. G (Sub(x) -> X G !Sub(x))");
        let id = s.add_constraint("once", phi).unwrap();
        let cond = formula(&s, "F (Sub(x) & X F Sub(x))");
        s.add_trigger("dup", cond).unwrap();
        let p = s.schema().unwrap().pred("Sub").unwrap();
        let txs = [
            Transaction::new().insert(p, vec![1]),
            Transaction::new().delete(p, vec![1]).insert(p, vec![2]),
            Transaction::new().delete(p, vec![2]).insert(p, vec![1]), // re-submission
        ];
        let out = s.append_batch(&txs).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].t, 0);
        assert!(out[0].events.is_empty());
        assert!(out[0].fired.is_empty(), "no duplicate yet at state 0");
        assert_eq!(out[2].t, 2);
        assert_eq!(out[2].events.len(), 1, "re-submission violates");
        assert_eq!(out[2].fired.len(), 1, "dup fires at the violating state");
        assert!(matches!(s.status(id), Status::Violated { .. }));
        let st = s.stats();
        assert_eq!(st.commits, 3);
        assert_eq!(st.violations, 1);
        assert_eq!(st.trigger_firings, 1);
        assert_eq!(st.engine.batches, 1);
        assert_eq!(st.engine.batched_txs, 3);
        assert_eq!(st.history_len, 3);
    }

    #[test]
    fn own_store_round_trip_via_builder() {
        let path = tmp("own-store");
        let _ = std::fs::remove_file(&path);
        {
            let (mut s, summary) = Session::builder()
                .store(&path)
                .pred("Sub", 1)
                .open()
                .unwrap();
            assert!(!summary.resumed);
            let phi = formula(&s, "forall x. G (Sub(x) -> X G !Sub(x))");
            s.add_constraint("once", phi).unwrap();
            s.append(&tx(&s, "Sub", 1)).unwrap();
            s.checkpoint().unwrap();
            let p = s.schema().unwrap().pred("Sub").unwrap();
            s.append(&Transaction::new().delete(p, vec![1])).unwrap();
        }
        let (mut s, summary) = Session::builder().store(&path).open().unwrap();
        assert!(summary.resumed);
        assert_eq!(summary.replayed, 1);
        assert_eq!(summary.states, 2);
        assert_eq!(summary.constraints, 1);
        let out = s.append(&tx(&s, "Sub", 1)).unwrap();
        assert_eq!(out.events.len(), 1, "restored constraint still live");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_backed_session_logs_and_recovers() {
        let path = tmp("group");
        let _ = std::fs::remove_file(&path);
        let wal = Arc::new(GroupWal::create(&path).unwrap());
        {
            let (mut s, _) = Session::builder()
                .name("alice")
                .options(
                    CheckOptions::builder()
                        .durability(Durability::WalFsync)
                        .build(),
                )
                .group(Arc::clone(&wal))
                .pred("Sub", 1)
                .open()
                .unwrap();
            assert!(s.has_store());
            let phi = formula(&s, "forall x. G (Sub(x) -> X G !Sub(x))");
            s.add_constraint("once", phi).unwrap();
            s.append(&tx(&s, "Sub", 1)).unwrap();
            assert!(s.compact().is_err(), "group logs cannot be compacted");
            s.close().unwrap();
        }
        drop(wal);
        // Recover via the group log: the closing checkpoint restores
        // the whole session without redeclaring the schema.
        let (wal, rec) = GroupWal::open(&path).unwrap();
        let wal = Arc::new(wal);
        let r = &rec.sessions[0];
        assert_eq!(r.name, "alice");
        let (mut s, summary) = Session::builder()
            .name("alice")
            .group(Arc::clone(&wal))
            .snapshot(r.snapshot.clone().expect("close checkpoints"))
            .replay(r.suffix.clone())
            .open()
            .unwrap();
        assert!(summary.resumed);
        assert_eq!(summary.constraints, 1);
        let out = s.append(&tx(&s, "Sub", 1)).unwrap();
        assert_eq!(out.events.len(), 1, "resubmission violates after recovery");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_json_is_v2_with_session_object() {
        let (mut s, _) = Session::builder().pred("P", 1).open().unwrap();
        s.append(&tx(&s, "P", 1)).unwrap();
        let j = s.stats_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"schema\":\"ticc-engine-stats-v2\""), "{j}");
        assert!(j.contains("\"appends\":1"), "{j}");
        assert!(j.contains("\"automata\":{\"templates_compiled\":"), "{j}");
        assert!(j.contains("\"pool_workers\":0"), "{j}");
        assert!(j.contains("\"batches\":0"), "{j}");
        assert!(j.contains("\"session\":{\"commits\":1"), "{j}");
        assert!(j.contains("\"server\":null"), "{j}");
        let spliced = stats_json_with(&s.stats(), Some("{\"sessions\":3}"));
        assert!(spliced.contains("\"server\":{\"sessions\":3}"), "{spliced}");
    }
}
