//! History-less checking of past constraints (Section 5 / future work).
//!
//! Section 5 of the paper discusses *Past FOTL* (Chomicki, ICDE 1992) and
//! *history-less* constraint evaluation: methods whose cost does not
//! depend on the length of the database history. For constraints of the
//! form `∀x1 … xk □ψ` with `ψ` a **past**, quantifier-free formula, this
//! is achievable exactly — and, by Proposition 2.1, every such formula
//! defines a safety property, so potential satisfaction coincides with
//! "ψ has held at every instant so far":
//!
//! * the truth of every subformula of `ψ` at instant `t` is a function
//!   of its truth at `t-1` and the current state (the `since`/`●`
//!   recurrences), so only one vector of booleans per ground
//!   substitution needs to be carried — **no history is stored**;
//! * substitutions range over the elements seen so far plus `k`
//!   symbolic fresh elements (the `z1 … zk` genericity device of
//!   Theorem 4.1): unseen elements are interchangeable, so when an
//!   element first appears its substitution states are cloned from the
//!   corresponding fresh pattern.
//!
//! Per-append cost is `O((|seen|+k)^k · |ψ|)`; memory is independent of
//! `t`. Cross-checked against the reference evaluator
//! (`ticc_fotl::eval`) in the tests.

use crate::error::Error;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use ticc_fotl::classify::external_prefix;
use ticc_fotl::{Atom, Formula, Term};
use ticc_tdb::{Schema, State, Value};

/// A ground element for substitution: seen value or symbolic fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum GElem {
    Seen(Value),
    Fresh(usize),
}

/// Former error type of the history-less monitor.
#[deprecated(since = "0.2.0", note = "use the unified `ticc_core::Error`")]
pub type PastError = Error;

/// Status of the monitored constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PastStatus {
    /// `ψ` has held at every instant so far.
    Satisfied,
    /// `ψ` failed at the recorded instant (0-based); by safety, the
    /// violation is permanent.
    Violated {
        /// The instant at which `ψ` first failed.
        at: usize,
    },
}

/// Indexed subformula DAG of the matrix.
struct SubIndex {
    /// Subformulas in topological (children-first) order.
    subs: Vec<Formula>,
    /// Formula → index.
    index: HashMap<Formula, usize>,
    /// Index of the matrix itself.
    root: usize,
}

impl SubIndex {
    fn build(matrix: &Formula) -> Self {
        let mut s = Self {
            subs: Vec::new(),
            index: HashMap::new(),
            root: 0,
        };
        s.root = s.add(matrix);
        s
    }

    fn add(&mut self, f: &Formula) -> usize {
        if let Some(&i) = self.index.get(f) {
            return i;
        }
        for c in f.children() {
            self.add(c);
        }
        let i = self.subs.len();
        self.subs.push(f.clone());
        self.index.insert(f.clone(), i);
        i
    }
}

/// The history-less monitor for one `∀x1 … xk □ψ` past constraint.
pub struct PastMonitor {
    schema: Arc<Schema>,
    consts: Vec<Value>,
    vars: Vec<String>,
    index: SubIndex,
    /// Per-substitution subformula truth vector at the previous instant.
    states: HashMap<Vec<GElem>, Vec<bool>>,
    seen: BTreeSet<Value>,
    t: usize,
    status: PastStatus,
}

impl PastMonitor {
    /// Compiles a `∀* □ψ` constraint (`ψ` past, quantifier-free).
    ///
    /// `const_values` interprets the schema's constant symbols (rigid).
    pub fn new(
        schema: Arc<Schema>,
        const_values: Vec<Value>,
        phi: &Formula,
    ) -> Result<Self, Error> {
        assert_eq!(const_values.len(), schema.const_count());
        let (vars, body) = external_prefix(phi);
        let vars: Vec<String> = vars.into_iter().map(str::to_owned).collect();
        // □ψ desugars to ¬(⊤ U ¬ψ): recognise that shape.
        let matrix = match body {
            Formula::Not(u) => match u.as_ref() {
                Formula::Until(t, nf) if **t == Formula::True => match nf.as_ref() {
                    Formula::Not(inner) => inner.as_ref().clone(),
                    other => other.clone().not(),
                },
                _ => return Err(Error::UnsupportedShape("expected □ψ after the ∀ prefix")),
            },
            _ => return Err(Error::UnsupportedShape("expected □ψ after the ∀ prefix")),
        };
        if !matrix.is_past() {
            return Err(Error::UnsupportedShape("matrix must be a past formula"));
        }
        if !matrix.is_quantifier_free() {
            return Err(Error::UnsupportedShape("matrix must be quantifier-free"));
        }
        if matrix.uses_extended_vocabulary() {
            return Err(Error::UnsupportedShape(
                "extended vocabulary is not supported",
            ));
        }
        let mut seen: BTreeSet<Value> = const_values.iter().copied().collect();
        collect_values(&matrix, &mut seen);
        let index = SubIndex::build(&matrix);
        Ok(Self {
            schema,
            consts: const_values,
            vars,
            index,
            states: HashMap::new(),
            seen,
            t: 0,
            status: PastStatus::Satisfied,
        })
    }

    /// Current status.
    pub fn status(&self) -> PastStatus {
        self.status
    }

    /// Number of instants consumed.
    pub fn instants(&self) -> usize {
        self.t
    }

    /// Number of tracked substitutions (memory gauge; grows with the
    /// active domain, never with `t`).
    pub fn tracked_substitutions(&self) -> usize {
        self.states.len()
    }

    /// Consumes the next database state; returns the status after it.
    pub fn append(&mut self, state: &State) -> PastStatus {
        if let PastStatus::Violated { .. } = self.status {
            self.t += 1;
            return self.status;
        }
        // Materialise substitution states for newly seen elements by
        // cloning the matching fresh patterns.
        let new_elems: Vec<Value> = state
            .active_domain()
            .into_iter()
            .filter(|v| !self.seen.contains(v))
            .collect();
        for &e in &new_elems {
            self.materialise(e);
            self.seen.insert(e);
        }

        // The substitution domain: seen ∪ fresh markers.
        let k = self.vars.len();
        let mut domain: Vec<GElem> = self.seen.iter().map(|&v| GElem::Seen(v)).collect();
        for i in 0..k {
            domain.push(GElem::Fresh(i));
        }

        let mut failed = false;
        for sub in vectors(&domain, k) {
            let prev = self.states.get(&sub);
            let cur = self.step(state, &sub, prev);
            if !cur[self.index.root] {
                failed = true;
            }
            self.states.insert(sub, cur);
        }
        if failed {
            self.status = PastStatus::Violated { at: self.t };
        }
        self.t += 1;
        self.status
    }

    /// Clones fresh-pattern states for a newly appearing element: the
    /// pattern with `e` is obtained from the pattern with an unused
    /// fresh marker in `e`'s positions.
    fn materialise(&mut self, e: Value) {
        if self.t == 0 {
            return; // no prior states to inherit
        }
        let k = self.vars.len();
        if k == 0 {
            return;
        }
        let mut domain: Vec<GElem> = self.seen.iter().map(|&v| GElem::Seen(v)).collect();
        domain.push(GElem::Seen(e));
        for i in 0..k {
            domain.push(GElem::Fresh(i));
        }
        for sub in vectors(&domain, k) {
            if !sub.contains(&GElem::Seen(e)) || self.states.contains_key(&sub) {
                continue;
            }
            // Replace every occurrence of e by an unused fresh marker.
            let used: BTreeSet<usize> = sub
                .iter()
                .filter_map(|g| match g {
                    GElem::Fresh(i) => Some(*i),
                    _ => None,
                })
                .collect();
            let spare = (0..k)
                .find(|i| !used.contains(i))
                .expect("a vector of length k containing e uses at most k-1 other fresh markers");
            let pattern: Vec<GElem> = sub
                .iter()
                .map(|&g| {
                    if g == GElem::Seen(e) {
                        GElem::Fresh(spare)
                    } else {
                        g
                    }
                })
                .collect();
            if let Some(st) = self.states.get(&pattern) {
                let st = st.clone();
                self.states.insert(sub, st);
            }
        }
    }

    /// Computes the subformula truth vector at the current instant.
    fn step(&self, state: &State, sub: &[GElem], prev: Option<&Vec<bool>>) -> Vec<bool> {
        let n = self.index.subs.len();
        let mut cur = vec![false; n];
        for i in 0..n {
            cur[i] = match &self.index.subs[i] {
                Formula::True => true,
                Formula::False => false,
                Formula::Atom(a) => self.atom(a, state, sub),
                Formula::Not(g) => !cur[self.index.index[g.as_ref()]],
                Formula::And(a, b) => {
                    cur[self.index.index[a.as_ref()]] && cur[self.index.index[b.as_ref()]]
                }
                Formula::Or(a, b) => {
                    cur[self.index.index[a.as_ref()]] || cur[self.index.index[b.as_ref()]]
                }
                Formula::Implies(a, b) => {
                    !cur[self.index.index[a.as_ref()]] || cur[self.index.index[b.as_ref()]]
                }
                Formula::Prev(g) => prev.is_some_and(|p| p[self.index.index[g.as_ref()]]),
                Formula::Since(a, b) => {
                    // a S b ≡ b ∨ (a ∧ ●(a S b))
                    cur[self.index.index[b.as_ref()]]
                        || (cur[self.index.index[a.as_ref()]] && prev.is_some_and(|p| p[i]))
                }
                other => unreachable!("non-past subformula {other:?} (checked in new)"),
            };
        }
        cur
    }

    fn term(&self, t: &Term, sub: &[GElem]) -> GElem {
        match t {
            Term::Var(v) => {
                let i = self
                    .vars
                    .iter()
                    .position(|w| w == v)
                    .expect("closed constraint: all variables externally bound");
                sub[i]
            }
            Term::Const(c) => GElem::Seen(self.consts[c.index()]),
            Term::Value(v) => GElem::Seen(*v),
        }
    }

    fn atom(&self, a: &Atom, state: &State, sub: &[GElem]) -> bool {
        match a {
            Atom::Eq(t1, t2) => self.term(t1, sub) == self.term(t2, sub),
            Atom::Pred(p, ts) => {
                let mut tuple = Vec::with_capacity(ts.len());
                for t in ts {
                    match self.term(t, sub) {
                        GElem::Seen(v) => tuple.push(v),
                        // Fresh elements satisfy no database predicate.
                        GElem::Fresh(_) => return false,
                    }
                }
                state.holds(*p, &tuple)
            }
            Atom::Leq(_, _) | Atom::Succ(_, _) | Atom::Zero(_) => {
                unreachable!("extended vocabulary rejected in new")
            }
        }
    }

    /// The schema this monitor was built against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

fn collect_values(f: &Formula, out: &mut BTreeSet<Value>) {
    if let Formula::Atom(a) = f {
        for t in a.terms() {
            if let Term::Value(v) = t {
                out.insert(*v);
            }
        }
    }
    for c in f.children() {
        collect_values(c, out);
    }
}

/// All vectors of length `r` over `items`.
fn vectors(items: &[GElem], r: usize) -> Vec<Vec<GElem>> {
    let mut out = vec![vec![]];
    for _ in 0..r {
        let mut next = Vec::with_capacity(out.len() * items.len());
        for v in &out {
            for &a in items {
                let mut w = v.clone();
                w.push(a);
                next.push(w);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_fotl::eval::EvalOptions;
    use ticc_fotl::parser::parse;
    use ticc_tdb::History;

    fn order_schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    /// The audit constraint: every fill was preceded by a submission.
    const AUDIT: &str = "forall x. G (Fill(x) -> O Sub(x))";

    fn states(spec: &[(&[Value], &[Value])], sc: &Arc<Schema>) -> Vec<State> {
        spec.iter()
            .map(|(subs, fills)| {
                let mut s = State::empty(sc.clone());
                for &v in *subs {
                    s.insert_named("Sub", vec![v]).unwrap();
                }
                for &v in *fills {
                    s.insert_named("Fill", vec![v]).unwrap();
                }
                s
            })
            .collect()
    }

    #[test]
    fn audit_constraint_clean_and_dirty() {
        let sc = order_schema();
        let phi = parse(&sc, AUDIT).unwrap();
        let mut m = PastMonitor::new(sc.clone(), vec![], &phi).unwrap();
        // Clean: sub 1, fill 1, fill-of-1-again (still fine: O Sub(1)).
        for s in states(&[(&[1], &[]), (&[], &[1]), (&[], &[1])], &sc) {
            assert_eq!(m.append(&s), PastStatus::Satisfied);
        }
        // Dirty: fill 2 without any submission.
        let mut m2 = PastMonitor::new(sc.clone(), vec![], &phi).unwrap();
        let sts = states(&[(&[1], &[]), (&[], &[2])], &sc);
        assert_eq!(m2.append(&sts[0]), PastStatus::Satisfied);
        assert_eq!(m2.append(&sts[1]), PastStatus::Violated { at: 1 });
        // Permanent.
        assert_eq!(
            m2.append(&State::empty(sc.clone())),
            PastStatus::Violated { at: 1 }
        );
    }

    #[test]
    fn agrees_with_reference_evaluator_on_random_histories() {
        use ticc_tdb::rng::Rng;
        let sc = order_schema();
        let phi = parse(&sc, AUDIT).unwrap();
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let mut h = History::new(sc.clone());
            let mut m = PastMonitor::new(sc.clone(), vec![], &phi).unwrap();
            let mut reference_violation: Option<usize> = None;
            for t in 0..8 {
                let mut s = State::empty(sc.clone());
                for v in 0..3u64 {
                    if rng.gen_bool(0.3) {
                        s.insert_named("Sub", vec![v]).unwrap();
                    }
                    if rng.gen_bool(0.3) {
                        s.insert_named("Fill", vec![v]).unwrap();
                    }
                }
                h.push_state(s.clone());
                m.append(&s);
                if reference_violation.is_none() {
                    // ψ must hold at every instant ≤ t: check instant t.
                    let body = parse(&sc, "Fill(x) -> O Sub(x)").unwrap();
                    let f = Formula::forall("x", body);
                    let ok = ticc_fotl::eval::eval(
                        &h,
                        &f,
                        t,
                        &Default::default(),
                        &EvalOptions::default(),
                    )
                    .unwrap();
                    if !ok {
                        reference_violation = Some(t);
                    }
                }
            }
            let expected = match reference_violation {
                Some(at) => PastStatus::Violated { at },
                None => PastStatus::Satisfied,
            };
            assert_eq!(m.status(), expected, "seed {seed}");
        }
    }

    #[test]
    fn two_variable_past_constraint() {
        // ∀x∀y □((Fill(x) ∧ Fill(y)) → x = y): at most one fill per
        // instant.
        let sc = order_schema();
        let phi = parse(&sc, "forall x y. G (Fill(x) & Fill(y) -> x = y)").unwrap();
        let mut m = PastMonitor::new(sc.clone(), vec![], &phi).unwrap();
        let ok = states(&[(&[1, 2], &[]), (&[], &[1])], &sc);
        for s in ok {
            assert_eq!(m.append(&s), PastStatus::Satisfied);
        }
        let bad = states(&[(&[], &[1, 2])], &sc)[0].clone();
        assert_eq!(m.append(&bad), PastStatus::Violated { at: 2 });
    }

    #[test]
    fn since_chains_track_correctly() {
        // ∀x □(Fill(x) → (¬Sub(x)) S Sub(x)) — x was submitted and not
        // re-submitted since. A resubmission then fill trips it only if
        // the formula demands so; here resubmission RESETS the since, so
        // fill after resubmission is fine, but fill with NO submission
        // ever is a violation.
        let sc = order_schema();
        let phi = parse(&sc, "forall x. G (Fill(x) -> ((!Sub(x)) S Sub(x)))").unwrap();
        let mut m = PastMonitor::new(sc.clone(), vec![], &phi).unwrap();
        let seq = states(&[(&[1], &[]), (&[], &[1]), (&[1], &[]), (&[], &[1])], &sc);
        for s in seq {
            assert_eq!(m.append(&s), PastStatus::Satisfied);
        }
        assert_eq!(
            m.append(&states(&[(&[], &[9])], &sc)[0]),
            PastStatus::Violated { at: 4 }
        );
    }

    #[test]
    fn memory_grows_with_domain_not_history() {
        let sc = order_schema();
        let phi = parse(&sc, AUDIT).unwrap();
        let mut m = PastMonitor::new(sc.clone(), vec![], &phi).unwrap();
        let s = states(&[(&[1, 2], &[])], &sc)[0].clone();
        m.append(&s);
        let after_one = m.tracked_substitutions();
        for _ in 0..100 {
            m.append(&State::empty(sc.clone()));
        }
        assert_eq!(
            m.tracked_substitutions(),
            after_one,
            "memory must not grow with history length"
        );
        assert_eq!(m.instants(), 101);
    }

    #[test]
    fn rejects_unsupported_shapes() {
        let sc = order_schema();
        for src in [
            "forall x. G F Sub(x)",             // future matrix
            "forall x. F Sub(x)",               // not □ψ
            "forall x. G (exists y. O Sub(y))", // quantified matrix
        ] {
            let phi = parse(&sc, src).unwrap();
            assert!(
                PastMonitor::new(sc.clone(), vec![], &phi).is_err(),
                "{src} should be rejected"
            );
        }
        // Pure-FO matrix is fine (past includes present-only).
        let phi = parse(&sc, "forall x. G !Fill(x)").unwrap();
        assert!(PastMonitor::new(sc.clone(), vec![], &phi).is_ok());
    }

    #[test]
    fn fresh_pattern_materialisation_is_sound() {
        // Element 7 appears only at t=2; its past must look like a fresh
        // element's (never submitted), so Fill(7) at t=2 violates.
        let sc = order_schema();
        let phi = parse(&sc, AUDIT).unwrap();
        let mut m = PastMonitor::new(sc.clone(), vec![], &phi).unwrap();
        let seq = states(&[(&[1], &[]), (&[], &[1])], &sc);
        for s in seq {
            assert_eq!(m.append(&s), PastStatus::Satisfied);
        }
        assert_eq!(
            m.append(&states(&[(&[], &[7])], &sc)[0]),
            PastStatus::Violated { at: 2 }
        );
    }
}
