//! Temporal integrity checking — the core of Chomicki & Niwiński (PODS
//! 1993).
//!
//! Given a finite history `D = (D0, …, Dt)` and a *universal safety
//! sentence* `φ ≡ ∀x1 … xk ψ` (external universal quantifiers only,
//! quantifier-free matrix under the future temporal connectives), this
//! crate decides **potential constraint satisfaction**: does `D` extend
//! to an infinite temporal database satisfying `φ`?
//!
//! The pipeline is the paper's Section 4:
//!
//! 1. [`mod@ground`] — Theorem 4.1: reduce `(D, φ)` to a propositional
//!    temporal formula `φ_D` over the vocabulary `L_D` (letters `(a=b)`
//!    and `p(a1,…,ar)` for `a_i ∈ M ∪ CL`, `M = R_D ∪ {z1…zk}`) plus a
//!    propositional state sequence `w_D`;
//! 2. [`extension`] — Theorem 4.2: decide whether `w_D` extends to a
//!    model of `φ_D` via prefix rewriting + PTL satisfiability
//!    (Lemma 4.2, implemented in `ticc-ptl`), in time
//!    `O(t·(|φ|·|R_D|)^max(k,l)) + 2^O((|φ|·|R_D|)^max(k,l))`.
//!
//! On top of the decision procedure:
//! * [`monitor`] — an online incremental integrity monitor (progress one
//!   propositional state per update on the fast path; re-ground when new
//!   relevant elements appear);
//! * [`trigger`] — condition–action triggers via the paper's duality:
//!   *"if C then A" fires for θ iff `¬Cθ` is **not** potentially
//!   satisfied*;
//! * [`diagnostics`] — earliest-violation search;
//! * [`counter`] — the binary-counter constraint family realising the
//!   exponential lower-bound shape argued in Section 6.

pub mod counter;
pub mod diagnostics;
pub mod explain;
pub mod extension;
pub mod ground;
pub mod monitor;
pub mod past;
pub mod trigger;

pub use explain::explain;
pub use extension::{check_potential_satisfaction, CheckOptions, CheckOutcome, CheckStats};
pub use ground::{ground, GroundError, GroundMode, GroundStats, Grounding};
pub use monitor::{ConstraintId, Monitor, MonitorEvent, Status};
pub use trigger::{Action, FiredTrigger, Trigger, TriggerEngine};
