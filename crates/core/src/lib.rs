//! Temporal integrity checking — the core of Chomicki & Niwiński (PODS
//! 1993).
//!
//! Given a finite history `D = (D0, …, Dt)` and a *universal safety
//! sentence* `φ ≡ ∀x1 … xk ψ` (external universal quantifiers only,
//! quantifier-free matrix under the future temporal connectives), this
//! crate decides **potential constraint satisfaction**: does `D` extend
//! to an infinite temporal database satisfying `φ`?
//!
//! The pipeline is the paper's Section 4:
//!
//! 1. [`mod@ground`] — Theorem 4.1: reduce `(D, φ)` to a propositional
//!    temporal formula `φ_D` over the vocabulary `L_D` (letters `(a=b)`
//!    and `p(a1,…,ar)` for `a_i ∈ M ∪ CL`, `M = R_D ∪ {z1…zk}`) plus a
//!    propositional state sequence `w_D`;
//! 2. [`extension`] — Theorem 4.2: decide whether `w_D` extends to a
//!    model of `φ_D` via prefix rewriting + PTL satisfiability
//!    (Lemma 4.2, implemented in `ticc-ptl`), in time
//!    `O(t·(|φ|·|R_D|)^max(k,l)) + 2^O((|φ|·|R_D|)^max(k,l))`.
//!
//! On top of the decision procedure sits one shared persistent layer:
//! * [`engine`] — the incremental [`Engine`]: per-constraint grounding
//!   contexts with residue progression, memoised satisfiability, and
//!   **delta re-grounding** (when `R_D` grows by Δ, only instantiations
//!   mentioning Δ are ground and replayed through the stored trace —
//!   `O(t·|Δ-part|)` instead of `O(t·|φ_D|)`);
//! * [`obs`] — the observability spine: [`EngineStats`] counters,
//!   gauges, and timers, rendered by the shell's `:stats` command.
//!
//! Its consumers:
//! * [`monitor`] — the online integrity monitor, a thin [`Engine`]
//!   facade;
//! * [`trigger`] — condition–action triggers via the paper's duality:
//!   *"if C then A" fires for θ iff `¬Cθ` is **not** potentially
//!   satisfied*;
//! * [`extension`] — one-shot potential-satisfaction checks
//!   (Theorem 4.2) through the engine's `check_once` path;
//! * [`diagnostics`] — earliest-violation search;
//! * [`counter`] — the binary-counter constraint family realising the
//!   exponential lower-bound shape argued in Section 6.

pub mod counter;
pub mod diagnostics;
pub mod engine;
pub mod error;
pub mod explain;
pub mod extension;
pub mod ground;
pub mod monitor;
pub mod obs;
pub mod par;
pub mod past;
pub mod session;
pub mod snapshot;
pub mod spill;
pub mod trigger;
pub mod window;

pub use diagnostics::earliest_violation;
pub use engine::{Engine, GroundingContext, Notion, OpenReport, Regrounding};
pub use error::Error;
pub use explain::explain;
pub use extension::{
    check_potential_satisfaction, CheckOptions, CheckOptionsBuilder, CheckOutcome, CheckStats,
    Durability, Encoding, HistoryBudget,
};
pub use ground::{
    ground, ground_opts, ground_with, GroundError, GroundMode, GroundStats, GroundStrategy,
    Grounding, LetterKey,
};
pub use monitor::{ConstraintId, Monitor, MonitorEvent, MonitorStats, Status};
pub use obs::{CacheStats, EngineStats, HistoryStats};
pub use par::{Threads, WorkerPool};
pub use session::{
    stats_json_with, Committed, OpenSummary, ParkedSession, Session, SessionBuilder, SessionStats,
    STATS_SCHEMA, STATS_SCHEMA_V1,
};
pub use ticc_store::{GroupStats, GroupWal, Store, StoreError, StoreStats};
pub use trigger::{Action, FiredTrigger, Trigger, TriggerEngine};
pub use window::{past_depth, retention_floor, PastDepth};
