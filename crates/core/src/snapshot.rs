//! Engine snapshot codec — the serialisation half of the durability
//! layer.
//!
//! Theorem 4.1 is what makes an engine snapshot *small*: the monitor
//! never needs the history to keep checking, only the current database
//! and, per constraint, the grounding vocabulary plus the progressed
//! residue. A snapshot therefore serialises the schema, the constant
//! interpretation, the database states, and for every registered
//! constraint a grounding dump (arena nodes, letter table, trace,
//! known-value universe) together with the residue id — everything a
//! restore needs to be *bit-identical* to the engine that wrote it:
//! same atom ids, same formula ids, same residues, so the restored
//! engine and a never-crashed twin progress in lockstep.
//!
//! The byte format reuses the `ticc-store` primitives: canonical LEB128
//! varints ([`Enc`]/[`Dec`]) and the shared schema/formula/transaction
//! codec. Every id decoded from the payload is validated against the
//! table it references, so corrupt snapshot bytes surface as
//! [`Error::Store`] instead of a panic or an out-of-bounds index.

use crate::engine::{CompiledSet, Engine, Entry, GroundingContext, Notion, Status, Unit};
use crate::error::Error;
use crate::extension::CheckOptions;
use crate::ground::{GArg, GroundMode, GroundStats, Grounding, GroundingDump, LetterKey};
use crate::obs::{CacheStats, EngineStats, HistoryStats};
use crate::spill::HistoryPager;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use ticc_ptl::arena::{AtomId, FormulaId, Node};
use ticc_ptl::automaton::{self, CanonNode, CompileLimits, TemplateKey};
use ticc_ptl::trace::PropState;
use ticc_store::codec::{formula_decode, formula_encode, schema_decode, schema_encode};
use ticc_store::{Dec, Enc, StoreError};
use ticc_tdb::{ConstId, History, PredId, State};

/// Version of the snapshot payload layout. Bump on any change to the
/// byte format. [`restore_engine`] accepts the current version, v3,
/// and v2: a v2 payload has no compiled-automaton section, so a v2
/// restore recompiles template automata from the symbolic residue on
/// load; v3 predates bounded-memory histories, so it decodes with a
/// zero truncation base. A v4 payload stays fully self-contained under
/// truncation — the distinct-state table leads with the spill tier's
/// pages (in page-id order, so cold per-instant indices are page ids)
/// followed by resident states deduped against them, and the history
/// section carries the truncation base plus the frozen active-domain
/// set. Restore rebuilds the same tiered shape it wrote: cold instants
/// are re-spilled to a fresh pager instead of being materialised, so a
/// restart's resident footprint matches the writer's.
pub const SNAP_VERSION: u32 = 4;

fn corrupt(msg: &str) -> Error {
    Error::Store(format!("snapshot: {msg}"))
}

/// Serialises the complete engine state plus an opaque application
/// blob (the shell stores its trigger definitions there). The result
/// is what [`Engine::checkpoint`] writes as a snapshot frame.
pub fn snapshot_engine(engine: &Engine, app: &[u8]) -> Vec<u8> {
    snapshot_engine_at(engine, app, SNAP_VERSION)
}

/// Version-parameterised encoder. Only the current version is written
/// in production; the v2 layout (no compiled section, no automaton
/// stats tail) is kept encodable so the restore path's backward
/// compatibility stays testable against real v2 bytes. A v2 encode of
/// a compiled context would lose its state (the symbolic residue is
/// held at `⊤` while compiled), hence the debug assertion.
fn snapshot_engine_at(engine: &Engine, app: &[u8], version: u32) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(version);
    let history = engine.history();
    let schema = history.schema();
    schema_encode(&mut e, schema);
    for c in schema.consts() {
        e.u64(history.const_value(c));
    }
    e.u8(match engine.notion() {
        Notion::Potential => 0,
        Notion::BadPrefix => 1,
    });
    // Distinct-state table + per-instant indices: long histories repeat
    // states heavily (churn workloads cycle through a handful of
    // databases), so both the wire size and the decode cost of the
    // history section scale with the number of *distinct* states.
    //
    // A truncated history contributes its spill pages first, in
    // page-id order (so a cold instant's table index is its page id),
    // then the resident states deduped against them — the snapshot is
    // fully self-contained regardless of budget, and the spill segment
    // itself never needs to survive a crash.
    debug_assert!(
        version >= 4 || history.base() == 0,
        "pre-v4 layouts cannot carry a truncated history"
    );
    let mut distinct: Vec<State> = Vec::new();
    let mut index_of: std::collections::HashMap<Vec<u8>, usize> = std::collections::HashMap::new();
    let mut indices: Vec<usize> = Vec::with_capacity(history.len());
    if version >= 4 && history.base() > 0 {
        let pager = engine
            .pager
            .as_ref()
            .expect("truncated history has a pager");
        for id in 0..pager.distinct() as u32 {
            let bytes = pager
                .page_bytes(id)
                .expect("spill segment unreadable during snapshot");
            let state =
                state_decode(&mut Dec::new(&bytes), schema).expect("spill page fails to decode");
            index_of.insert(bytes, id as usize);
            distinct.push(state);
        }
        for t in 0..history.base() {
            indices.push(pager.page_of(t).expect("spilled instant missing") as usize);
        }
    }
    for state in history.states() {
        let mut se = Enc::new();
        state_encode(&mut se, schema, state);
        let idx = *index_of.entry(se.into_bytes()).or_insert_with(|| {
            distinct.push(state.clone());
            distinct.len() - 1
        });
        indices.push(idx);
    }
    e.usize(distinct.len());
    for state in &distinct {
        state_encode(&mut e, schema, state);
    }
    e.usize(indices.len());
    for idx in indices {
        e.usize(idx);
    }
    if version >= 4 {
        e.usize(history.base());
        let frozen = history.frozen();
        e.usize(frozen.len());
        for &v in frozen {
            e.u64(v);
        }
    }
    let mut stats = engine.stats;
    if let Some(p) = engine.pager.as_ref() {
        stats.history.page_loads += p.loads();
    }
    stats_encode(&mut e, &stats, version);
    e.usize(engine.entries.len());
    for entry in &engine.entries {
        e.str(&entry.name);
        formula_encode(&mut e, &entry.phi);
        match entry.status {
            Status::Satisfied => e.u8(0),
            Status::Violated { at } => {
                e.u8(1);
                e.usize(at);
            }
        }
        // Kind tag: 0 = symbolic residue, 1 = compiled automata. A
        // compiled context's `residue()` is held at `⊤`; its live
        // state is the template/unit section, persisted so a restore
        // resumes u32-state stepping without replaying the prefix.
        if version >= 3 {
            match entry.ctx.compiled.as_ref() {
                None => {
                    e.u8(0);
                    e.u32(entry.ctx.residue().0);
                }
                Some(set) => {
                    e.u8(1);
                    compiled_encode(&mut e, set);
                }
            }
        } else {
            debug_assert!(
                entry.ctx.compiled.is_none(),
                "v2 layout cannot carry compiled-automaton state"
            );
            e.u32(entry.ctx.residue().0);
        }
        dump_encode(&mut e, &entry.ctx.grounding().dump());
    }
    e.bytes(app);
    e.into_bytes()
}

/// Rebuilds an engine from a snapshot payload. Returns the engine
/// (without a store attached — the caller attaches one) and the
/// application blob the snapshot carried. `opts` are the caller's: run
/// options (threads, caches, durability) are a property of the process,
/// not of the persisted state.
pub fn restore_engine(bytes: &[u8], opts: CheckOptions) -> Result<(Engine, Vec<u8>), Error> {
    let mut d = Dec::new(bytes);
    let version = d.u32()?;
    if version != SNAP_VERSION && version != 3 && version != 2 {
        return Err(corrupt(&format!(
            "unsupported snapshot version {version} (expected {SNAP_VERSION}, 3, or 2)"
        )));
    }
    let schema = schema_decode(&mut d)?;
    let mut consts = Vec::with_capacity(schema.const_count());
    for _ in schema.consts() {
        consts.push(d.u64()?);
    }
    let notion = match d.u8()? {
        0 => Notion::Potential,
        1 => Notion::BadPrefix,
        n => return Err(corrupt(&format!("unknown notion tag {n}"))),
    };
    let n_distinct = d.usize()?;
    let mut distinct: Vec<State> = Vec::with_capacity(n_distinct.min(65536));
    for _ in 0..n_distinct {
        distinct.push(state_decode(&mut d, &schema)?);
    }
    let n_states = d.usize()?;
    let mut state_idxs: Vec<usize> = Vec::with_capacity(n_states.min(65536));
    for _ in 0..n_states {
        let idx = d.usize()?;
        if idx >= distinct.len() {
            return Err(corrupt("state index out of range"));
        }
        state_idxs.push(idx);
    }
    let (base, frozen) = if version >= 4 {
        let base = d.usize()?;
        if base > state_idxs.len() {
            return Err(corrupt("truncation base out of range"));
        }
        let n = d.usize()?;
        let mut frozen = BTreeSet::new();
        for _ in 0..n {
            frozen.insert(d.u64()?);
        }
        (base, frozen)
    } else {
        (0, BTreeSet::new())
    };
    // Rebuild the writer's tiered shape: cold instants are re-spilled
    // to a fresh pager (deduped pages, not materialised states), the
    // resident suffix becomes the in-memory history. A restart's
    // resident footprint therefore matches the writer's — this is
    // what makes recovery from a truncated checkpoint cheap.
    let mut pager = None;
    if base > 0 {
        let mut p = HistoryPager::new(schema.clone())?;
        for &idx in &state_idxs[..base] {
            let mut se = Enc::new();
            state_encode(&mut se, &schema, &distinct[idx]);
            p.spill_encoded(&se.into_bytes())?;
        }
        pager = Some(p);
    }
    let resident: Vec<State> = state_idxs[base..]
        .iter()
        .map(|&idx| distinct[idx].clone())
        .collect();
    let history = History::from_parts(schema.clone(), consts, base, frozen, resident);
    let stats = stats_decode(&mut d, version)?;
    let n_entries = d.usize()?;
    let mut entries = Vec::new();
    enum Persisted {
        Symbolic(FormulaId),
        Compiled(RawCompiled),
    }
    for _ in 0..n_entries {
        let name = d.str()?.to_owned();
        let phi = formula_decode(&mut d, &schema)?;
        let status = match d.u8()? {
            0 => Status::Satisfied,
            1 => Status::Violated { at: d.usize()? },
            n => return Err(corrupt(&format!("unknown status tag {n}"))),
        };
        let persisted = if version >= 3 {
            match d.u8()? {
                0 => Persisted::Symbolic(FormulaId(d.u32()?)),
                1 => Persisted::Compiled(compiled_decode(&mut d)?),
                n => return Err(corrupt(&format!("unknown residue kind tag {n}"))),
            }
        } else {
            Persisted::Symbolic(FormulaId(d.u32()?))
        };
        let dump = dump_decode(&mut d, &schema)?;
        let mut g = Grounding::restore(schema.clone(), dump)
            .map_err(|m| corrupt(&format!("grounding: {m}")))?;
        let mut ctx = match persisted {
            Persisted::Symbolic(residue) => {
                if residue.index() >= g.arena.dag_len() {
                    return Err(corrupt("residue id out of range"));
                }
                let mut ctx = GroundingContext::from_parts(g, residue);
                if version < 3 {
                    // v2 payloads predate compiled automata: recompile
                    // on load so old snapshots pick up the strategy.
                    // A v3 symbolic entry stays symbolic — the writer
                    // already decided (budget bail, notion, knob).
                    ctx.try_compile(notion, &opts);
                }
                ctx
            }
            Persisted::Compiled(raw) => {
                let set = rebind_compiled(raw, &mut g, &opts)?;
                let tru = g.arena.tru();
                let mut ctx = GroundingContext::from_parts(g, tru);
                ctx.compiled = Some(set);
                if !opts.template_automata || notion == Notion::BadPrefix {
                    // Run options are the caller's: with the knob off
                    // (or under the bad-prefix notion) the restored
                    // state decompiles to the symbolic residue now.
                    ctx.decompile();
                }
                ctx
            }
        };
        // Compile time is a build-phase gauge of this process, like
        // the wall-clock timers below: a restored engine restarts it
        // at zero (recompiles during restore are accounted to the
        // restore itself, never to the append path).
        ctx.compile_time = Duration::ZERO;
        entries.push(Entry {
            name,
            phi,
            status,
            ctx,
        });
    }
    let app = d.bytes()?.to_vec();
    d.finish()?;
    let mut engine = Engine::with_history(history, opts);
    engine.set_notion(notion);
    engine.entries = entries;
    engine.stats = stats;
    engine.pager = pager;
    // The snapshot covers everything it restored: budget enforcement
    // may truncate up to here before the next checkpoint is written.
    engine.checkpointed_len = engine.history().len();
    // Wall-clock timers measure this process, not the one that wrote
    // the snapshot: a resumed engine reports the time it spent itself,
    // so `stats --json` after a restore starts the clocks at zero.
    engine.stats.ground_time = Duration::ZERO;
    engine.stats.progress_time = Duration::ZERO;
    engine.stats.sat_time = Duration::ZERO;
    engine.stats.par_time = Duration::ZERO;
    engine.stats.par_busy_time = Duration::ZERO;
    engine.stats.index_build_time = Duration::ZERO;
    Ok((engine, app))
}

/// Canonical state codec, shared with the spill tier
/// ([`crate::spill::HistoryPager`]): per predicate in schema order, a
/// tuple count then the raw tuple values. Identical bytes ⟺ identical
/// states, which is what both the snapshot's distinct-state dedup and
/// the pager's page dedup rely on.
pub(crate) fn state_encode(e: &mut Enc, schema: &ticc_tdb::Schema, state: &State) {
    for p in schema.preds() {
        let rel = state.relation(p);
        e.usize(rel.len());
        for tuple in rel.iter() {
            for &v in tuple {
                e.u64(v);
            }
        }
    }
}

/// Decodes one state written by [`state_encode`].
pub(crate) fn state_decode(
    d: &mut Dec<'_>,
    schema: &Arc<ticc_tdb::Schema>,
) -> Result<State, Error> {
    let mut s = State::empty(schema.clone());
    for p in schema.preds() {
        let n = d.usize()?;
        let arity = schema.arity(p);
        for _ in 0..n {
            let mut tuple = Vec::with_capacity(arity);
            for _ in 0..arity {
                tuple.push(d.u64()?);
            }
            s.insert(p, tuple)
                .map_err(|e| corrupt(&format!("state tuple rejected: {e}")))?;
        }
    }
    Ok(s)
}

fn duration_encode(e: &mut Enc, d: Duration) {
    e.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

fn duration_decode(d: &mut Dec<'_>) -> Result<Duration, StoreError> {
    Ok(Duration::from_nanos(d.u64()?))
}

fn stats_encode(e: &mut Enc, s: &EngineStats, version: u32) {
    for v in [
        s.appends,
        s.fast_appends,
        s.grounds,
        s.regrounds,
        s.delta_grounds,
        s.new_conjuncts,
        s.replayed_conjuncts,
        s.progress_steps,
        s.encode_patched_atoms,
        s.sat_checks,
        s.cache.sat_hits,
        s.cache.sat_evictions,
        s.cache.transition_hits,
        s.cache.transition_misses,
        s.cache.transition_evictions,
        s.par_phases,
        s.par_workers,
    ] {
        e.u64(v);
    }
    duration_encode(e, s.ground_time);
    duration_encode(e, s.progress_time);
    duration_encode(e, s.sat_time);
    duration_encode(e, s.par_time);
    duration_encode(e, s.par_busy_time);
    // v3 tail: automaton lifetime counters. The automaton gauges
    // (templates, states, bound instantiations, compile time) are
    // recomputed by `Engine::stats` from the restored contexts.
    if version >= 3 {
        e.u64(s.automaton_appends);
        e.u64(s.automaton_steps);
    }
    // v4 tail: history-tier lifetime counters. The tier gauges
    // (resident/spilled sizes) are recomputed by `Engine::stats` from
    // the restored history and pager.
    if version >= 4 {
        e.u64(s.history.truncations);
        e.u64(s.history.page_loads);
        e.u64(s.history.reclaimed_bytes);
    }
}

fn stats_decode(d: &mut Dec<'_>, version: u32) -> Result<EngineStats, StoreError> {
    // Gauges (letters, arena nodes, mappings, letter index) and the
    // store mirror are refreshed by `Engine::stats`, so only the
    // lifetime counters and timers persist. Struct-literal fields
    // evaluate in source order, which matches the encode order.
    Ok(EngineStats {
        appends: d.u64()?,
        fast_appends: d.u64()?,
        grounds: d.u64()?,
        regrounds: d.u64()?,
        delta_grounds: d.u64()?,
        new_conjuncts: d.u64()?,
        replayed_conjuncts: d.u64()?,
        progress_steps: d.u64()?,
        encode_patched_atoms: d.u64()?,
        sat_checks: d.u64()?,
        cache: CacheStats {
            sat_hits: d.u64()?,
            sat_evictions: d.u64()?,
            transition_hits: d.u64()?,
            transition_misses: d.u64()?,
            transition_evictions: d.u64()?,
            letter_index_len: 0,
        },
        par_phases: d.u64()?,
        par_workers: d.u64()?,
        ground_time: duration_decode(d)?,
        progress_time: duration_decode(d)?,
        sat_time: duration_decode(d)?,
        par_time: duration_decode(d)?,
        par_busy_time: duration_decode(d)?,
        // Struct-literal fields evaluate in written order, so these
        // version-gated reads consume the v3 tail exactly after the
        // timers (a v2 payload simply has no tail).
        automaton_appends: if version >= 3 { d.u64()? } else { 0 },
        automaton_steps: if version >= 3 { d.u64()? } else { 0 },
        history: if version >= 4 {
            HistoryStats {
                truncations: d.u64()?,
                page_loads: d.u64()?,
                reclaimed_bytes: d.u64()?,
                ..HistoryStats::default()
            }
        } else {
            HistoryStats::default()
        },
        ..EngineStats::default()
    })
}

fn canon_node_encode(e: &mut Enc, n: CanonNode) {
    let (tag, a, b) = match n {
        CanonNode::True => (0u8, 0, 0),
        CanonNode::False => (1, 0, 0),
        CanonNode::Atom(a) => (2, a, 0),
        CanonNode::Not(g) => (3, g, 0),
        CanonNode::And(a, b) => (4, a, b),
        CanonNode::Or(a, b) => (5, a, b),
        CanonNode::Next(g) => (6, g, 0),
        CanonNode::Until(a, b) => (7, a, b),
        CanonNode::Release(a, b) => (8, a, b),
    };
    e.u8(tag);
    match tag {
        0 | 1 => {}
        2 | 3 | 6 => e.u32(a),
        _ => {
            e.u32(a);
            e.u32(b);
        }
    }
}

fn canon_node_decode(d: &mut Dec<'_>) -> Result<CanonNode, Error> {
    Ok(match d.u8()? {
        0 => CanonNode::True,
        1 => CanonNode::False,
        2 => CanonNode::Atom(d.u32()?),
        3 => CanonNode::Not(d.u32()?),
        4 => CanonNode::And(d.u32()?, d.u32()?),
        5 => CanonNode::Or(d.u32()?, d.u32()?),
        6 => CanonNode::Next(d.u32()?),
        7 => CanonNode::Until(d.u32()?, d.u32()?),
        8 => CanonNode::Release(d.u32()?, d.u32()?),
        n => return Err(corrupt(&format!("unknown canonical-node tag {n}"))),
    })
}

/// The compiled section of one entry: per template the canonical key
/// plus the state count it compiled to (persisted so a restore can
/// verify the deterministic recompile reproduced the same machine),
/// and per unit its template, current state, and support letters.
/// Columns and the active set are derived from the trace on restore.
fn compiled_encode(e: &mut Enc, set: &CompiledSet) {
    e.usize(set.templates.len());
    for t in &set.templates {
        let key = t.key();
        e.u32(key.arity);
        e.u32(key.root);
        e.usize(key.nodes.len());
        for &n in &key.nodes {
            canon_node_encode(e, n);
        }
        e.usize(t.state_count());
    }
    e.usize(set.units.len());
    for u in &set.units {
        e.u32(u.tmpl);
        e.u32(u.state);
        e.usize(u.support.len());
        for &a in &u.support {
            e.u32(a.0);
        }
    }
}

/// Decoded-but-unvalidated compiled section; template machines are
/// recompiled (and cross-checked) only once the grounding is restored.
struct RawCompiled {
    templates: Vec<(TemplateKey, usize)>,
    units: Vec<(u32, u32, Vec<AtomId>)>,
}

fn compiled_decode(d: &mut Dec<'_>) -> Result<RawCompiled, Error> {
    // Format bounds, not tunables: supports never exceed the compile
    // cap the writer ran under, and 2^16 explicit states is far past
    // any budget worth persisting. They keep corrupt lengths from
    // pre-allocating gigabytes or recompiling monster machines.
    const MAX_STATES: usize = 1 << 16;
    const MAX_KEY_NODES: usize = 1 << 12;
    let max_support = CompileLimits::default().max_support;
    let n = d.usize()?;
    let mut templates = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let arity = d.u32()?;
        let root = d.u32()?;
        let k = d.usize()?;
        if k > MAX_KEY_NODES {
            return Err(corrupt("template with too many canonical nodes"));
        }
        let mut nodes = Vec::with_capacity(k);
        for _ in 0..k {
            nodes.push(canon_node_decode(d)?);
        }
        let states = d.usize()?;
        let key = TemplateKey { nodes, root, arity };
        if !key.validate() || key.arity > max_support {
            return Err(corrupt("malformed template key"));
        }
        if states == 0 || states > MAX_STATES {
            return Err(corrupt("template state count out of range"));
        }
        templates.push((key, states));
    }
    let n = d.usize()?;
    let mut units = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let tmpl = d.u32()?;
        let state = d.u32()?;
        let k = d.usize()?;
        if k > max_support as usize {
            return Err(corrupt("unit support too wide"));
        }
        let mut support = Vec::with_capacity(k);
        for _ in 0..k {
            support.push(AtomId(d.u32()?));
        }
        units.push((tmpl, state, support));
    }
    Ok(RawCompiled { templates, units })
}

/// Recompiles the persisted templates and reattaches the units to the
/// restored grounding. Compilation is deterministic (BFS from the
/// canonical root, columns ascending), so the recompiled machine is
/// bit-identical to the writer's; a state-count mismatch therefore
/// means the payload is corrupt, not that the environment differs.
fn rebind_compiled(
    raw: RawCompiled,
    g: &mut Grounding,
    opts: &CheckOptions,
) -> Result<CompiledSet, Error> {
    let mut templates = Vec::with_capacity(raw.templates.len());
    for (key, states) in raw.templates {
        let limits = CompileLimits {
            max_support: CompileLimits::default().max_support,
            max_states: states,
        };
        let auto = automaton::compile(&key, opts.solver, limits)
            .map_err(|_| corrupt("template recompile failed"))?
            .ok_or_else(|| corrupt("template exceeds its persisted state count"))?;
        if auto.state_count() != states {
            return Err(corrupt("template state count mismatch"));
        }
        templates.push(Arc::new(auto));
    }
    let n_atoms = g.arena.atom_count();
    let mut units = Vec::with_capacity(raw.units.len());
    for (tmpl, state, support) in raw.units {
        if support.iter().any(|a| a.index() >= n_atoms) {
            return Err(corrupt("unit support letter out of range"));
        }
        units.push(Unit {
            tmpl,
            state,
            col: 0,
            support,
        });
    }
    CompiledSet::from_restored(templates, units, g.trace.last())
        .map_err(|m| corrupt(&format!("compiled section: {m}")))
}

fn garg_encode(e: &mut Enc, g: GArg) {
    match g {
        GArg::Rel(v) => {
            e.u8(0);
            e.u64(v);
        }
        GArg::Fresh(i) => {
            e.u8(1);
            e.usize(i);
        }
        GArg::Const(c) => {
            e.u8(2);
            e.u32(c.0);
        }
    }
}

fn garg_decode(d: &mut Dec<'_>) -> Result<GArg, Error> {
    Ok(match d.u8()? {
        0 => GArg::Rel(d.u64()?),
        1 => GArg::Fresh(d.usize()?),
        2 => GArg::Const(ConstId(d.u32()?)),
        n => return Err(corrupt(&format!("unknown ground-argument tag {n}"))),
    })
}

fn letter_key_encode(e: &mut Enc, k: &LetterKey) {
    match k {
        LetterKey::Pred(p, args) => {
            e.u8(0);
            e.u32(p.0);
            e.usize(args.len());
            for &a in args {
                garg_encode(e, a);
            }
        }
        LetterKey::Eq(a, b) => {
            e.u8(1);
            garg_encode(e, *a);
            garg_encode(e, *b);
        }
    }
}

fn letter_key_decode(d: &mut Dec<'_>) -> Result<LetterKey, Error> {
    Ok(match d.u8()? {
        0 => {
            let p = PredId(d.u32()?);
            let n = d.usize()?;
            let mut args = Vec::new();
            for _ in 0..n {
                args.push(garg_decode(d)?);
            }
            LetterKey::Pred(p, args)
        }
        1 => LetterKey::Eq(garg_decode(d)?, garg_decode(d)?),
        n => return Err(corrupt(&format!("unknown letter-key tag {n}"))),
    })
}

fn node_encode(e: &mut Enc, n: Node) {
    let (tag, a, b) = match n {
        Node::True => (0u8, 0, 0),
        Node::False => (1, 0, 0),
        Node::Atom(a) => (2, a.0, 0),
        Node::Not(a) => (3, a.0, 0),
        Node::And(a, b) => (4, a.0, b.0),
        Node::Or(a, b) => (5, a.0, b.0),
        Node::Next(a) => (6, a.0, 0),
        Node::Until(a, b) => (7, a.0, b.0),
        Node::Release(a, b) => (8, a.0, b.0),
        Node::Prev(a) => (9, a.0, 0),
        Node::Since(a, b) => (10, a.0, b.0),
    };
    e.u8(tag);
    match tag {
        0 | 1 => {}
        2 | 3 | 6 | 9 => e.u32(a),
        _ => {
            e.u32(a);
            e.u32(b);
        }
    }
}

fn node_decode(d: &mut Dec<'_>) -> Result<Node, Error> {
    let tag = d.u8()?;
    let unary = |d: &mut Dec<'_>| -> Result<FormulaId, StoreError> { Ok(FormulaId(d.u32()?)) };
    Ok(match tag {
        0 => Node::True,
        1 => Node::False,
        2 => Node::Atom(AtomId(d.u32()?)),
        3 => Node::Not(unary(d)?),
        4 => Node::And(unary(d)?, unary(d)?),
        5 => Node::Or(unary(d)?, unary(d)?),
        6 => Node::Next(unary(d)?),
        7 => Node::Until(unary(d)?, unary(d)?),
        8 => Node::Release(unary(d)?, unary(d)?),
        9 => Node::Prev(unary(d)?),
        10 => Node::Since(unary(d)?, unary(d)?),
        n => return Err(corrupt(&format!("unknown arena-node tag {n}"))),
    })
}

fn dump_encode(e: &mut Enc, d: &GroundingDump) {
    e.u8(match d.mode {
        GroundMode::Folded => 0,
        GroundMode::Full => 1,
    });
    e.usize(d.consts.len());
    for &v in &d.consts {
        e.u64(v);
    }
    e.usize(d.letters.len());
    for (key, atom) in &d.letters {
        letter_key_encode(e, key);
        e.u32(atom.0);
    }
    e.usize(d.external.len());
    for name in &d.external {
        e.str(name);
    }
    formula_encode(e, &d.matrix);
    e.usize(d.known.len());
    for &v in &d.known {
        e.u64(v);
    }
    e.usize(d.arena_nodes.len());
    for &n in &d.arena_nodes {
        node_encode(e, n);
    }
    e.usize(d.atom_names.len());
    for name in &d.atom_names {
        e.str(name);
    }
    e.u32(d.formula.0);
    // Like the history section: a distinct-state table plus per-instant
    // indices, because the propositional trace of a cyclic workload
    // revisits the same states over and over.
    let mut distinct: Vec<&PropState> = Vec::new();
    let mut index_of: std::collections::HashMap<&[u64], usize> = std::collections::HashMap::new();
    let mut indices: Vec<usize> = Vec::with_capacity(d.trace.len());
    for w in &d.trace {
        let idx = *index_of.entry(w.words()).or_insert_with(|| {
            distinct.push(w);
            distinct.len() - 1
        });
        indices.push(idx);
    }
    e.usize(distinct.len());
    for w in distinct {
        // Per-state hybrid: a sparse true-atom list when few letters
        // hold (typical small-residue states), raw bitset words when
        // dense — whichever is smaller on the wire.
        let n_true = w.count_true();
        if n_true * 2 <= w.words().len() * 8 {
            e.u8(0);
            e.usize(n_true);
            for a in w.true_atoms() {
                e.u32(a.0);
            }
        } else {
            e.u8(1);
            e.usize(w.words().len());
            for &word in w.words() {
                e.u64_fixed(word);
            }
        }
    }
    e.usize(indices.len());
    for idx in indices {
        e.usize(idx);
    }
    e.usize(d.m.len());
    for &g in &d.m {
        garg_encode(e, g);
    }
    for v in [
        d.stats.m_size,
        d.stats.external_vars,
        d.stats.mappings,
        d.stats.letters,
        d.stats.axiom_conjuncts,
        d.stats.formula_tree_size,
        d.stats.formula_dag_size,
        d.stats.inst_enumerated,
        d.stats.inst_pruned,
        d.stats.inst_shared,
    ] {
        e.usize(v);
    }
    e.u8(u8::from(d.indexed));
    e.usize(d.occ.len());
    for (p, tuples) in &d.occ {
        e.u32(p.0);
        e.usize(tuples.len());
        for tuple in tuples {
            for &v in tuple {
                e.u64(v);
            }
        }
    }
}

fn dump_decode(d: &mut Dec<'_>, schema: &ticc_tdb::Schema) -> Result<GroundingDump, Error> {
    let mode = match d.u8()? {
        0 => GroundMode::Folded,
        1 => GroundMode::Full,
        n => return Err(corrupt(&format!("unknown ground-mode tag {n}"))),
    };
    let n = d.usize()?;
    let mut consts = Vec::new();
    for _ in 0..n {
        consts.push(d.u64()?);
    }
    let n = d.usize()?;
    let mut letters = Vec::new();
    for _ in 0..n {
        let key = letter_key_decode(d)?;
        letters.push((key, AtomId(d.u32()?)));
    }
    let n = d.usize()?;
    let mut external = Vec::new();
    for _ in 0..n {
        external.push(d.str()?.to_owned());
    }
    let matrix = formula_decode(d, schema)?;
    let n = d.usize()?;
    let mut known = Vec::new();
    for _ in 0..n {
        known.push(d.u64()?);
    }
    let n = d.usize()?;
    let mut arena_nodes = Vec::new();
    for _ in 0..n {
        arena_nodes.push(node_decode(d)?);
    }
    let n = d.usize()?;
    let mut atom_names = Vec::new();
    for _ in 0..n {
        atom_names.push(d.str()?.to_owned());
    }
    let formula = FormulaId(d.u32()?);
    // 2^20 letters per trace state is far beyond any real grounding;
    // the caps keep a corrupt length from pre-allocating gigabytes.
    const MAX_TRACE_ATOMS: usize = 1 << 20;
    const MAX_TRACE_WORDS: usize = MAX_TRACE_ATOMS / 64;
    let n_distinct = d.usize()?;
    let mut distinct = Vec::with_capacity(n_distinct.min(65536));
    for _ in 0..n_distinct {
        match d.u8()? {
            0 => {
                let k = d.usize()?;
                if k > MAX_TRACE_ATOMS {
                    return Err(corrupt(&format!("trace state with {k} true atoms")));
                }
                let mut s = PropState::new();
                for _ in 0..k {
                    s.set(AtomId(d.u32()?), true);
                }
                distinct.push(s);
            }
            1 => {
                let k = d.usize()?;
                if k > MAX_TRACE_WORDS {
                    return Err(corrupt(&format!("trace state of {k} words")));
                }
                let mut words = Vec::with_capacity(k);
                for _ in 0..k {
                    words.push(d.u64_fixed()?);
                }
                distinct.push(PropState::from_words(words));
            }
            t => return Err(corrupt(&format!("unknown trace state tag {t}"))),
        }
    }
    let n = d.usize()?;
    let mut trace = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let idx = d.usize()?;
        let s = distinct
            .get(idx)
            .ok_or_else(|| corrupt("trace state index out of range"))?;
        trace.push(s.clone());
    }
    let n = d.usize()?;
    let mut m = Vec::new();
    for _ in 0..n {
        m.push(garg_decode(d)?);
    }
    let stats = GroundStats {
        m_size: d.usize()?,
        external_vars: d.usize()?,
        mappings: d.usize()?,
        letters: d.usize()?,
        axiom_conjuncts: d.usize()?,
        formula_tree_size: d.usize()?,
        formula_dag_size: d.usize()?,
        inst_enumerated: d.usize()?,
        inst_pruned: d.usize()?,
        inst_shared: d.usize()?,
    };
    let indexed = match d.u8()? {
        0 => false,
        1 => true,
        n => return Err(corrupt(&format!("unknown indexed tag {n}"))),
    };
    let n = d.usize()?;
    let mut occ = Vec::new();
    for _ in 0..n {
        let p = PredId(d.u32()?);
        if p.index() >= schema.pred_count() {
            return Err(corrupt("occurrence-index predicate out of range"));
        }
        let arity = schema.arity(p);
        let k = d.usize()?;
        let mut tuples = Vec::new();
        for _ in 0..k {
            let mut tuple = Vec::with_capacity(arity);
            for _ in 0..arity {
                tuple.push(d.u64()?);
            }
            tuples.push(tuple);
        }
        occ.push((p, tuples));
    }
    Ok(GroundingDump {
        mode,
        consts,
        letters,
        external,
        matrix,
        known,
        arena_nodes,
        atom_names,
        formula,
        trace,
        m,
        stats,
        indexed,
        occ,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Regrounding;
    use std::sync::Arc;
    use ticc_fotl::parser::parse;
    use ticc_tdb::{Schema, Transaction};

    fn order_schema() -> Arc<ticc_tdb::Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    fn engine_with_appends() -> Engine {
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let fill = sc.pred("Fill").unwrap();
        let mut e = Engine::new(sc, CheckOptions::default());
        let phi = parse(e.history().schema(), "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        e.add_constraint("once", phi).unwrap();
        e.append(
            &Transaction::new()
                .insert(sub, vec![1])
                .insert(fill, vec![1]),
        )
        .unwrap();
        e.append(&Transaction::new().delete(sub, vec![1]).insert(sub, vec![2]))
            .unwrap();
        e
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let engine = engine_with_appends();
        let bytes = snapshot_engine(&engine, b"app-blob");
        let (back, app) = restore_engine(&bytes, CheckOptions::default()).unwrap();
        assert_eq!(app, b"app-blob");
        assert_eq!(back.history().len(), engine.history().len());
        assert_eq!(back.history().states(), engine.history().states());
        for id in engine.constraints() {
            assert_eq!(back.status(id), engine.status(id));
            assert_eq!(back.name(id), engine.name(id));
            let (g0, g1) = (engine.context(id).grounding(), back.context(id).grounding());
            assert_eq!(engine.context(id).residue(), back.context(id).residue());
            assert_eq!(g0.formula, g1.formula);
            assert_eq!(g0.arena.dag_len(), g1.arena.dag_len());
            assert_eq!(g0.trace.len(), g1.trace.len());
            assert_eq!(g0.stats, g1.stats);
        }
        let s0 = engine.stats();
        let s1 = back.stats();
        assert_eq!(s0.appends, s1.appends);
        assert_eq!(s0.grounds, s1.grounds);
        assert_eq!(s0.letters, s1.letters);
    }

    #[test]
    fn restored_engine_continues_in_lockstep() {
        let engine = engine_with_appends();
        let bytes = snapshot_engine(&engine, &[]);
        let (mut back, _) = restore_engine(&bytes, CheckOptions::default()).unwrap();
        let mut fwd = engine_with_appends();
        let sc = fwd.history().schema().clone();
        let sub = sc.pred("Sub").unwrap();
        // Continue both: re-submit 1 → violation, same events both sides.
        let txs = [
            Transaction::new().delete(sub, vec![2]),
            Transaction::new().insert(sub, vec![1]),
        ];
        for tx in &txs {
            let a = fwd.append(tx).unwrap();
            let b = back.append(tx).unwrap();
            assert_eq!(a, b);
        }
        for id in fwd.constraints() {
            assert_eq!(fwd.status(id), back.status(id));
            assert!(matches!(fwd.status(id), Status::Violated { .. }));
        }
    }

    #[test]
    fn restore_respects_caller_options() {
        let engine = engine_with_appends();
        let bytes = snapshot_engine(&engine, &[]);
        let opts = CheckOptions::builder()
            .regrounding(Regrounding::Full)
            .build();
        let (back, _) = restore_engine(&bytes, opts).unwrap();
        assert_eq!(back.opts().regrounding, Regrounding::Full);
    }

    #[test]
    fn corrupt_snapshots_error_instead_of_panicking() {
        let engine = engine_with_appends();
        let bytes = snapshot_engine(&engine, b"x");
        // Wrong version.
        let mut v = bytes.clone();
        v[0] ^= 0x7f;
        assert!(matches!(
            restore_engine(&v, CheckOptions::default()),
            Err(Error::Store(_))
        ));
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                restore_engine(&bytes[..cut], CheckOptions::default()).is_err(),
                "truncation at {cut} decoded"
            );
        }
        // Single-byte corruption must never panic (it may decode to an
        // equivalent payload when it hits the app blob, but id and
        // arity validation catches structural damage).
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x55;
            let _ = restore_engine(&b, CheckOptions::default());
        }
    }

    #[test]
    fn repeated_states_are_stored_once() {
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let flip = Transaction::new().insert(sub, vec![1]);
        let flop = Transaction::new().delete(sub, vec![1]);
        let run = |instants: usize| {
            let mut e = Engine::new(sc.clone(), CheckOptions::default());
            for i in 0..instants {
                e.append(if i % 2 == 0 { &flip } else { &flop }).unwrap();
            }
            snapshot_engine(&e, &[])
        };
        let short = run(20);
        let long = run(200);
        // The extra 180 instants repeat the same two states, so they
        // only cost one table index each on the wire.
        assert!(
            long.len() < short.len() + 2 * 180,
            "{} bytes for t=200 vs {} for t=20",
            long.len(),
            short.len()
        );
        let (back, _) = restore_engine(&long, CheckOptions::default()).unwrap();
        assert_eq!(back.history().len(), 200);
        assert!(back.history().state(198).holds(sub, &[1]));
        assert!(!back.history().state(199).holds(sub, &[1]));
    }

    #[test]
    fn compiled_state_survives_the_round_trip() {
        let engine = engine_with_appends();
        let s0 = engine.stats();
        assert!(
            s0.templates_compiled >= 1 && s0.automaton_appends >= 1,
            "precondition: the writer runs compiled under default options: {s0:?}"
        );
        let bytes = snapshot_engine(&engine, &[]);
        let (back, _) = restore_engine(&bytes, CheckOptions::default()).unwrap();
        let s1 = back.stats();
        // The restored engine resumes u32-state stepping, not the
        // symbolic residue: same templates, same bound units, and the
        // lifetime counters carried over.
        assert_eq!(s0.templates_compiled, s1.templates_compiled);
        assert_eq!(s0.automaton_states, s1.automaton_states);
        assert_eq!(s0.automaton_insts, s1.automaton_insts);
        assert_eq!(s0.automaton_appends, s1.automaton_appends);
        assert_eq!(s0.automaton_steps, s1.automaton_steps);
        // Compile time is a gauge of this process: restored at zero.
        assert_eq!(s1.automaton_compile_time, Duration::ZERO);
    }

    #[test]
    fn v2_restore_recompiles_on_load() {
        // A v2-layout snapshot (written before template automata
        // existed) restores symbolically and then picks up the
        // compiled strategy, exactly like a fresh add_constraint.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let opts = CheckOptions::builder().template_automata(false).build();
        let mut e = Engine::new(sc.clone(), opts);
        let phi = parse(e.history().schema(), "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let id = e.add_constraint("once", phi).unwrap();
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        let bytes = snapshot_engine_at(&e, &[], 2);
        let (mut back, _) = restore_engine(&bytes, CheckOptions::default()).unwrap();
        assert!(back.stats().templates_compiled >= 1, "{:?}", back.stats());
        // …and the recompiled state is live: the re-submission still
        // violates.
        back.append(&Transaction::new().insert(sub, vec![1]))
            .unwrap();
        assert!(matches!(back.status(id), Status::Violated { .. }));
    }

    #[test]
    fn v3_symbolic_entries_stay_symbolic() {
        // The v3 writer recorded a deliberate symbolic strategy (knob
        // off, budget bail, …); restore must not second-guess it.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let opts = CheckOptions::builder().template_automata(false).build();
        let mut e = Engine::new(sc.clone(), opts);
        let phi = parse(e.history().schema(), "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        e.add_constraint("once", phi).unwrap();
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        let bytes = snapshot_engine(&e, &[]);
        let (back, _) = restore_engine(&bytes, CheckOptions::default()).unwrap();
        assert_eq!(back.stats().templates_compiled, 0, "{:?}", back.stats());
    }

    #[test]
    fn restore_with_knob_off_decompiles_compiled_entries() {
        let engine = engine_with_appends();
        assert!(engine.stats().templates_compiled >= 1);
        let bytes = snapshot_engine(&engine, &[]);
        let opts = CheckOptions::builder().template_automata(false).build();
        let (mut back, _) = restore_engine(&bytes, opts).unwrap();
        assert_eq!(back.stats().templates_compiled, 0, "{:?}", back.stats());
        // The decompiled residue is the exact symbolic state: the
        // violation still lands on re-submission.
        let sc = back.history().schema().clone();
        let sub = sc.pred("Sub").unwrap();
        back.append(&Transaction::new().insert(sub, vec![2]))
            .unwrap();
        let id = back.constraints().next().unwrap();
        assert!(matches!(back.status(id), Status::Violated { .. }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let engine = engine_with_appends();
        let mut bytes = snapshot_engine(&engine, &[]);
        bytes.push(0);
        assert!(restore_engine(&bytes, CheckOptions::default()).is_err());
    }
}
