//! Deterministic work sharding over `std::thread::scope`.
//!
//! The paper's combined bound (Theorem 4.2) is dominated by work that
//! is embarrassingly parallel: the `|M|^k` instantiations of the
//! grounding construction are independent of one another, and so are
//! the registered constraints of an [`Engine`](crate::Engine). This
//! module provides the *mechanism* both fan-out points share — a
//! dependency-free bounded worker pool built on scoped threads (no
//! external crates; tier-1 stays offline) — together with the policy
//! knob [`Threads`] and the [`ParMeter`] observability hook.
//!
//! Determinism is non-negotiable here: every parallel path in this
//! crate shards its input into *canonically ordered chunks* and merges
//! worker results back *in chunk order*, so observable behaviour
//! (events, statuses, statistics on the grounding structure) is
//! bit-identical to the sequential path. The helpers in this module
//! make that easy to get right: [`shard_ranges`] produces the canonical
//! partition, [`map_chunked`] / [`for_each_chunk_mut`] return results
//! indexed by chunk.
//!
//! The append hot path's memo tables (the transition cache and the
//! satisfiability memo) need no special handling here: both live
//! inside the per-constraint `GroundingContext`, and the constraint
//! sweep hands each context to exactly one worker. Every context
//! therefore sees the same sequence of lookups and insertions it would
//! see sequentially — cache hit/miss counters (absorbed in chunk
//! order) are deterministic and thread-count-independent.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    /// How many sibling workers share this machine from the current
    /// thread's point of view. A server worker thread is one of `N`
    /// peers all potentially running engines at once; [`Threads::Auto`]
    /// must size its pool from its *share* of the hardware, not the
    /// whole machine, or `N` workers × `available_parallelism` threads
    /// oversubscribe every core.
    static POOL_PEERS: Cell<usize> = const { Cell::new(1) };
}

/// Declares that the current thread is one of `peers` concurrent
/// workers (e.g. server connection handlers). [`Threads::Auto`] on
/// this thread then resolves to `available_parallelism / peers`
/// (floored at 1) instead of the whole machine. Thread-local: set it
/// at worker startup; `set_pool_peers(1)` restores the default.
pub fn set_pool_peers(peers: usize) {
    POOL_PEERS.with(|c| c.set(peers.max(1)));
}

/// The current thread's declared peer count (1 unless
/// [`set_pool_peers`] was called).
pub fn pool_peers() -> usize {
    POOL_PEERS.with(Cell::get)
}

/// Threading policy for the checking pipeline.
///
/// Carried by [`CheckOptions`](crate::CheckOptions); plumbed from the
/// shell / experiment binaries via `--threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Single-threaded (the default): no worker threads are spawned and
    /// every code path is the plain sequential one.
    #[default]
    Off,
    /// Use the machine's available parallelism (as reported by
    /// [`std::thread::available_parallelism`]), capped at 8. Inside a
    /// declared worker pool (see [`set_pool_peers`]) this is the
    /// *pool's share* of the machine, so nested engines never
    /// oversubscribe cores.
    Auto,
    /// Exactly `n` workers. `Fixed(0)` and `Fixed(1)` behave like
    /// [`Threads::Off`].
    Fixed(usize),
}

impl Threads {
    /// The number of workers this policy resolves to on the current
    /// machine. `Off` resolves to 1.
    pub fn worker_count(self) -> usize {
        match self {
            Threads::Off => 1,
            Threads::Auto => std::thread::available_parallelism()
                .map(|n| (n.get() / pool_peers()).clamp(1, 8))
                .unwrap_or(1),
            Threads::Fixed(n) => n.max(1),
        }
    }

    /// The number of workers worth spawning for `items` independent
    /// work units: each worker needs at least two units to amortise a
    /// spawn, so the pool never exceeds `items / 2` (and never drops
    /// below one). The grounding layer sizes its shards with the
    /// *pruned* instantiation count, so `Threads::Auto` no longer spins
    /// up idle workers when index-driven enumeration leaves only a
    /// handful of instantiations to ground.
    pub fn workers_for(self, items: usize) -> usize {
        self.worker_count().min(items / 2).max(1)
    }

    /// Parses the `--threads` argument syntax: `off`, `auto`, or a
    /// worker count.
    pub fn parse(s: &str) -> Result<Threads, String> {
        match s {
            "off" | "0" | "1" => Ok(Threads::Off),
            "auto" => Ok(Threads::Auto),
            n => n
                .parse::<usize>()
                .map(Threads::Fixed)
                .map_err(|_| format!("invalid --threads value '{n}' (want off|auto|<count>)")),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Off => write!(out, "off"),
            Threads::Auto => write!(out, "auto({})", self.worker_count()),
            Threads::Fixed(n) => write!(out, "{n}"),
        }
    }
}

/// The canonical partition of `0..len` into at most `workers` chunks:
/// contiguous, in order, sizes differing by at most one (the first
/// `len % workers` chunks are one longer). Empty ranges are omitted, so
/// `len < workers` yields `len` singleton chunks.
pub fn shard_ranges(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.max(1).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `f` over the canonical chunks of `0..len` on up to `workers`
/// scoped threads and returns the per-chunk results *in chunk order*.
///
/// `f` receives `(chunk_index, range)`. With `workers <= 1` (or a
/// single chunk) everything runs on the calling thread — same results,
/// no spawn. Worker panics propagate to the caller.
pub fn map_chunked<T, F>(len: usize, workers: usize, meter: &mut ParMeter, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let ranges = shard_ranges(len, workers);
    if ranges.len() <= 1 || workers <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| f(i, r))
            .collect();
    }
    meter.begin(ranges.len());
    let wall = Instant::now();
    let f = &f;
    let results: Vec<(T, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                scope.spawn(move || {
                    let t = Instant::now();
                    let out = f(i, r);
                    (out, t.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    meter.end(wall.elapsed(), results.iter().map(|(_, d)| *d).sum());
    results.into_iter().map(|(t, _)| t).collect()
}

/// Like [`map_chunked`], but hands each worker a disjoint `&mut` slice
/// chunk of `items` (split with the canonical partition) and collects
/// the per-chunk results in chunk order.
pub fn for_each_chunk_mut<I, T, F>(
    items: &mut [I],
    workers: usize,
    meter: &mut ParMeter,
    f: F,
) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, usize, &mut [I]) -> T + Sync,
{
    let ranges = shard_ranges(items.len(), workers);
    if ranges.len() <= 1 || workers <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let start = r.start;
                f(i, start, &mut items[r])
            })
            .collect();
    }
    meter.begin(ranges.len());
    let wall = Instant::now();
    // Carve `items` into disjoint mutable chunks, in order.
    let mut chunks: Vec<(usize, usize, &mut [I])> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    let mut consumed = 0;
    for (i, r) in ranges.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(r.len());
        chunks.push((i, consumed, head));
        consumed += r.len();
        rest = tail;
    }
    let f = &f;
    let results: Vec<(T, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(i, start, chunk)| {
                scope.spawn(move || {
                    let t = Instant::now();
                    let out = f(i, start, chunk);
                    (out, t.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    meter.end(wall.elapsed(), results.iter().map(|(_, d)| *d).sum());
    results.into_iter().map(|(t, _)| t).collect()
}

/// Accumulated observability for parallel phases: how many fan-outs
/// ran, the widest one, wall time inside them, and summed worker busy
/// time (busy / wall ≈ effective speedup). Absorbed into
/// [`EngineStats`](crate::EngineStats) by the engine layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParMeter {
    /// Number of parallel fan-outs that actually spawned threads.
    pub phases: u64,
    /// Maximum number of workers used by any single fan-out.
    pub max_workers: u64,
    /// Wall-clock time spent inside parallel fan-outs.
    pub wall: Duration,
    /// Total busy time summed across all workers of all fan-outs.
    pub busy: Duration,
}

impl ParMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, workers: usize) {
        self.phases += 1;
        self.max_workers = self.max_workers.max(workers as u64);
    }

    fn end(&mut self, wall: Duration, busy: Duration) {
        self.wall += wall;
        self.busy += busy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_canonically() {
        assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_ranges(4, 4), vec![0..1, 1..2, 2..3, 3..4]);
        assert_eq!(shard_ranges(2, 4), vec![0..1, 1..2]);
        assert_eq!(shard_ranges(0, 4), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(shard_ranges(5, 1), vec![0..5]);
        // Exhaustive partition check.
        for len in 0..40 {
            for workers in 1..9 {
                let rs = shard_ranges(len, workers);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                let mut pos = 0;
                for r in &rs {
                    assert_eq!(r.start, pos);
                    assert!(!r.is_empty());
                    pos = r.end;
                }
            }
        }
    }

    #[test]
    fn map_chunked_results_in_chunk_order() {
        let mut meter = ParMeter::new();
        let seq = map_chunked(20, 1, &mut meter, |_, r| r.collect::<Vec<_>>());
        assert_eq!(meter.phases, 0, "no spawn for one worker");
        let par = map_chunked(20, 4, &mut meter, |_, r| r.collect::<Vec<_>>());
        assert_eq!(meter.phases, 1);
        assert_eq!(meter.max_workers, 4);
        let flat_seq: Vec<usize> = seq.into_iter().flatten().collect();
        let flat_par: Vec<usize> = par.into_iter().flatten().collect();
        assert_eq!(flat_seq, flat_par);
        assert_eq!(flat_par, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_chunk_mut_sees_disjoint_slices() {
        let mut items: Vec<u32> = (0..17).collect();
        let mut meter = ParMeter::new();
        let sums = for_each_chunk_mut(&mut items, 4, &mut meter, |i, start, chunk| {
            for x in chunk.iter_mut() {
                *x += 100;
            }
            (i, start, chunk.len())
        });
        assert_eq!(items, (100..117).collect::<Vec<_>>());
        // Chunk order, with correct global offsets.
        assert_eq!(sums, vec![(0, 0, 5), (1, 5, 4), (2, 9, 4), (3, 13, 4)]);
    }

    #[test]
    fn threads_policy_resolution() {
        assert_eq!(Threads::Off.worker_count(), 1);
        assert_eq!(Threads::Fixed(0).worker_count(), 1);
        assert_eq!(Threads::Fixed(6).worker_count(), 6);
        assert!(Threads::Auto.worker_count() >= 1);
        assert_eq!(Threads::parse("off"), Ok(Threads::Off));
        assert_eq!(Threads::parse("auto"), Ok(Threads::Auto));
        assert_eq!(Threads::parse("4"), Ok(Threads::Fixed(4)));
        assert_eq!(Threads::parse("1"), Ok(Threads::Off));
        assert!(Threads::parse("lots").is_err());
        assert_eq!(Threads::default(), Threads::Off);
    }

    #[test]
    fn auto_clamps_to_the_pool_share() {
        // With more declared peers than cores, Auto must fall back to
        // sequential rather than oversubscribe.
        set_pool_peers(4096);
        assert_eq!(Threads::Auto.worker_count(), 1);
        // A 1-peer pool is the default whole-machine behaviour.
        set_pool_peers(1);
        let whole = Threads::Auto.worker_count();
        assert!(whole >= 1);
        set_pool_peers(2);
        let half = Threads::Auto.worker_count();
        assert!(half <= whole && half >= 1);
        assert_eq!(half, (whole_machine() / 2).clamp(1, 8));
        set_pool_peers(0); // clamps to 1
        assert_eq!(pool_peers(), 1);
        assert_eq!(Threads::Auto.worker_count(), whole);

        fn whole_machine() -> usize {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    #[test]
    fn workers_for_scales_with_the_item_count() {
        assert_eq!(Threads::Fixed(4).workers_for(0), 1);
        assert_eq!(Threads::Fixed(4).workers_for(1), 1);
        assert_eq!(Threads::Fixed(4).workers_for(3), 1);
        assert_eq!(Threads::Fixed(4).workers_for(6), 3);
        assert_eq!(Threads::Fixed(4).workers_for(1000), 4);
        assert_eq!(Threads::Off.workers_for(1000), 1);
    }
}
