//! Deterministic work sharding: a persistent worker pool for the
//! append hot path, scoped threads for one-shot build phases.
//!
//! The paper's combined bound (Theorem 4.2) is dominated by work that
//! is embarrassingly parallel: the `|M|^k` instantiations of the
//! grounding construction are independent of one another, and so are
//! the registered constraints of an [`Engine`](crate::Engine). This
//! module provides the *mechanism* both fan-out points share —
//! dependency-free, built on `std` only (tier-1 stays offline) —
//! together with the policy knob [`Threads`] and the [`ParMeter`]
//! observability hook.
//!
//! Two fan-out primitives coexist, matched to how often they run:
//!
//! * [`WorkerPool`] — long-lived threads created once per engine,
//!   sleeping on a condvar between dispatches. The per-append
//!   constraint sweep runs here: an append must not pay a
//!   `thread::spawn` (≈ tens of µs) per transaction, and a pool
//!   wake-up is a notify + one mutex hop. The pool hands each worker a
//!   disjoint chunk of the constraint partition and can drain a whole
//!   *batch* of queued transactions per wake-up
//!   (see `Engine::append_batch`).
//! * [`map_chunked`] / [`for_each_chunk_mut`] — `std::thread::scope`
//!   fan-outs for one-shot build phases (grounding a new constraint),
//!   where spawn cost is noise next to the work.
//!
//! Determinism is non-negotiable here: every parallel path in this
//! crate shards its input into *canonically ordered chunks* and merges
//! worker results back *in chunk order*, so observable behaviour
//! (events, statuses, statistics on the grounding structure) is
//! bit-identical to the sequential path. The helpers in this module
//! make that easy to get right: [`shard_ranges`] produces the canonical
//! partition, and both the pool and the scoped helpers return results
//! indexed by chunk.
//!
//! The append hot path's memo tables (the transition cache and the
//! satisfiability memo) need no special handling here: both live
//! inside the per-constraint `GroundingContext`, and the constraint
//! sweep hands each context to exactly one worker. Every context
//! therefore sees the same sequence of lookups and insertions it would
//! see sequentially — cache hit/miss counters (absorbed in chunk
//! order) are deterministic and thread-count-independent.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

thread_local! {
    /// How many sibling workers share this machine from the current
    /// thread's point of view. A server worker thread is one of `N`
    /// peers all potentially running engines at once; [`Threads::Auto`]
    /// must size its pool from its *share* of the hardware, not the
    /// whole machine, or `N` workers × `available_parallelism` threads
    /// oversubscribe every core.
    static POOL_PEERS: Cell<usize> = const { Cell::new(1) };
}

/// Declares that the current thread is one of `peers` concurrent
/// workers (e.g. server connection handlers). [`Threads::Auto`] on
/// this thread then resolves to `available_parallelism / peers`
/// (floored at 1) instead of the whole machine. Thread-local: set it
/// at worker startup; `set_pool_peers(1)` restores the default.
pub fn set_pool_peers(peers: usize) {
    POOL_PEERS.with(|c| c.set(peers.max(1)));
}

/// The current thread's declared peer count (1 unless
/// [`set_pool_peers`] was called).
pub fn pool_peers() -> usize {
    POOL_PEERS.with(Cell::get)
}

/// Threading policy for the checking pipeline.
///
/// Carried by [`CheckOptions`](crate::CheckOptions); plumbed from the
/// shell / experiment binaries via `--threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Single-threaded (the default): no worker threads are spawned and
    /// every code path is the plain sequential one.
    #[default]
    Off,
    /// Use the machine's available parallelism (as reported by
    /// [`std::thread::available_parallelism`]), capped at 8. Inside a
    /// declared worker pool (see [`set_pool_peers`]) this is the
    /// *pool's share* of the machine, so nested engines never
    /// oversubscribe cores.
    Auto,
    /// Exactly `n` workers. `Fixed(0)` and `Fixed(1)` behave like
    /// [`Threads::Off`].
    Fixed(usize),
}

impl Threads {
    /// The number of workers this policy resolves to on the current
    /// machine. `Off` resolves to 1.
    pub fn worker_count(self) -> usize {
        match self {
            Threads::Off => 1,
            Threads::Auto => std::thread::available_parallelism()
                .map(|n| (n.get() / pool_peers()).clamp(1, 8))
                .unwrap_or(1),
            Threads::Fixed(n) => n.max(1),
        }
    }

    /// The number of workers worth spawning for `items` independent
    /// work units: each worker needs at least two units to amortise a
    /// spawn, so the pool never exceeds `items / 2` (and never drops
    /// below one). The grounding layer sizes its shards with the
    /// *pruned* instantiation count, so `Threads::Auto` no longer spins
    /// up idle workers when index-driven enumeration leaves only a
    /// handful of instantiations to ground.
    pub fn workers_for(self, items: usize) -> usize {
        self.worker_count().min(items / 2).max(1)
    }

    /// Parses the `--threads` argument syntax: `off`, `auto`, or a
    /// worker count.
    pub fn parse(s: &str) -> Result<Threads, String> {
        match s {
            "off" | "0" | "1" => Ok(Threads::Off),
            "auto" => Ok(Threads::Auto),
            n => n
                .parse::<usize>()
                .map(Threads::Fixed)
                .map_err(|_| format!("invalid --threads value '{n}' (want off|auto|<count>)")),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Off => write!(out, "off"),
            Threads::Auto => write!(out, "auto({})", self.worker_count()),
            Threads::Fixed(n) => write!(out, "{n}"),
        }
    }
}

/// The canonical partition of `0..len` into at most `workers` chunks:
/// contiguous, in order, sizes differing by at most one (the first
/// `len % workers` chunks are one longer). Empty ranges are omitted, so
/// `len < workers` yields `len` singleton chunks.
pub fn shard_ranges(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.max(1).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `f` over the canonical chunks of `0..len` on up to `workers`
/// scoped threads and returns the per-chunk results *in chunk order*.
///
/// `f` receives `(chunk_index, range)`. With `workers <= 1` (or a
/// single chunk) everything runs on the calling thread — same results,
/// no spawn. Worker panics propagate to the caller.
pub fn map_chunked<T, F>(len: usize, workers: usize, meter: &mut ParMeter, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let ranges = shard_ranges(len, workers);
    if ranges.len() <= 1 || workers <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| f(i, r))
            .collect();
    }
    meter.begin(ranges.len());
    let wall = Instant::now();
    let f = &f;
    let results: Vec<(T, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                scope.spawn(move || {
                    let t = Instant::now();
                    let out = f(i, r);
                    (out, t.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    meter.end(wall.elapsed(), results.iter().map(|(_, d)| *d).sum());
    results.into_iter().map(|(t, _)| t).collect()
}

/// Like [`map_chunked`], but hands each worker a disjoint `&mut` slice
/// chunk of `items` (split with the canonical partition) and collects
/// the per-chunk results in chunk order.
pub fn for_each_chunk_mut<I, T, F>(
    items: &mut [I],
    workers: usize,
    meter: &mut ParMeter,
    f: F,
) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, usize, &mut [I]) -> T + Sync,
{
    let ranges = shard_ranges(items.len(), workers);
    if ranges.len() <= 1 || workers <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let start = r.start;
                f(i, start, &mut items[r])
            })
            .collect();
    }
    meter.begin(ranges.len());
    let wall = Instant::now();
    // Carve `items` into disjoint mutable chunks, in order.
    let mut chunks: Vec<(usize, usize, &mut [I])> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    let mut consumed = 0;
    for (i, r) in ranges.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(r.len());
        chunks.push((i, consumed, head));
        consumed += r.len();
        rest = tail;
    }
    let f = &f;
    let results: Vec<(T, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(i, start, chunk)| {
                scope.spawn(move || {
                    let t = Instant::now();
                    let out = f(i, start, chunk);
                    (out, t.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    meter.end(wall.elapsed(), results.iter().map(|(_, d)| *d).sum());
    results.into_iter().map(|(t, _)| t).collect()
}

/// Accumulated observability for parallel phases: how many fan-outs
/// ran, the widest one, wall time inside them, and summed worker busy
/// time (busy / wall ≈ effective speedup). Absorbed into
/// [`EngineStats`](crate::EngineStats) by the engine layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParMeter {
    /// Number of parallel fan-outs that actually spawned threads.
    pub phases: u64,
    /// Maximum number of workers used by any single fan-out.
    pub max_workers: u64,
    /// Wall-clock time spent inside parallel fan-outs.
    pub wall: Duration,
    /// Total busy time summed across all workers of all fan-outs.
    pub busy: Duration,
}

impl ParMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, workers: usize) {
        self.phases += 1;
        self.max_workers = self.max_workers.max(workers as u64);
    }

    fn end(&mut self, wall: Duration, busy: Duration) {
        self.wall += wall;
        self.busy += busy;
    }
}

/// The dispatched job: a borrowed `Fn(worker_index)` closure with its
/// lifetime erased. Sound because [`WorkerPool::run`] blocks until
/// every worker has finished the dispatch (and cleared the slot)
/// before returning, so no worker ever dereferences the reference
/// after the borrow it was transmuted from ends.
type Job = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    /// The current dispatch, present only between `run`'s publish and
    /// its completion wait.
    job: Option<Job>,
    /// Dispatch generation; bumped per `run` so a worker never runs
    /// the same job twice.
    epoch: u64,
    /// Workers that have not yet finished the current dispatch.
    pending: usize,
    /// Per-worker busy time of the current dispatch.
    busy: Vec<Duration>,
    /// Whether any worker panicked during the current dispatch.
    panicked: bool,
    /// Set by `Drop`; workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers sleep here between dispatches.
    work_cv: Condvar,
    /// The leader sleeps here until `pending` drains to zero.
    done_cv: Condvar,
}

/// A persistent worker pool: `size` threads created once, sleeping on
/// a condvar between dispatches, woken together to run one borrowed
/// closure each (`f(worker_index)`).
///
/// This is the append hot path's fan-out. Unlike the scoped helpers,
/// a dispatch costs a condvar broadcast and two mutex hops instead of
/// `size` thread spawns — the difference between an append that can
/// keep up with a transaction stream and one dominated by spawn
/// latency.
///
/// Workers inherit the creating thread's [`pool_peers`] declaration,
/// so `Threads::Auto` resolution inside worker-run code (e.g. a nested
/// grounding) sees the same machine share the owning engine does.
///
/// Worker panics are caught, the dispatch completes on the surviving
/// workers, and `run` re-raises as `panic!("parallel worker
/// panicked")` — the same contract as the scoped helpers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `size.max(1)` sleeping workers. The workers
    /// inherit the current thread's [`pool_peers`] declaration.
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let peers = pool_peers();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                pending: 0,
                busy: vec![Duration::ZERO; size],
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..size)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ticc-pool-{w}"))
                    .spawn(move || {
                        set_pool_peers(peers);
                        Self::worker_loop(&shared, w);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    fn worker_loop(shared: &PoolShared, w: usize) {
        let mut last_epoch = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().expect("pool mutex poisoned");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch != last_epoch {
                        if let Some(job) = st.job {
                            last_epoch = st.epoch;
                            break job;
                        }
                    }
                    st = shared.work_cv.wait(st).expect("pool mutex poisoned");
                }
            };
            let t = Instant::now();
            let ok = catch_unwind(AssertUnwindSafe(|| job(w))).is_ok();
            let busy = t.elapsed();
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            st.busy[w] = busy;
            if !ok {
                st.panicked = true;
            }
            st.pending -= 1;
            if st.pending == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    /// Wakes every worker to run `f(worker_index)` once, blocks until
    /// all have finished, and records the dispatch on `meter` as a
    /// phase of `fanout` workers (the number of non-trivial chunks the
    /// caller actually sharded into — pool threads beyond it return
    /// immediately and contribute ~zero busy time).
    ///
    /// `&mut self` makes overlapping dispatches unrepresentable.
    fn run(&mut self, fanout: usize, meter: &mut ParMeter, f: &(dyn Fn(usize) + Sync)) {
        meter.begin(fanout);
        let wall = Instant::now();
        // Erase the borrow's lifetime; see the `Job` safety comment.
        let job: Job = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), Job>(f) };
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.job = Some(job);
            st.epoch += 1;
            st.pending = self.size;
            st.panicked = false;
            st.busy.iter_mut().for_each(|b| *b = Duration::ZERO);
        }
        self.shared.work_cv.notify_all();
        let (busy, panicked) = {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            while st.pending > 0 {
                st = self.shared.done_cv.wait(st).expect("pool mutex poisoned");
            }
            st.job = None;
            (st.busy.iter().sum(), st.panicked)
        };
        meter.end(wall.elapsed(), busy);
        if panicked {
            panic!("parallel worker panicked");
        }
    }

    /// [`for_each_chunk_mut`] on the pool: hands each worker a disjoint
    /// `&mut` chunk of `items` (canonical partition over at most
    /// `workers.min(self.size())` chunks) and collects the per-chunk
    /// results in chunk order. With one chunk (or `workers <= 1`)
    /// everything runs on the calling thread — same results, no
    /// wake-up, no meter tick.
    pub fn for_each_chunk_mut<I, T, F>(
        &mut self,
        items: &mut [I],
        workers: usize,
        meter: &mut ParMeter,
        f: F,
    ) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, usize, &mut [I]) -> T + Sync,
    {
        let ranges = shard_ranges(items.len(), workers.min(self.size));
        if ranges.len() <= 1 || workers <= 1 {
            return ranges
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    let start = r.start;
                    f(i, start, &mut items[r])
                })
                .collect();
        }
        let nchunks = ranges.len();
        // Carve `items` into disjoint mutable chunks, parked in
        // per-chunk slots each worker takes exactly once: the slot
        // holds (chunk index, global start offset, the chunk).
        type ChunkSlot<'a, I> = Mutex<Option<(usize, usize, &'a mut [I])>>;
        let mut slots: Vec<ChunkSlot<'_, I>> = Vec::with_capacity(nchunks);
        let mut rest = items;
        let mut consumed = 0;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            slots.push(Mutex::new(Some((slots.len(), consumed, head))));
            consumed += r.len();
            rest = tail;
        }
        let results: Vec<Mutex<Option<T>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
        self.run(nchunks, meter, &|w| {
            if w >= nchunks {
                return;
            }
            let (i, start, chunk) = slots[w]
                .lock()
                .expect("pool slot poisoned")
                .take()
                .expect("chunk slot taken once");
            let out = f(i, start, chunk);
            *results[i].lock().expect("pool slot poisoned") = Some(out);
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("pool slot poisoned")
                    .expect("every chunk ran")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_canonically() {
        assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_ranges(4, 4), vec![0..1, 1..2, 2..3, 3..4]);
        assert_eq!(shard_ranges(2, 4), vec![0..1, 1..2]);
        assert_eq!(shard_ranges(0, 4), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(shard_ranges(5, 1), vec![0..5]);
        // Exhaustive partition check.
        for len in 0..40 {
            for workers in 1..9 {
                let rs = shard_ranges(len, workers);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                let mut pos = 0;
                for r in &rs {
                    assert_eq!(r.start, pos);
                    assert!(!r.is_empty());
                    pos = r.end;
                }
            }
        }
    }

    #[test]
    fn map_chunked_results_in_chunk_order() {
        let mut meter = ParMeter::new();
        let seq = map_chunked(20, 1, &mut meter, |_, r| r.collect::<Vec<_>>());
        assert_eq!(meter.phases, 0, "no spawn for one worker");
        let par = map_chunked(20, 4, &mut meter, |_, r| r.collect::<Vec<_>>());
        assert_eq!(meter.phases, 1);
        assert_eq!(meter.max_workers, 4);
        let flat_seq: Vec<usize> = seq.into_iter().flatten().collect();
        let flat_par: Vec<usize> = par.into_iter().flatten().collect();
        assert_eq!(flat_seq, flat_par);
        assert_eq!(flat_par, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_chunk_mut_sees_disjoint_slices() {
        let mut items: Vec<u32> = (0..17).collect();
        let mut meter = ParMeter::new();
        let sums = for_each_chunk_mut(&mut items, 4, &mut meter, |i, start, chunk| {
            for x in chunk.iter_mut() {
                *x += 100;
            }
            (i, start, chunk.len())
        });
        assert_eq!(items, (100..117).collect::<Vec<_>>());
        // Chunk order, with correct global offsets.
        assert_eq!(sums, vec![(0, 0, 5), (1, 5, 4), (2, 9, 4), (3, 13, 4)]);
    }

    #[test]
    fn threads_policy_resolution() {
        assert_eq!(Threads::Off.worker_count(), 1);
        assert_eq!(Threads::Fixed(0).worker_count(), 1);
        assert_eq!(Threads::Fixed(6).worker_count(), 6);
        assert!(Threads::Auto.worker_count() >= 1);
        assert_eq!(Threads::parse("off"), Ok(Threads::Off));
        assert_eq!(Threads::parse("auto"), Ok(Threads::Auto));
        assert_eq!(Threads::parse("4"), Ok(Threads::Fixed(4)));
        assert_eq!(Threads::parse("1"), Ok(Threads::Off));
        assert!(Threads::parse("lots").is_err());
        assert_eq!(Threads::default(), Threads::Off);
    }

    #[test]
    fn auto_clamps_to_the_pool_share() {
        // With more declared peers than cores, Auto must fall back to
        // sequential rather than oversubscribe.
        set_pool_peers(4096);
        assert_eq!(Threads::Auto.worker_count(), 1);
        // A 1-peer pool is the default whole-machine behaviour.
        set_pool_peers(1);
        let whole = Threads::Auto.worker_count();
        assert!(whole >= 1);
        set_pool_peers(2);
        let half = Threads::Auto.worker_count();
        assert!(half <= whole && half >= 1);
        assert_eq!(half, (whole_machine() / 2).clamp(1, 8));
        set_pool_peers(0); // clamps to 1
        assert_eq!(pool_peers(), 1);
        assert_eq!(Threads::Auto.worker_count(), whole);

        fn whole_machine() -> usize {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    #[test]
    fn pool_chunks_match_the_scoped_helper() {
        let mut pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let mut items: Vec<u32> = (0..17).collect();
        let mut meter = ParMeter::new();
        let sums = pool.for_each_chunk_mut(&mut items, 4, &mut meter, |i, start, chunk| {
            for x in chunk.iter_mut() {
                *x += 100;
            }
            (i, start, chunk.len())
        });
        assert_eq!(items, (100..117).collect::<Vec<_>>());
        // Same canonical partition and chunk-order results as the
        // scoped for_each_chunk_mut.
        assert_eq!(sums, vec![(0, 0, 5), (1, 5, 4), (2, 9, 4), (3, 13, 4)]);
        assert_eq!(meter.phases, 1);
        assert_eq!(meter.max_workers, 4);
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let mut pool = WorkerPool::new(3);
        let mut meter = ParMeter::new();
        for round in 0..50u32 {
            let mut items: Vec<u32> = (0..12).collect();
            let outs = pool.for_each_chunk_mut(&mut items, 3, &mut meter, |_, _, chunk| {
                chunk.iter().map(|&x| x + round).sum::<u32>()
            });
            let total: u32 = outs.iter().sum();
            assert_eq!(total, (0..12).sum::<u32>() + 12 * round);
        }
        assert_eq!(meter.phases, 50, "one metered phase per dispatch");
    }

    #[test]
    fn pool_runs_inline_below_two_chunks() {
        let mut pool = WorkerPool::new(4);
        let mut meter = ParMeter::new();
        let mut items = vec![1u32];
        let outs = pool.for_each_chunk_mut(&mut items, 4, &mut meter, |i, start, chunk| {
            (i, start, chunk.len())
        });
        assert_eq!(outs, vec![(0, 0, 1)]);
        assert_eq!(meter.phases, 0, "single chunk never wakes the pool");
        let outs = pool.for_each_chunk_mut(&mut items, 1, &mut meter, |i, _, _| i);
        assert_eq!(outs, vec![0]);
        assert_eq!(meter.phases, 0, "workers <= 1 never wakes the pool");
    }

    #[test]
    fn pool_workers_inherit_the_peer_declaration() {
        set_pool_peers(3);
        let mut pool = WorkerPool::new(2);
        set_pool_peers(1);
        let mut meter = ParMeter::new();
        let mut items: Vec<u32> = (0..8).collect();
        let peers = pool.for_each_chunk_mut(&mut items, 2, &mut meter, |_, _, _| pool_peers());
        assert_eq!(peers, vec![3, 3], "workers carry the creator's share");
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut pool = WorkerPool::new(2);
            let mut meter = ParMeter::new();
            let mut items: Vec<u32> = (0..8).collect();
            pool.for_each_chunk_mut(&mut items, 2, &mut meter, |i, _, _| {
                if i == 1 {
                    panic!("boom");
                }
                i
            })
        });
        let msg = *result.unwrap_err().downcast::<&str>().expect("str payload");
        assert_eq!(msg, "parallel worker panicked");
    }

    #[test]
    fn workers_for_scales_with_the_item_count() {
        assert_eq!(Threads::Fixed(4).workers_for(0), 1);
        assert_eq!(Threads::Fixed(4).workers_for(1), 1);
        assert_eq!(Threads::Fixed(4).workers_for(3), 1);
        assert_eq!(Threads::Fixed(4).workers_for(6), 3);
        assert_eq!(Threads::Fixed(4).workers_for(1000), 4);
        assert_eq!(Threads::Off.workers_for(1000), 1);
    }
}
