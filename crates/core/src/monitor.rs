//! Online incremental integrity monitor.
//!
//! The intended deployment of the paper's method: constraints are
//! registered once, and after every update (transaction) the monitor
//! decides potential satisfaction of each constraint *at the earliest
//! possible time* — the property that distinguishes this method from the
//! weaker notions implemented by Lipeck & Saake and Sistla & Wolfson
//! (Section 5).
//!
//! Incrementality: the grounding of Theorem 4.1 depends on the history
//! only through `R_D` and `w_D`. As long as an update introduces no new
//! relevant element, the existing grounding is reusable — the new state
//! maps to one propositional state, the constraint's *residue* formula
//! is progressed through it (`O(|φ_D|)`), and satisfiability of the
//! residue is decided (with memoisation: residues stabilise quickly in
//! practice, so most appends hit the cache). When a new element appears,
//! the constraint is re-grounded over the enlarged `M` and the stored
//! history is replayed.

use crate::extension::CheckOptions;
use crate::ground::{ground, GroundError, Grounding};
use std::collections::HashMap;
use std::sync::Arc;
use ticc_fotl::Formula;
use ticc_ptl::arena::FormulaId;
use ticc_ptl::progression::progress;
use ticc_ptl::sat::{is_satisfiable_with, SatError};
use ticc_tdb::{History, Schema, TdbError, Transaction};

/// Handle to a registered constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub usize);

/// Which notion of violation the monitor implements.
///
/// Section 5 of the paper contrasts *potential constraint satisfaction*
/// (violations detected at the earliest possible time — requires the
/// phase-2 satisfiability test after every update) with the **weaker
/// notion** that Lipeck & Saake's and Sistla & Wolfson's methods
/// implement by necessity: violations are always detected eventually,
/// but possibly later. The weaker notion corresponds to running
/// progression only and reporting when the residue collapses to `⊥` —
/// much cheaper per update, but a constraint that has already become
/// unsatisfiable can linger undetected until enough further states
/// arrive to fold the residue away. Experiment E11 measures both the
/// cost gap and the detection latency gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Notion {
    /// Potential satisfaction: progression **and** satisfiability of the
    /// residue after every update (earliest detection; the paper's
    /// notion).
    #[default]
    Potential,
    /// Sistla–Wolfson-style: progression only; report when the residue
    /// reaches `⊥` (detection possibly delayed).
    BadPrefix,
}

/// Status of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Every prefix so far has an extension satisfying the constraint.
    Satisfied,
    /// No extension exists; `at` is the history length at which the
    /// violation became unavoidable (the violating state has index
    /// `at - 1`; `at == 0` means the constraint is unsatisfiable
    /// outright).
    Violated {
        /// History length at detection.
        at: usize,
    },
}

/// A violation notice produced by [`Monitor::append`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Which constraint.
    pub constraint: ConstraintId,
    /// Its registered name.
    pub name: String,
    /// History length at which the violation became unavoidable.
    pub at: usize,
}

/// Errors from the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// A constraint is outside the decidable fragment.
    Ground(GroundError),
    /// Propositional engine failure.
    Sat(SatError),
    /// Update application failure.
    Tdb(TdbError),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::Ground(e) => write!(f, "{e}"),
            MonitorError::Sat(e) => write!(f, "{e}"),
            MonitorError::Tdb(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<GroundError> for MonitorError {
    fn from(e: GroundError) -> Self {
        MonitorError::Ground(e)
    }
}
impl From<SatError> for MonitorError {
    fn from(e: SatError) -> Self {
        MonitorError::Sat(e)
    }
}
impl From<TdbError> for MonitorError {
    fn from(e: TdbError) -> Self {
        MonitorError::Tdb(e)
    }
}

/// Cumulative monitor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Appends served by the incremental fast path.
    pub fast_appends: usize,
    /// Re-groundings caused by new relevant elements.
    pub regrounds: usize,
    /// Phase-2 satisfiability runs.
    pub sat_checks: usize,
    /// Satisfiability results served from the residue cache.
    pub sat_cache_hits: usize,
}

struct Runtime {
    grounding: Grounding,
    residue: FormulaId,
    sat_cache: HashMap<FormulaId, bool>,
}

struct Entry {
    name: String,
    phi: Formula,
    status: Status,
    runtime: Runtime,
}

/// The online monitor. Owns the history and the registered constraints.
pub struct Monitor {
    history: History,
    constraints: Vec<Entry>,
    opts: CheckOptions,
    notion: Notion,
    stats: MonitorStats,
}

impl Monitor {
    /// A monitor over an empty history.
    pub fn new(schema: Arc<Schema>, opts: CheckOptions) -> Self {
        Self::with_history(History::new(schema), opts)
    }

    /// A monitor taking over an existing history.
    pub fn with_history(history: History, opts: CheckOptions) -> Self {
        Self {
            history,
            constraints: Vec::new(),
            opts,
            notion: Notion::default(),
            stats: MonitorStats::default(),
        }
    }

    /// Selects the violation notion (see [`Notion`]). Applies to
    /// constraints registered and updates applied afterwards.
    pub fn with_notion(mut self, notion: Notion) -> Self {
        self.notion = notion;
        self
    }

    /// The current history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Registers a universal safety constraint and checks it against the
    /// current history immediately.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        phi: Formula,
    ) -> Result<ConstraintId, MonitorError> {
        let name = name.into();
        let id = ConstraintId(self.constraints.len());
        let mut runtime = self.build_runtime(&phi)?;
        let len = self.history.len();
        let status = decide(self.notion, &mut self.stats, &self.opts, &mut runtime, len)?;
        self.constraints.push(Entry {
            name,
            phi,
            status,
            runtime,
        });
        Ok(id)
    }

    /// Status of a constraint.
    pub fn status(&self, id: ConstraintId) -> Status {
        self.constraints[id.0].status
    }

    /// Name of a constraint.
    pub fn name(&self, id: ConstraintId) -> &str {
        &self.constraints[id.0].name
    }

    /// Ids of all registered constraints.
    pub fn constraints(&self) -> impl Iterator<Item = ConstraintId> {
        (0..self.constraints.len()).map(ConstraintId)
    }

    /// Applies a transaction, producing the next state, and re-checks
    /// every live constraint. Returns the violations that became
    /// unavoidable with this update.
    pub fn append(&mut self, tx: &Transaction) -> Result<Vec<MonitorEvent>, MonitorError> {
        self.history.apply(tx)?;
        let new_state_idx = self.history.len() - 1;
        let mut events = Vec::new();
        for i in 0..self.constraints.len() {
            if matches!(self.constraints[i].status, Status::Violated { .. }) {
                continue; // safety: violations are permanent
            }
            let fast = {
                let entry = &mut self.constraints[i];
                let state = self.history.state(new_state_idx);
                match entry.runtime.grounding.state_to_prop(state) {
                    Some(w) => {
                        let rt = &mut entry.runtime;
                        let progressed = progress(&mut rt.grounding.arena, rt.residue, &w)
                            .map_err(|_| MonitorError::Sat(SatError::Past))?;
                        // Keep residues compact (□□/◇◇ and duplicate
                        // boxes otherwise accumulate across appends).
                        rt.residue =
                            ticc_ptl::simplify::simplify(&mut rt.grounding.arena, progressed);
                        true
                    }
                    None => false,
                }
            };
            if fast {
                self.stats.fast_appends += 1;
            } else {
                // New relevant element: re-ground over the full history.
                self.stats.regrounds += 1;
                let phi = self.constraints[i].phi.clone();
                let runtime = self.build_runtime(&phi)?;
                self.constraints[i].runtime = runtime;
            }
            let len = self.history.len();
            let status = decide(
                self.notion,
                &mut self.stats,
                &self.opts,
                &mut self.constraints[i].runtime,
                len,
            )?;
            if let Status::Violated { at } = status {
                self.constraints[i].status = status;
                events.push(MonitorEvent {
                    constraint: ConstraintId(i),
                    name: self.constraints[i].name.clone(),
                    at,
                });
            }
        }
        Ok(events)
    }

    /// Grounds `phi` over the current history and progresses through the
    /// whole stored prefix.
    fn build_runtime(&mut self, phi: &Formula) -> Result<Runtime, MonitorError> {
        let mut grounding = ground(&self.history, phi, self.opts.mode)?;
        let trace = std::mem::take(&mut grounding.trace);
        let progressed =
            ticc_ptl::progression::progress_trace(&mut grounding.arena, grounding.formula, &trace)
                .map_err(|_| MonitorError::Sat(SatError::Past))?;
        let residue = ticc_ptl::simplify::simplify(&mut grounding.arena, progressed);
        grounding.trace = trace;
        Ok(Runtime {
            grounding,
            residue,
            sat_cache: HashMap::new(),
        })
    }

}

/// Phase 2 on the residue, with memoisation. Under [`Notion::BadPrefix`]
/// phase 2 is skipped entirely: only a residue of `⊥` counts as a
/// violation.
fn decide(
    notion: Notion,
    stats: &mut MonitorStats,
    opts: &CheckOptions,
    rt: &mut Runtime,
    history_len: usize,
) -> Result<Status, MonitorError> {
    if notion == Notion::BadPrefix {
        let fls = rt.grounding.arena.fls();
        return Ok(if rt.residue == fls {
            Status::Violated { at: history_len }
        } else {
            Status::Satisfied
        });
    }
    let sat = if let Some(&cached) = rt.sat_cache.get(&rt.residue) {
        stats.sat_cache_hits += 1;
        cached
    } else {
        stats.sat_checks += 1;
        let r = is_satisfiable_with(&mut rt.grounding.arena, rt.residue, opts.solver)?;
        rt.sat_cache.insert(rt.residue, r.satisfiable);
        r.satisfiable
    };
    Ok(if sat {
        Status::Satisfied
    } else {
        Status::Violated { at: history_len }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_fotl::parser::parse;
    use ticc_tdb::Value;

    fn order_schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    fn sub_tx(sc: &Schema, vals: &[Value]) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let mut tx = Transaction::new();
        // Event semantics: clear previous Sub facts, insert new ones.
        for v in vals {
            tx = tx.insert(sub, vec![*v]);
        }
        tx
    }

    fn clear_tx(sc: &Schema, vals: &[Value]) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let mut tx = Transaction::new();
        for v in vals {
            tx = tx.delete(sub, vec![*v]);
        }
        tx
    }

    #[test]
    fn detects_violation_online_at_earliest_time() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let id = m.add_constraint("once-only", phi).unwrap();
        assert_eq!(m.status(id), Status::Satisfied);

        // t0: submit 1. t1: clear 1, submit 2. t2: resubmit 1 → violation.
        assert!(m.append(&sub_tx(&sc, &[1])).unwrap().is_empty());
        let tx1 = {
            let mut t = clear_tx(&sc, &[1]);
            for u in sub_tx(&sc, &[2]).updates() {
                t = match u {
                    ticc_tdb::Update::Insert(p, v) => t.insert(*p, v.clone()),
                    ticc_tdb::Update::Delete(p, v) => t.delete(*p, v.clone()),
                };
            }
            t
        };
        assert!(m.append(&tx1).unwrap().is_empty());
        let tx2 = {
            let mut t = clear_tx(&sc, &[2]);
            t = t.insert(sc.pred("Sub").unwrap(), vec![1]);
            t
        };
        let events = m.append(&tx2).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, 3);
        assert_eq!(m.status(id), Status::Violated { at: 3 });
    }

    #[test]
    fn violations_are_permanent() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let id = m.add_constraint("once-only", phi).unwrap();
        m.append(&sub_tx(&sc, &[1])).unwrap();
        // Sub(1) persists into the next snapshot (no delete): immediate
        // re-submission violation.
        let events = m.append(&Transaction::new()).unwrap();
        assert_eq!(events.len(), 1);
        // Further appends produce no duplicate events.
        assert!(m.append(&Transaction::new()).unwrap().is_empty());
        assert!(matches!(m.status(id), Status::Violated { .. }));
    }

    #[test]
    fn fast_path_used_when_domain_stable() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        m.add_constraint("once-only", phi).unwrap();
        m.append(&sub_tx(&sc, &[1])).unwrap(); // new element 1 → reground
        m.append(&clear_tx(&sc, &[1])).unwrap(); // no new element → fast
        m.append(&Transaction::new()).unwrap(); // fast
        let st = m.stats();
        assert_eq!(st.regrounds, 1);
        assert_eq!(st.fast_appends, 2);
        assert!(st.sat_cache_hits > 0, "stable residues should hit cache");
    }

    #[test]
    fn multiple_constraints_tracked_independently() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let once = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let never3 = parse(&sc, "G !Sub(3)").unwrap();
        let a = m.add_constraint("once-only", once).unwrap();
        let b = m.add_constraint("never-3", never3).unwrap();
        m.append(&sub_tx(&sc, &[1])).unwrap();
        let ev = m.append(&sub_tx(&sc, &[3])).unwrap();
        // Sub(1) persisted (no delete) → once-only violated; Sub(3) →
        // never-3 violated. Both fire on this append.
        assert_eq!(ev.len(), 2);
        assert!(matches!(m.status(a), Status::Violated { .. }));
        assert!(matches!(m.status(b), Status::Violated { .. }));
        assert_eq!(m.name(a), "once-only");
        assert_eq!(m.constraints().count(), 2);
    }

    #[test]
    fn unsatisfiable_constraint_violated_at_zero() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        // Sub(7) must hold now and never hold: unsatisfiable. Note an
        // empty history means instant 0 hasn't happened yet, so the
        // obligation is on the first state; the conjunction is already
        // unsatisfiable as a formula.
        let phi = parse(&sc, "Sub(7) & G !Sub(7)").unwrap();
        let id = m.add_constraint("impossible", phi).unwrap();
        assert_eq!(m.status(id), Status::Violated { at: 0 });
    }

    #[test]
    fn rejects_non_universal_constraints() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G F Sub(x) & (exists y. F Sub(y))").unwrap();
        assert!(matches!(
            m.add_constraint("bad", phi),
            Err(MonitorError::Ground(_))
        ));
    }
}

#[cfg(test)]
mod notion_tests {
    use super::*;
    use ticc_fotl::parser::parse;

    fn schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    /// A constraint whose violation is *not* immediately visible to
    /// progression: Sub(x) must be followed by Fill(x) at the very next
    /// instant. After `Sub(1)` + next state without `Fill(1)`, the
    /// residue is ⊥ — both notions catch that. But the unsatisfiable
    /// combination `Sub(x) ∧ ○(Sub(x) ∧ ¬Fill(x))`-style conflicts can
    /// be latent: we build one below via two clashing constraints in one
    /// formula.
    #[test]
    fn bad_prefix_notion_detects_later_than_potential() {
        let sc = schema();
        // □(Sub(1) → ○Fill(1)) ∧ □¬Fill(1): once Sub(1) happens, no
        // extension exists (the obligation ○Fill(1) clashes with
        // □¬Fill(1)) — but the residue only folds to ⊥ one state later,
        // when the missing Fill(1) becomes a fact.
        let phi = parse(&sc, "G (Sub(1) -> X Fill(1)) & G !Fill(1)").unwrap();
        let sub = sc.pred("Sub").unwrap();

        let mut strong = Monitor::new(sc.clone(), CheckOptions::default());
        let s_id = strong.add_constraint("c", phi.clone()).unwrap();
        let mut weak =
            Monitor::new(sc.clone(), CheckOptions::default()).with_notion(Notion::BadPrefix);
        let w_id = weak.add_constraint("c", phi).unwrap();

        let tx1 = Transaction::new().insert(sub, vec![1]);
        let strong_ev = strong.append(&tx1).unwrap();
        let weak_ev = weak.append(&tx1).unwrap();
        assert_eq!(strong_ev.len(), 1, "potential notion detects at once");
        assert!(weak_ev.is_empty(), "bad-prefix notion does not see it yet");
        assert_eq!(strong.status(s_id), Status::Violated { at: 1 });
        assert_eq!(weak.status(w_id), Status::Satisfied);

        // One more (empty) state folds the residue to ⊥: the weak
        // notion catches up, one instant late.
        let weak_ev2 = weak.append(&Transaction::new().delete(sub, vec![1])).unwrap();
        assert_eq!(weak_ev2.len(), 1);
        assert_eq!(weak.status(w_id), Status::Violated { at: 2 });
    }

    #[test]
    fn both_notions_agree_on_directly_visible_violations() {
        let sc = schema();
        let phi = parse(&sc, "G !Sub(3)").unwrap();
        let sub = sc.pred("Sub").unwrap();
        for notion in [Notion::Potential, Notion::BadPrefix] {
            let mut m =
                Monitor::new(sc.clone(), CheckOptions::default()).with_notion(notion);
            let id = m.add_constraint("never3", phi.clone()).unwrap();
            let ev = m.append(&Transaction::new().insert(sub, vec![3])).unwrap();
            assert_eq!(ev.len(), 1, "{notion:?}");
            assert_eq!(m.status(id), Status::Violated { at: 1 });
        }
    }

    #[test]
    fn bad_prefix_notion_runs_no_sat_checks() {
        let sc = schema();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut m =
            Monitor::new(sc.clone(), CheckOptions::default()).with_notion(Notion::BadPrefix);
        m.add_constraint("once", phi).unwrap();
        let sub = sc.pred("Sub").unwrap();
        m.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        m.append(&Transaction::new().delete(sub, vec![1])).unwrap();
        assert_eq!(m.stats().sat_checks, 0, "progression only");
    }
}
