//! Online incremental integrity monitor — a thin facade over the
//! shared [`Engine`].
//!
//! The intended deployment of the paper's method: constraints are
//! registered once, and after every update (transaction) the monitor
//! decides potential satisfaction of each constraint *at the earliest
//! possible time* — the property that distinguishes this method from the
//! weaker notions implemented by Lipeck & Saake and Sistla & Wolfson
//! (Section 5).
//!
//! Incrementality lives in the engine layer: appends that introduce no
//! new relevant element reuse the existing grounding (encode one
//! state, progress the residue, memoised satisfiability); appends that
//! do grow `R_D` are handled by delta re-grounding — or a full rebuild
//! under [`Regrounding::Full`](crate::engine::Regrounding) or the full
//! (paper-literal) grounding construction. The monitor only translates
//! the engine's counters into its historical [`MonitorStats`] shape.

use crate::engine::Engine;
use crate::extension::CheckOptions;
use crate::obs::EngineStats;
use std::sync::Arc;
use ticc_fotl::Formula;
use ticc_tdb::{History, Schema, Transaction};

use crate::error::Error;

#[allow(deprecated)]
pub use crate::engine::MonitorError;
pub use crate::engine::{ConstraintId, MonitorEvent, Notion, Status};

/// Cumulative monitor statistics (the engine's counters folded into
/// the monitor's historical shape; see [`Monitor::engine_stats`] for
/// the full spine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Appends served by the incremental fast path.
    pub fast_appends: usize,
    /// Re-groundings caused by new relevant elements (full rebuilds
    /// and delta re-grounds combined).
    pub regrounds: usize,
    /// Phase-2 satisfiability runs.
    pub sat_checks: usize,
    /// Satisfiability results served from the residue cache.
    pub sat_cache_hits: usize,
}

/// The online monitor. Owns the history and the registered constraints
/// (through the engine).
pub struct Monitor {
    engine: Engine,
}

impl Monitor {
    /// A monitor over an empty history.
    pub fn new(schema: Arc<Schema>, opts: CheckOptions) -> Self {
        Self {
            engine: Engine::new(schema, opts),
        }
    }

    /// A monitor taking over an existing history.
    pub fn with_history(history: History, opts: CheckOptions) -> Self {
        Self {
            engine: Engine::with_history(history, opts),
        }
    }

    /// A monitor over an existing engine — e.g. one restored from a
    /// durable snapshot by [`Engine::open`].
    pub fn from_engine(engine: Engine) -> Self {
        Self { engine }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine (checkpointing,
    /// compaction, store attachment).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Selects the violation notion (see [`Notion`]). Applies to
    /// constraints registered and updates applied afterwards.
    pub fn with_notion(mut self, notion: Notion) -> Self {
        self.engine.set_notion(notion);
        self
    }

    /// The current history.
    pub fn history(&self) -> &History {
        self.engine.history()
    }

    /// Cumulative statistics in the monitor's historical shape.
    pub fn stats(&self) -> MonitorStats {
        let s = self.engine.stats();
        MonitorStats {
            fast_appends: s.fast_appends as usize,
            regrounds: (s.regrounds + s.delta_grounds) as usize,
            sat_checks: s.sat_checks as usize,
            sat_cache_hits: s.cache.sat_hits as usize,
        }
    }

    /// The full observability spine (counters, timers, gauges).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Registers a universal safety constraint and checks it against the
    /// current history immediately.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        phi: Formula,
    ) -> Result<ConstraintId, Error> {
        self.engine.add_constraint(name, phi)
    }

    /// Status of a constraint.
    pub fn status(&self, id: ConstraintId) -> Status {
        self.engine.status(id)
    }

    /// Name of a constraint.
    pub fn name(&self, id: ConstraintId) -> &str {
        self.engine.name(id)
    }

    /// Ids of all registered constraints.
    pub fn constraints(&self) -> impl Iterator<Item = ConstraintId> {
        self.engine.constraints()
    }

    /// Applies a transaction, producing the next state, and re-checks
    /// every live constraint. Returns the violations that became
    /// unavoidable with this update.
    pub fn append(&mut self, tx: &Transaction) -> Result<Vec<MonitorEvent>, Error> {
        self.engine.append(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_fotl::parser::parse;
    use ticc_tdb::Value;

    fn order_schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    fn sub_tx(sc: &Schema, vals: &[Value]) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let mut tx = Transaction::new();
        // Event semantics: clear previous Sub facts, insert new ones.
        for v in vals {
            tx = tx.insert(sub, vec![*v]);
        }
        tx
    }

    fn clear_tx(sc: &Schema, vals: &[Value]) -> Transaction {
        let sub = sc.pred("Sub").unwrap();
        let mut tx = Transaction::new();
        for v in vals {
            tx = tx.delete(sub, vec![*v]);
        }
        tx
    }

    #[test]
    fn detects_violation_online_at_earliest_time() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let id = m.add_constraint("once-only", phi).unwrap();
        assert_eq!(m.status(id), Status::Satisfied);

        // t0: submit 1. t1: clear 1, submit 2. t2: resubmit 1 → violation.
        assert!(m.append(&sub_tx(&sc, &[1])).unwrap().is_empty());
        let tx1 = {
            let mut t = clear_tx(&sc, &[1]);
            for u in sub_tx(&sc, &[2]).updates() {
                t = match u {
                    ticc_tdb::Update::Insert(p, v) => t.insert(*p, v.clone()),
                    ticc_tdb::Update::Delete(p, v) => t.delete(*p, v.clone()),
                };
            }
            t
        };
        assert!(m.append(&tx1).unwrap().is_empty());
        let tx2 = {
            let mut t = clear_tx(&sc, &[2]);
            t = t.insert(sc.pred("Sub").unwrap(), vec![1]);
            t
        };
        let events = m.append(&tx2).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, 3);
        assert_eq!(m.status(id), Status::Violated { at: 3 });
    }

    #[test]
    fn violations_are_permanent() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let id = m.add_constraint("once-only", phi).unwrap();
        m.append(&sub_tx(&sc, &[1])).unwrap();
        // Sub(1) persists into the next snapshot (no delete): immediate
        // re-submission violation.
        let events = m.append(&Transaction::new()).unwrap();
        assert_eq!(events.len(), 1);
        // Further appends produce no duplicate events.
        assert!(m.append(&Transaction::new()).unwrap().is_empty());
        assert!(matches!(m.status(id), Status::Violated { .. }));
    }

    #[test]
    fn fast_path_used_when_domain_stable() {
        let sc = order_schema();
        // Exercises the symbolic sat cache specifically; the compiled
        // default performs no per-append phase-2 checks at all.
        let mut m = Monitor::new(
            sc.clone(),
            CheckOptions::builder().template_automata(false).build(),
        );
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        m.add_constraint("once-only", phi).unwrap();
        m.append(&sub_tx(&sc, &[1])).unwrap(); // new element 1 → reground
        m.append(&clear_tx(&sc, &[1])).unwrap(); // no new element → fast
        m.append(&Transaction::new()).unwrap(); // fast
        let st = m.stats();
        assert_eq!(st.regrounds, 1);
        assert_eq!(st.fast_appends, 2);
        assert!(st.sat_cache_hits > 0, "stable residues should hit cache");
    }

    #[test]
    fn multiple_constraints_tracked_independently() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let once = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let never3 = parse(&sc, "G !Sub(3)").unwrap();
        let a = m.add_constraint("once-only", once).unwrap();
        let b = m.add_constraint("never-3", never3).unwrap();
        m.append(&sub_tx(&sc, &[1])).unwrap();
        let ev = m.append(&sub_tx(&sc, &[3])).unwrap();
        // Sub(1) persisted (no delete) → once-only violated; Sub(3) →
        // never-3 violated. Both fire on this append.
        assert_eq!(ev.len(), 2);
        assert!(matches!(m.status(a), Status::Violated { .. }));
        assert!(matches!(m.status(b), Status::Violated { .. }));
        assert_eq!(m.name(a), "once-only");
        assert_eq!(m.constraints().count(), 2);
    }

    #[test]
    fn unsatisfiable_constraint_violated_at_zero() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        // Sub(7) must hold now and never hold: unsatisfiable. Note an
        // empty history means instant 0 hasn't happened yet, so the
        // obligation is on the first state; the conjunction is already
        // unsatisfiable as a formula.
        let phi = parse(&sc, "Sub(7) & G !Sub(7)").unwrap();
        let id = m.add_constraint("impossible", phi).unwrap();
        assert_eq!(m.status(id), Status::Violated { at: 0 });
    }

    #[test]
    fn rejects_non_universal_constraints() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G F Sub(x) & (exists y. F Sub(y))").unwrap();
        assert!(matches!(
            m.add_constraint("bad", phi),
            Err(Error::Ground(_))
        ));
    }

    #[test]
    fn engine_stats_exposed_through_facade() {
        let sc = order_schema();
        let mut m = Monitor::new(sc.clone(), CheckOptions::default());
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        m.add_constraint("once-only", phi).unwrap();
        m.append(&sub_tx(&sc, &[1])).unwrap();
        let es = m.engine_stats();
        assert_eq!(es.appends, 1);
        assert_eq!(es.grounds, 1);
        assert_eq!(es.regrounds + es.delta_grounds, 1);
        // The facade's stats are a projection of the spine.
        let ms = m.stats();
        assert_eq!(ms.regrounds as u64, es.regrounds + es.delta_grounds);
    }
}

#[cfg(test)]
mod notion_tests {
    use super::*;
    use ticc_fotl::parser::parse;

    fn schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    /// A constraint whose violation is *not* immediately visible to
    /// progression: Sub(x) must be followed by Fill(x) at the very next
    /// instant. After `Sub(1)` + next state without `Fill(1)`, the
    /// residue is ⊥ — both notions catch that. But the unsatisfiable
    /// combination `Sub(x) ∧ ○(Sub(x) ∧ ¬Fill(x))`-style conflicts can
    /// be latent: we build one below via two clashing constraints in one
    /// formula.
    #[test]
    fn bad_prefix_notion_detects_later_than_potential() {
        let sc = schema();
        // □(Sub(1) → ○Fill(1)) ∧ □¬Fill(1): once Sub(1) happens, no
        // extension exists (the obligation ○Fill(1) clashes with
        // □¬Fill(1)) — but the residue only folds to ⊥ one state later,
        // when the missing Fill(1) becomes a fact.
        let phi = parse(&sc, "G (Sub(1) -> X Fill(1)) & G !Fill(1)").unwrap();
        let sub = sc.pred("Sub").unwrap();

        let mut strong = Monitor::new(sc.clone(), CheckOptions::default());
        let s_id = strong.add_constraint("c", phi.clone()).unwrap();
        let mut weak =
            Monitor::new(sc.clone(), CheckOptions::default()).with_notion(Notion::BadPrefix);
        let w_id = weak.add_constraint("c", phi).unwrap();

        let tx1 = Transaction::new().insert(sub, vec![1]);
        let strong_ev = strong.append(&tx1).unwrap();
        let weak_ev = weak.append(&tx1).unwrap();
        assert_eq!(strong_ev.len(), 1, "potential notion detects at once");
        assert!(weak_ev.is_empty(), "bad-prefix notion does not see it yet");
        assert_eq!(strong.status(s_id), Status::Violated { at: 1 });
        assert_eq!(weak.status(w_id), Status::Satisfied);

        // One more (empty) state folds the residue to ⊥: the weak
        // notion catches up, one instant late.
        let weak_ev2 = weak
            .append(&Transaction::new().delete(sub, vec![1]))
            .unwrap();
        assert_eq!(weak_ev2.len(), 1);
        assert_eq!(weak.status(w_id), Status::Violated { at: 2 });
    }

    #[test]
    fn both_notions_agree_on_directly_visible_violations() {
        let sc = schema();
        let phi = parse(&sc, "G !Sub(3)").unwrap();
        let sub = sc.pred("Sub").unwrap();
        for notion in [Notion::Potential, Notion::BadPrefix] {
            let mut m = Monitor::new(sc.clone(), CheckOptions::default()).with_notion(notion);
            let id = m.add_constraint("never3", phi.clone()).unwrap();
            let ev = m.append(&Transaction::new().insert(sub, vec![3])).unwrap();
            assert_eq!(ev.len(), 1, "{notion:?}");
            assert_eq!(m.status(id), Status::Violated { at: 1 });
        }
    }

    #[test]
    fn bad_prefix_notion_runs_no_sat_checks() {
        let sc = schema();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut m =
            Monitor::new(sc.clone(), CheckOptions::default()).with_notion(Notion::BadPrefix);
        m.add_constraint("once", phi).unwrap();
        let sub = sc.pred("Sub").unwrap();
        m.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        m.append(&Transaction::new().delete(sub, vec![1])).unwrap();
        assert_eq!(m.stats().sat_checks, 0, "progression only");
    }
}
