//! Violation diagnostics.
//!
//! Potential satisfaction is prefix-antitone for safety constraints:
//! once no extension exists, no longer history can repair it. The
//! earliest-violation search grounds once over the full history (sound
//! by Lemma 4.1: extra relevant elements behave like fresh ones for the
//! shorter prefixes) and then progresses state by state, running the
//! phase-2 satisfiability test on each residue.

use crate::error::Error;
use crate::extension::CheckOptions;
use crate::ground::ground_with;
use std::collections::HashMap;
use ticc_fotl::Formula;
use ticc_ptl::progression::progress;
use ticc_ptl::sat::is_satisfiable_with;
use ticc_tdb::History;

/// Returns the smallest number of states `n ≥ 0` such that the prefix
/// `(D0, …, D_{n-1})` has **no** extension satisfying `phi` (`n == 0`
/// means `phi` itself is unsatisfiable), or `None` if the whole history
/// remains potentially satisfied.
pub fn earliest_violation(
    history: &History,
    phi: &Formula,
    opts: &CheckOptions,
) -> Result<Option<usize>, Error> {
    let mut g = ground_with(history, phi, opts.mode, opts.threads)?;
    let mut residue = g.formula;
    let mut cache: HashMap<ticc_ptl::arena::FormulaId, bool> = HashMap::new();
    for n in 0..=history.len() {
        let sat = match cache.get(&residue) {
            Some(&s) => s,
            None => {
                let r =
                    is_satisfiable_with(&mut g.arena, residue, opts.solver).map_err(Error::Sat)?;
                cache.insert(residue, r.satisfiable);
                r.satisfiable
            }
        };
        if !sat {
            return Ok(Some(n));
        }
        if n < history.len() {
            let w = g.trace[n].clone();
            residue = progress(&mut g.arena, residue, &w)
                .map_err(|_| Error::Sat(ticc_ptl::sat::SatError::Past))?;
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ticc_fotl::parser::parse;
    use ticc_tdb::{Schema, State, Value};

    fn history(spec: &[&[Value]]) -> History {
        let sc: Arc<Schema> = Schema::builder().pred("Sub", 1).build();
        let mut h = History::new(sc.clone());
        for subs in spec {
            let mut s = State::empty(sc.clone());
            for &v in *subs {
                s.insert_named("Sub", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        h
    }

    #[test]
    fn finds_earliest_point() {
        let phi_src = "forall x. G (Sub(x) -> X G !Sub(x))";
        // States: Sub(1) | ∅ | Sub(1) again | ∅ — violation fixed after
        // the third state (prefix length 3).
        let h = history(&[&[1], &[], &[1], &[]]);
        let phi = parse(h.schema(), phi_src).unwrap();
        assert_eq!(
            earliest_violation(&h, &phi, &CheckOptions::default()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn none_when_satisfied() {
        let h = history(&[&[1], &[2], &[3]]);
        let phi = parse(h.schema(), "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        assert_eq!(
            earliest_violation(&h, &phi, &CheckOptions::default()).unwrap(),
            None
        );
    }

    #[test]
    fn zero_for_unsatisfiable_formula() {
        let h = history(&[&[1]]);
        let phi = parse(h.schema(), "Sub(9) & G !Sub(9)").unwrap();
        assert_eq!(
            earliest_violation(&h, &phi, &CheckOptions::default()).unwrap(),
            Some(0)
        );
    }

    #[test]
    fn agrees_with_full_check() {
        use crate::extension::check_potential_satisfaction;
        let phi_src = "forall x. G (Sub(x) -> X G !Sub(x))";
        let h = history(&[&[1], &[1], &[2]]);
        let phi = parse(h.schema(), phi_src).unwrap();
        let earliest = earliest_violation(&h, &phi, &CheckOptions::default())
            .unwrap()
            .unwrap();
        // The prefix one shorter is satisfied; the prefix at the point
        // is not.
        let ok = h.prefix(earliest - 1);
        assert!(
            check_potential_satisfaction(&ok, &phi, &CheckOptions::default())
                .unwrap()
                .potentially_satisfied
        );
        let bad = h.prefix(earliest);
        assert!(
            !check_potential_satisfaction(&bad, &phi, &CheckOptions::default())
                .unwrap()
                .potentially_satisfied
        );
    }
}
