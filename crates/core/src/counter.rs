//! The binary-counter lower-bound family (Section 6).
//!
//! Section 6 argues that `|R_D|` cannot be removed from the exponent of
//! Theorem 4.2's bound: a single database state can seed a universal
//! safety constraint whose unique extension simulates an exponentially
//! long computation. This module realises that shape concretely with an
//! `n`-bit binary counter:
//!
//! * the schema has one monadic predicate `Bit`; constants `c0 … c_{n-1}`
//!   name the bit positions (so they are relevant in any history);
//! * the constraint forces, at every instant, the next state's `Bit` set
//!   to be the binary increment of the current one
//!   (`Bit'(ci) ⇔ Bit(ci) ⊕ ⋀_{j<i} Bit(cj)`, wrap-around at all-ones);
//! * optionally it additionally forbids the all-ones pattern
//!   (`□¬(Bit(c0) ∧ … ∧ Bit(c_{n-1}))`).
//!
//! Starting from the all-zeros state the extension is uniquely
//! determined; with the all-ones pattern forbidden, no extension exists
//! — but establishing that requires the decision procedure to explore
//! `~2^n` tableau states from an `O(n)`-sized input. Experiment E10
//! measures this forced exponential behaviour.

use std::sync::Arc;
use ticc_fotl::{Formula, Term};
use ticc_tdb::{History, Schema, State};

/// A generated counter instance.
pub struct CounterInstance {
    /// Schema with `Bit` and the position constants.
    pub schema: Arc<Schema>,
    /// Single-state history: the all-zeros counter.
    pub history: History,
    /// The universal (quantifier-free, hence `k = 0`) constraint.
    pub constraint: Formula,
    /// Number of bits.
    pub bits: usize,
}

fn iff(a: Formula, b: Formula) -> Formula {
    a.clone().implies(b.clone()).and(b.implies(a))
}

fn xor(a: Formula, b: Formula) -> Formula {
    (a.clone().and(b.clone().not())).or(a.not().and(b))
}

/// Builds the `n`-bit counter instance. With `forbid_full` the
/// constraint is violated (after the counter would reach all-ones);
/// without it, it is potentially satisfied forever.
pub fn counter_instance(bits: usize, forbid_full: bool) -> CounterInstance {
    assert!(bits >= 1, "need at least one bit");
    let mut sb = Schema::builder().pred("Bit", 1);
    for i in 0..bits {
        sb = sb.constant(&format!("c{i}"));
    }
    let schema = sb.build();
    let bit_p = schema.pred("Bit").unwrap();
    let bit = |i: usize| {
        Formula::pred(
            bit_p,
            vec![Term::Const(schema.constant(&format!("c{i}")).unwrap())],
        )
    };

    // Increment rules: ○Bit(ci) ⇔ Bit(ci) ⊕ ⋀_{j<i} Bit(cj).
    let mut rules = Vec::with_capacity(bits + 1);
    for i in 0..bits {
        let carry = Formula::and_all((0..i).map(bit));
        let rule = iff(bit(i).next(), xor(bit(i), carry));
        rules.push(rule.always());
    }
    if forbid_full {
        let full = Formula::and_all((0..bits).map(bit));
        rules.push(full.not().always());
    }
    let constraint = Formula::and_all(rules);

    // D0: all zeros. The positions are relevant through the constants.
    let mut history = History::new(schema.clone());
    for i in 0..bits {
        let c = schema.constant(&format!("c{i}")).unwrap();
        history.set_constant(c, i as u64);
    }
    history.push_state(State::empty(schema.clone()));

    CounterInstance {
        schema,
        history,
        constraint,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extension::{check_potential_satisfaction, CheckOptions};
    use ticc_fotl::classify::{classify, FormulaClass};

    #[test]
    fn constraint_is_universal_with_zero_external_vars() {
        let inst = counter_instance(3, true);
        assert_eq!(
            classify(&inst.constraint),
            FormulaClass::Universal { external: 0 }
        );
        assert!(!inst.constraint.uses_extended_vocabulary());
    }

    #[test]
    fn without_forbid_the_counter_runs_forever() {
        let inst = counter_instance(3, false);
        let out =
            check_potential_satisfaction(&inst.history, &inst.constraint, &CheckOptions::default())
                .unwrap();
        assert!(out.potentially_satisfied);
        // The witness must follow the increment rule: decode and check
        // the first steps 000 → 100 → 010 (lsb-first displays).
        let w = out.witness.unwrap();
        let bit_p = inst.schema.pred("Bit").unwrap();
        let all: Vec<&ticc_tdb::State> = w.prefix.iter().chain(w.cycle.iter()).collect();
        if all.len() >= 2 {
            // After all-zeros D0, the first extension state has Bit(c0).
            assert!(all[0].holds(bit_p, &[0]), "bit 0 must flip first");
        }
    }

    #[test]
    fn forbidding_full_pattern_violates() {
        for bits in 1..=3 {
            let inst = counter_instance(bits, true);
            let out = check_potential_satisfaction(
                &inst.history,
                &inst.constraint,
                &CheckOptions::default(),
            )
            .unwrap();
            assert!(
                !out.potentially_satisfied,
                "{bits}-bit counter must reach all-ones eventually"
            );
        }
    }

    #[test]
    fn automaton_grows_exponentially_with_bits() {
        let small = counter_instance(2, true);
        let big = counter_instance(4, true);
        let s = check_potential_satisfaction(
            &small.history,
            &small.constraint,
            &CheckOptions::default(),
        )
        .unwrap();
        let b =
            check_potential_satisfaction(&big.history, &big.constraint, &CheckOptions::default())
                .unwrap();
        assert!(
            b.stats.sat.states > 2 * s.stats.sat.states,
            "state count must blow up: {} vs {}",
            s.stats.sat.states,
            b.stats.sat.states
        );
    }
}
