//! Observability spine: counters and timers for the incremental engine.
//!
//! Every grounding, progression, and satisfiability decision in the
//! [`engine`](crate::engine) layer increments monotonic counters and
//! accumulates wall-clock time here, so the shell's `:stats` command
//! and the bench harness can read one machine-readable snapshot
//! ([`EngineStats`]) instead of scraping logs. No external
//! dependencies — plain `u64` counters and [`std::time`] durations.

use std::time::{Duration, Instant};
use ticc_store::StoreStats;

/// Counters for the engine's bounded memo layers — the residue
/// satisfiability memo and the safety-automaton transition cache — plus
/// the letter-index gauge. One sub-struct so the monitor facade, the
/// shell's `:stats` view, and the bench columns all read cache activity
/// from a single source of truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Satisfiability answers served from the per-residue memo.
    pub sat_hits: u64,
    /// Entries dropped from the satisfiability memo at its size bound.
    pub sat_evictions: u64,
    /// Appends served entirely from the transition cache: progression
    /// *and* phase-2 satisfiability skipped.
    pub transition_hits: u64,
    /// Fast-path appends that had to run progression (the transition
    /// was then recorded).
    pub transition_misses: u64,
    /// Entries dropped from the transition cache at its size bound.
    pub transition_evictions: u64,
    /// Gauge: `(PredId, tuple) → AtomId` letter-index entries across
    /// live groundings.
    pub letter_index_len: u64,
}

impl CacheStats {
    /// Whether any cache activity has been observed (gates the
    /// `cache:` section of [`EngineStats::render`]).
    pub fn any(&self) -> bool {
        self.sat_hits
            + self.sat_evictions
            + self.transition_hits
            + self.transition_misses
            + self.transition_evictions
            + self.letter_index_len
            > 0
    }

    fn absorb(&mut self, other: &CacheStats) {
        self.sat_hits += other.sat_hits;
        self.sat_evictions += other.sat_evictions;
        self.transition_hits += other.transition_hits;
        self.transition_misses += other.transition_misses;
        self.transition_evictions += other.transition_evictions;
        self.letter_index_len += other.letter_index_len;
    }
}

/// Counters and gauges for the tiered history store — truncation
/// behind the retention horizon and the cold-state spill segment.
/// Gauges describe the current tiering; counters are monotonic over
/// the engine's lifetime. All zero while the history budget is
/// `Unbounded` (the default), which gates the `history:` section of
/// [`EngineStats::render`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Gauge: states resident in memory (the retained suffix).
    pub resident_states: u64,
    /// Gauge: estimated bytes held by resident states and
    /// per-constraint traces.
    pub resident_bytes: u64,
    /// Gauge: instants truncated behind the retention horizon (the
    /// history's `base`; also the first spilled-to-disk instant
    /// count).
    pub spilled_instants: u64,
    /// Gauge: distinct states in the spill segment (instants dedup to
    /// pages, so this is ≤ `spilled_instants`).
    pub spilled_distinct: u64,
    /// Gauge: bytes of the spill segment file.
    pub spilled_bytes: u64,
    /// Truncations performed (each drops a prefix of resident states).
    pub truncations: u64,
    /// Cold states paged back in from the spill segment (delta
    /// re-ground replays reaching behind the horizon).
    pub page_loads: u64,
    /// Estimated heap bytes reclaimed by truncations (states plus
    /// trace words dropped).
    pub reclaimed_bytes: u64,
}

impl HistoryStats {
    /// Whether the tiered history store has done anything (gates the
    /// `history:` section of [`EngineStats::render`]).
    pub fn any(&self) -> bool {
        self.spilled_instants
            + self.spilled_distinct
            + self.spilled_bytes
            + self.truncations
            + self.page_loads
            + self.reclaimed_bytes
            > 0
    }

    fn absorb(&mut self, other: &HistoryStats) {
        self.resident_states += other.resident_states;
        self.resident_bytes += other.resident_bytes;
        self.spilled_instants += other.spilled_instants;
        self.spilled_distinct += other.spilled_distinct;
        self.spilled_bytes += other.spilled_bytes;
        self.truncations += other.truncations;
        self.page_loads += other.page_loads;
        self.reclaimed_bytes += other.reclaimed_bytes;
    }
}

/// A machine-readable snapshot of the engine's counters, timers, and
/// size gauges. Counters are monotonic over the engine's lifetime;
/// gauges reflect the moment the snapshot was taken.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Transactions applied (monitor appends / engine steps).
    pub appends: u64,
    /// Appends served by the incremental fast path (no new relevant
    /// element: encode one state, progress residues).
    pub fast_appends: u64,
    /// Initial groundings (constraint registration, one-shot checks).
    pub grounds: u64,
    /// Full re-groundings (grounding rebuilt from scratch over the
    /// whole history).
    pub regrounds: u64,
    /// Incremental (delta) re-groundings: only the instantiations
    /// mentioning new relevant elements were ground and replayed.
    pub delta_grounds: u64,
    /// Ground instantiations added by delta re-groundings.
    pub new_conjuncts: u64,
    /// Conjunct blocks replayed through a stored trace by delta
    /// re-groundings — stays `O(|Δ-part|)`, while a full rebuild
    /// re-derives all `|M|^k` instantiations.
    pub replayed_conjuncts: u64,
    /// Single-state progression steps.
    pub progress_steps: u64,
    /// Letters patched in place by the incremental encoding (tuples
    /// inserted/deleted by transactions on the fast path) — the
    /// `O(|Δtx|)` work a full re-encode of the state would hide.
    pub encode_patched_atoms: u64,
    /// Phase-2 satisfiability runs.
    pub sat_checks: u64,
    /// Appends served entirely by compiled template automata: every
    /// unit advanced by dense table lookup — no progression, no
    /// phase 2.
    pub automaton_appends: u64,
    /// Individual unit state transitions taken inside compiled
    /// template automata (dormant units — self-loops under an
    /// unchanged column — are skipped, so this stays `O(|Δtx|)` per
    /// append).
    pub automaton_steps: u64,
    /// Cache-layer counters (satisfiability memo, transition cache,
    /// letter index).
    pub cache: CacheStats,
    /// Durability-layer counters, mirrored from the attached
    /// [`ticc_store::Store`] when the snapshot is taken (all zero when
    /// the engine runs without a store).
    pub store: StoreStats,
    /// Tiered-history counters and gauges (truncation + spill); all
    /// zero under the default `HistoryBudget::Unbounded`.
    pub history: HistoryStats,
    /// Gauge: interned propositional letters across live groundings.
    pub letters: u64,
    /// Gauge: formula-arena DAG nodes across live groundings.
    pub arena_nodes: u64,
    /// Gauge: ground instantiations (`|M|^k`) across live groundings.
    pub mappings: u64,
    /// Gauge: instantiations actually enumerated and ground across live
    /// groundings — equals `mappings` under the odometer, the pruned
    /// count under the indexed strategy.
    pub inst_enumerated: u64,
    /// Gauge: instantiations the indexed strategy skipped because none
    /// of their flexible atoms ever occur in the history (each is
    /// subsumed by the canonical rigid-false residue).
    pub inst_pruned: u64,
    /// Gauge: enumerated instantiations whose entire ground conjunct
    /// hash-consed to a formula already produced by an earlier
    /// instantiation (cross-instantiation structure sharing).
    pub inst_shared: u64,
    /// Gauge: distinct template automata compiled across live
    /// contexts — one per residue shape modulo letter renaming, shared
    /// by every isomorphic instantiation.
    pub templates_compiled: u64,
    /// Gauge: explicit automaton states across all compiled templates.
    pub automaton_states: u64,
    /// Gauge: instantiation units currently bound to a compiled
    /// template (each carries only a `u32` state).
    pub automaton_insts: u64,
    /// Wall-clock spent grounding (initial, full, and delta).
    pub ground_time: Duration,
    /// Wall-clock spent building and joining the atom-occurrence index
    /// (subset of `ground_time`'s phase; zero under the odometer).
    pub index_build_time: Duration,
    /// Wall-clock spent compiling template automata — a build-phase
    /// gauge like `index_build_time`, never part of append latency,
    /// and zeroed on snapshot restore (this process did not pay it).
    pub automaton_compile_time: Duration,
    /// Wall-clock spent in progression (trace replay and per-append).
    pub progress_time: Duration,
    /// Wall-clock spent in phase-2 satisfiability.
    pub sat_time: Duration,
    /// Batched appends committed through `Engine::append_batch` (each
    /// drains the whole batch in one pooled constraint sweep).
    pub batches: u64,
    /// Transactions that went through batched appends;
    /// `batched_txs / batches` is the mean drained batch size.
    pub batched_txs: u64,
    /// Gauge: threads of the engine's persistent worker pool (0 until
    /// the first parallel append creates it, and always 0 under
    /// `Threads::Off`).
    pub pool_workers: u64,
    /// Outcome buffers allocated for pooled constraint sweeps. The
    /// engine recycles one buffer per pool chunk across dispatches,
    /// so after warm-up this stays flat no matter how many appends
    /// run (asserted by test) — part of the no-alloc hot-path
    /// discipline.
    pub pool_buf_allocs: u64,
    /// Parallel fan-outs that actually dispatched to worker threads
    /// (sharded groundings, pooled constraint/trigger sweeps).
    pub par_phases: u64,
    /// Gauge: the widest worker pool any single fan-out used.
    pub par_workers: u64,
    /// Wall-clock spent inside parallel fan-outs.
    pub par_time: Duration,
    /// Busy time summed across all workers of all fan-outs. The ratio
    /// `par busy time / par time` approximates the effective speedup.
    pub par_busy_time: Duration,
}

impl EngineStats {
    /// A human-readable multi-line rendering (the `:stats` shell view).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("engine counters:\n");
        s.push_str(&format!("  appends             {}\n", self.appends));
        s.push_str(&format!("  fast appends        {}\n", self.fast_appends));
        s.push_str(&format!("  grounds             {}\n", self.grounds));
        s.push_str(&format!("  full regrounds      {}\n", self.regrounds));
        s.push_str(&format!("  delta regrounds     {}\n", self.delta_grounds));
        s.push_str(&format!("  new conjuncts       {}\n", self.new_conjuncts));
        s.push_str(&format!(
            "  replayed conjuncts  {}\n",
            self.replayed_conjuncts
        ));
        s.push_str(&format!("  progress steps      {}\n", self.progress_steps));
        s.push_str(&format!(
            "  patched atoms       {}\n",
            self.encode_patched_atoms
        ));
        s.push_str(&format!("  sat checks          {}\n", self.sat_checks));
        s.push_str("engine gauges:\n");
        s.push_str(&format!("  letters             {}\n", self.letters));
        s.push_str(&format!("  arena nodes         {}\n", self.arena_nodes));
        s.push_str(&format!("  mappings            {}\n", self.mappings));
        s.push_str(&format!("  inst enumerated     {}\n", self.inst_enumerated));
        s.push_str(&format!("  inst pruned         {}\n", self.inst_pruned));
        s.push_str(&format!("  inst shared         {}\n", self.inst_shared));
        s.push_str("engine timers:\n");
        s.push_str(&format!("  ground time         {:?}\n", self.ground_time));
        s.push_str(&format!(
            "  index build time    {:?}\n",
            self.index_build_time
        ));
        s.push_str(&format!("  progress time       {:?}\n", self.progress_time));
        s.push_str(&format!("  sat time            {:?}", self.sat_time));
        if self.automata_any() {
            s.push_str("\nautomata:\n");
            s.push_str(&format!(
                "  templates compiled  {}\n",
                self.templates_compiled
            ));
            s.push_str(&format!(
                "  automaton states    {}\n",
                self.automaton_states
            ));
            s.push_str(&format!("  bound insts         {}\n", self.automaton_insts));
            s.push_str(&format!(
                "  automaton appends   {}\n",
                self.automaton_appends
            ));
            s.push_str(&format!("  automaton steps     {}\n", self.automaton_steps));
            s.push_str(&format!(
                "  compile time        {:?}",
                self.automaton_compile_time
            ));
        }
        if self.cache.any() {
            let c = &self.cache;
            s.push_str("\ncache:\n");
            s.push_str(&format!("  sat memo hits       {}\n", c.sat_hits));
            s.push_str(&format!("  sat memo evictions  {}\n", c.sat_evictions));
            s.push_str(&format!("  transition hits     {}\n", c.transition_hits));
            s.push_str(&format!("  transition misses   {}\n", c.transition_misses));
            s.push_str(&format!(
                "  transition evicted  {}\n",
                c.transition_evictions
            ));
            s.push_str(&format!("  letter index        {}", c.letter_index_len));
        }
        if self.store.any() {
            let st = &self.store;
            s.push_str("\nstore:\n");
            s.push_str(&format!("  tx frames           {}\n", st.tx_frames));
            s.push_str(&format!("  snapshot frames     {}\n", st.snapshot_frames));
            s.push_str(&format!("  bytes written       {}\n", st.bytes_written));
            s.push_str(&format!("  fsyncs              {}\n", st.fsyncs));
            s.push_str(&format!(
                "  last snapshot bytes {}\n",
                st.last_snapshot_bytes
            ));
            s.push_str(&format!("  recovered txs       {}\n", st.recovered_txs));
            s.push_str(&format!("  truncated bytes     {}\n", st.truncated_bytes));
            s.push_str(&format!("  reclaimed bytes     {}", st.reclaimed_bytes));
        }
        if self.history.any() {
            let h = &self.history;
            s.push_str("\nhistory:\n");
            s.push_str(&format!("  resident states     {}\n", h.resident_states));
            s.push_str(&format!("  resident bytes      {}\n", h.resident_bytes));
            s.push_str(&format!("  spilled instants    {}\n", h.spilled_instants));
            s.push_str(&format!("  spilled distinct    {}\n", h.spilled_distinct));
            s.push_str(&format!("  spilled bytes       {}\n", h.spilled_bytes));
            s.push_str(&format!("  truncations         {}\n", h.truncations));
            s.push_str(&format!("  page loads          {}\n", h.page_loads));
            s.push_str(&format!("  reclaimed bytes     {}", h.reclaimed_bytes));
        }
        if self.par_phases > 0 || self.pool_workers > 0 || self.batches > 0 {
            let speedup = if self.par_time > Duration::ZERO {
                self.par_busy_time.as_secs_f64() / self.par_time.as_secs_f64()
            } else {
                1.0
            };
            s.push_str("\nparallel:\n");
            s.push_str(&format!("  par phases          {}\n", self.par_phases));
            s.push_str(&format!("  par workers (max)   {}\n", self.par_workers));
            s.push_str(&format!("  pool workers        {}\n", self.pool_workers));
            s.push_str(&format!("  pool buf allocs     {}\n", self.pool_buf_allocs));
            s.push_str(&format!("  batches             {}\n", self.batches));
            s.push_str(&format!("  batched txs         {}\n", self.batched_txs));
            s.push_str(&format!("  par time            {:?}\n", self.par_time));
            s.push_str(&format!("  par busy time       {:?}\n", self.par_busy_time));
            s.push_str(&format!("  effective speedup   {speedup:.2}x"));
        }
        s
    }

    /// Whether any template-automaton activity has been observed (gates
    /// the `automata:` section of [`EngineStats::render`]).
    pub fn automata_any(&self) -> bool {
        self.templates_compiled
            + self.automaton_states
            + self.automaton_insts
            + self.automaton_appends
            + self.automaton_steps
            > 0
            || self.automaton_compile_time > Duration::ZERO
    }

    /// Adds every counter, gauge, and timer of `other` into `self`
    /// (`par_workers` is a max-gauge). Used when merging the per-worker
    /// stats of a parallel constraint sweep back into the engine's
    /// stats, in chunk order.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.appends += other.appends;
        self.fast_appends += other.fast_appends;
        self.grounds += other.grounds;
        self.regrounds += other.regrounds;
        self.delta_grounds += other.delta_grounds;
        self.new_conjuncts += other.new_conjuncts;
        self.replayed_conjuncts += other.replayed_conjuncts;
        self.progress_steps += other.progress_steps;
        self.encode_patched_atoms += other.encode_patched_atoms;
        self.sat_checks += other.sat_checks;
        self.automaton_appends += other.automaton_appends;
        self.automaton_steps += other.automaton_steps;
        self.cache.absorb(&other.cache);
        self.history.absorb(&other.history);
        self.letters += other.letters;
        self.arena_nodes += other.arena_nodes;
        self.mappings += other.mappings;
        self.inst_enumerated += other.inst_enumerated;
        self.inst_pruned += other.inst_pruned;
        self.inst_shared += other.inst_shared;
        self.templates_compiled += other.templates_compiled;
        self.automaton_states += other.automaton_states;
        self.automaton_insts += other.automaton_insts;
        self.ground_time += other.ground_time;
        self.index_build_time += other.index_build_time;
        self.automaton_compile_time += other.automaton_compile_time;
        self.progress_time += other.progress_time;
        self.sat_time += other.sat_time;
        self.batches += other.batches;
        self.batched_txs += other.batched_txs;
        self.pool_buf_allocs += other.pool_buf_allocs;
        self.pool_workers = self.pool_workers.max(other.pool_workers);
        self.par_phases += other.par_phases;
        self.par_workers = self.par_workers.max(other.par_workers);
        self.par_time += other.par_time;
        self.par_busy_time += other.par_busy_time;
    }

    /// Folds the observations of one [`ParMeter`](crate::par::ParMeter)
    /// into the parallel section of the stats.
    pub fn absorb_par(&mut self, m: &crate::par::ParMeter) {
        self.par_phases += m.phases;
        self.par_workers = self.par_workers.max(m.max_workers);
        self.par_time += m.wall;
        self.par_busy_time += m.busy;
    }
}

/// A running wall-clock timer; [`Timer::finish`] adds the elapsed time
/// to an accumulator on the stats struct.
#[derive(Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Starts the clock.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Stops the clock, adding the elapsed time to `acc`.
    pub fn finish(self, acc: &mut Duration) {
        *acc += self.0.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.appends, 0);
        assert_eq!(s.ground_time, Duration::ZERO);
    }

    #[test]
    fn render_mentions_every_counter() {
        let s = EngineStats {
            appends: 3,
            delta_grounds: 2,
            replayed_conjuncts: 5,
            ..Default::default()
        };
        let r = s.render();
        for needle in [
            "appends",
            "delta regrounds",
            "replayed conjuncts",
            "patched atoms",
            "ground time",
            "inst enumerated",
            "inst pruned",
            "inst shared",
            "index build time",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in render");
        }
        assert!(r.contains("  appends             3"));
    }

    #[test]
    fn automata_section_renders_only_when_used() {
        let s = EngineStats::default();
        assert!(!s.render().contains("automata:"));
        let s = EngineStats {
            templates_compiled: 2,
            automaton_states: 9,
            automaton_insts: 100,
            automaton_appends: 40,
            automaton_steps: 7,
            ..Default::default()
        };
        let r = s.render();
        assert!(r.contains("automata:"));
        assert!(r.contains("templates compiled  2"));
        assert!(r.contains("automaton states    9"));
        assert!(r.contains("bound insts         100"));
        assert!(r.contains("automaton appends   40"));
        assert!(r.contains("automaton steps     7"));
        assert!(r.contains("compile time"));
    }

    #[test]
    fn cache_section_renders_only_when_used() {
        let s = EngineStats::default();
        assert!(!s.render().contains("cache:"));
        let s = EngineStats {
            cache: CacheStats {
                sat_hits: 2,
                transition_hits: 7,
                transition_misses: 3,
                letter_index_len: 11,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = s.render();
        assert!(r.contains("cache:"));
        assert!(r.contains("transition hits     7"));
        assert!(r.contains("letter index        11"));
    }

    #[test]
    fn history_section_renders_only_when_used() {
        let s = EngineStats::default();
        assert!(!s.render().contains("history:"));
        let s = EngineStats {
            history: HistoryStats {
                resident_states: 64,
                spilled_instants: 936,
                spilled_distinct: 12,
                truncations: 3,
                page_loads: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = s.render();
        assert!(r.contains("history:"));
        assert!(r.contains("resident states     64"));
        assert!(r.contains("spilled instants    936"));
        assert!(r.contains("spilled distinct    12"));
        assert!(r.contains("truncations         3"));
        assert!(r.contains("page loads          5"));
    }

    #[test]
    fn parallel_section_renders_only_when_used() {
        let s = EngineStats::default();
        assert!(!s.render().contains("parallel:"));
        let s = EngineStats {
            par_phases: 2,
            par_workers: 4,
            par_time: Duration::from_millis(10),
            par_busy_time: Duration::from_millis(30),
            ..Default::default()
        };
        let r = s.render();
        assert!(r.contains("parallel:"));
        assert!(r.contains("par workers (max)   4"));
        assert!(r.contains("effective speedup   3.00x"));
    }

    #[test]
    fn absorb_sums_counters_and_maxes_worker_gauge() {
        let mut a = EngineStats {
            appends: 1,
            sat_checks: 2,
            automaton_steps: 2,
            par_workers: 4,
            ground_time: Duration::from_millis(5),
            cache: CacheStats {
                transition_hits: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = EngineStats {
            appends: 2,
            sat_checks: 3,
            automaton_steps: 4,
            par_workers: 2,
            ground_time: Duration::from_millis(7),
            cache: CacheStats {
                transition_hits: 4,
                sat_hits: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.appends, 3);
        assert_eq!(a.sat_checks, 5);
        assert_eq!(a.automaton_steps, 6);
        assert_eq!(a.par_workers, 4);
        assert_eq!(a.ground_time, Duration::from_millis(12));
        assert_eq!(a.cache.transition_hits, 5);
        assert_eq!(a.cache.sat_hits, 2);
    }

    #[test]
    fn timer_accumulates() {
        let mut acc = Duration::ZERO;
        let t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        t.finish(&mut acc);
        assert!(acc >= Duration::from_millis(2));
        let t2 = Timer::start();
        t2.finish(&mut acc);
        assert!(acc >= Duration::from_millis(2));
    }
}
