//! Observability spine: counters and timers for the incremental engine.
//!
//! Every grounding, progression, and satisfiability decision in the
//! [`engine`](crate::engine) layer increments monotonic counters and
//! accumulates wall-clock time here, so the shell's `:stats` command
//! and the bench harness can read one machine-readable snapshot
//! ([`EngineStats`]) instead of scraping logs. No external
//! dependencies — plain `u64` counters and [`std::time`] durations.

use std::time::{Duration, Instant};

/// A machine-readable snapshot of the engine's counters, timers, and
/// size gauges. Counters are monotonic over the engine's lifetime;
/// gauges reflect the moment the snapshot was taken.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Transactions applied (monitor appends / engine steps).
    pub appends: u64,
    /// Appends served by the incremental fast path (no new relevant
    /// element: encode one state, progress residues).
    pub fast_appends: u64,
    /// Initial groundings (constraint registration, one-shot checks).
    pub grounds: u64,
    /// Full re-groundings (grounding rebuilt from scratch over the
    /// whole history).
    pub regrounds: u64,
    /// Incremental (delta) re-groundings: only the instantiations
    /// mentioning new relevant elements were ground and replayed.
    pub delta_grounds: u64,
    /// Ground instantiations added by delta re-groundings.
    pub new_conjuncts: u64,
    /// Conjunct blocks replayed through a stored trace by delta
    /// re-groundings — stays `O(|Δ-part|)`, while a full rebuild
    /// re-derives all `|M|^k` instantiations.
    pub replayed_conjuncts: u64,
    /// Single-state progression steps.
    pub progress_steps: u64,
    /// Phase-2 satisfiability runs.
    pub sat_checks: u64,
    /// Satisfiability answers served from the residue cache.
    pub sat_cache_hits: u64,
    /// Gauge: interned propositional letters across live groundings.
    pub letters: u64,
    /// Gauge: formula-arena DAG nodes across live groundings.
    pub arena_nodes: u64,
    /// Gauge: ground instantiations (`|M|^k`) across live groundings.
    pub mappings: u64,
    /// Wall-clock spent grounding (initial, full, and delta).
    pub ground_time: Duration,
    /// Wall-clock spent in progression (trace replay and per-append).
    pub progress_time: Duration,
    /// Wall-clock spent in phase-2 satisfiability.
    pub sat_time: Duration,
    /// Parallel fan-outs that actually spawned worker threads (sharded
    /// groundings, concurrent constraint/trigger sweeps).
    pub par_phases: u64,
    /// Gauge: the widest worker pool any single fan-out used.
    pub par_workers: u64,
    /// Wall-clock spent inside parallel fan-outs.
    pub par_time: Duration,
    /// Busy time summed across all workers of all fan-outs. The ratio
    /// `par busy time / par time` approximates the effective speedup.
    pub par_busy_time: Duration,
}

impl EngineStats {
    /// A human-readable multi-line rendering (the `:stats` shell view).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("engine counters:\n");
        s.push_str(&format!("  appends             {}\n", self.appends));
        s.push_str(&format!("  fast appends        {}\n", self.fast_appends));
        s.push_str(&format!("  grounds             {}\n", self.grounds));
        s.push_str(&format!("  full regrounds      {}\n", self.regrounds));
        s.push_str(&format!("  delta regrounds     {}\n", self.delta_grounds));
        s.push_str(&format!("  new conjuncts       {}\n", self.new_conjuncts));
        s.push_str(&format!(
            "  replayed conjuncts  {}\n",
            self.replayed_conjuncts
        ));
        s.push_str(&format!("  progress steps      {}\n", self.progress_steps));
        s.push_str(&format!("  sat checks          {}\n", self.sat_checks));
        s.push_str(&format!("  sat cache hits      {}\n", self.sat_cache_hits));
        s.push_str("engine gauges:\n");
        s.push_str(&format!("  letters             {}\n", self.letters));
        s.push_str(&format!("  arena nodes         {}\n", self.arena_nodes));
        s.push_str(&format!("  mappings            {}\n", self.mappings));
        s.push_str("engine timers:\n");
        s.push_str(&format!("  ground time         {:?}\n", self.ground_time));
        s.push_str(&format!("  progress time       {:?}\n", self.progress_time));
        s.push_str(&format!("  sat time            {:?}", self.sat_time));
        if self.par_phases > 0 {
            let speedup = if self.par_time > Duration::ZERO {
                self.par_busy_time.as_secs_f64() / self.par_time.as_secs_f64()
            } else {
                1.0
            };
            s.push_str("\nparallel:\n");
            s.push_str(&format!("  par phases          {}\n", self.par_phases));
            s.push_str(&format!("  par workers (max)   {}\n", self.par_workers));
            s.push_str(&format!("  par time            {:?}\n", self.par_time));
            s.push_str(&format!("  par busy time       {:?}\n", self.par_busy_time));
            s.push_str(&format!("  effective speedup   {speedup:.2}x"));
        }
        s
    }

    /// Adds every counter, gauge, and timer of `other` into `self`
    /// (`par_workers` is a max-gauge). Used when merging the per-worker
    /// stats of a parallel constraint sweep back into the engine's
    /// stats, in chunk order.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.appends += other.appends;
        self.fast_appends += other.fast_appends;
        self.grounds += other.grounds;
        self.regrounds += other.regrounds;
        self.delta_grounds += other.delta_grounds;
        self.new_conjuncts += other.new_conjuncts;
        self.replayed_conjuncts += other.replayed_conjuncts;
        self.progress_steps += other.progress_steps;
        self.sat_checks += other.sat_checks;
        self.sat_cache_hits += other.sat_cache_hits;
        self.letters += other.letters;
        self.arena_nodes += other.arena_nodes;
        self.mappings += other.mappings;
        self.ground_time += other.ground_time;
        self.progress_time += other.progress_time;
        self.sat_time += other.sat_time;
        self.par_phases += other.par_phases;
        self.par_workers = self.par_workers.max(other.par_workers);
        self.par_time += other.par_time;
        self.par_busy_time += other.par_busy_time;
    }

    /// Folds the observations of one [`ParMeter`](crate::par::ParMeter)
    /// into the parallel section of the stats.
    pub fn absorb_par(&mut self, m: &crate::par::ParMeter) {
        self.par_phases += m.phases;
        self.par_workers = self.par_workers.max(m.max_workers);
        self.par_time += m.wall;
        self.par_busy_time += m.busy;
    }
}

/// A running wall-clock timer; [`Timer::finish`] adds the elapsed time
/// to an accumulator on the stats struct.
#[derive(Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Starts the clock.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Stops the clock, adding the elapsed time to `acc`.
    pub fn finish(self, acc: &mut Duration) {
        *acc += self.0.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.appends, 0);
        assert_eq!(s.ground_time, Duration::ZERO);
    }

    #[test]
    fn render_mentions_every_counter() {
        let s = EngineStats {
            appends: 3,
            delta_grounds: 2,
            replayed_conjuncts: 5,
            ..Default::default()
        };
        let r = s.render();
        for needle in [
            "appends",
            "delta regrounds",
            "replayed conjuncts",
            "sat cache hits",
            "ground time",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in render");
        }
        assert!(r.contains("  appends             3"));
    }

    #[test]
    fn parallel_section_renders_only_when_used() {
        let s = EngineStats::default();
        assert!(!s.render().contains("parallel:"));
        let s = EngineStats {
            par_phases: 2,
            par_workers: 4,
            par_time: Duration::from_millis(10),
            par_busy_time: Duration::from_millis(30),
            ..Default::default()
        };
        let r = s.render();
        assert!(r.contains("parallel:"));
        assert!(r.contains("par workers (max)   4"));
        assert!(r.contains("effective speedup   3.00x"));
    }

    #[test]
    fn absorb_sums_counters_and_maxes_worker_gauge() {
        let mut a = EngineStats {
            appends: 1,
            sat_checks: 2,
            par_workers: 4,
            ground_time: Duration::from_millis(5),
            ..Default::default()
        };
        let b = EngineStats {
            appends: 2,
            sat_checks: 3,
            par_workers: 2,
            ground_time: Duration::from_millis(7),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.appends, 3);
        assert_eq!(a.sat_checks, 5);
        assert_eq!(a.par_workers, 4);
        assert_eq!(a.ground_time, Duration::from_millis(12));
    }

    #[test]
    fn timer_accumulates() {
        let mut acc = Duration::ZERO;
        let t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        t.finish(&mut acc);
        assert!(acc >= Duration::from_millis(2));
        let t2 = Timer::start();
        t2.finish(&mut acc);
        assert!(acc >= Duration::from_millis(2));
    }
}
