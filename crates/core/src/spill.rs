//! The cold-state pager: where truncated history instants live.
//!
//! When the engine truncates the in-memory `History` prefix behind
//! the retention horizon (see [`crate::window`]), the dropped states
//! are not gone — the rare slow paths (delta re-ground replay, full
//! materialisation for `add_constraint`, explain, triggers) can still
//! ask for instant `t < base`. The [`HistoryPager`] serves them: it
//! dedups each spilled state by its canonical encoding (churn
//! workloads cycle through a handful of databases, so millions of
//! instants collapse to a few pages), appends distinct states to a
//! checksummed [`SegmentFile`] in temp storage, and lazily loads +
//! caches pages on demand.
//!
//! The segment is a **memory-relief tier, not a durability one**: the
//! engine only truncates instants already covered by a checkpoint, so
//! the snapshot — which stays fully self-contained — is the source of
//! truth after a crash, and the pager file can live in `temp_dir` and
//! die with the process.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::Error;
use crate::snapshot::{state_decode, state_encode};
use ticc_store::{Dec, Enc, SegmentFile};
use ticc_tdb::rng::splitmix64;
use ticc_tdb::{Schema, State};

/// Pages cached in memory at once; the cache is cleared wholesale
/// when full (loads cluster on a handful of hot pages, so anything
/// fancier buys nothing).
const CACHE_CAP: usize = 256;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("ticc-spill-{}-{}.seg", std::process::id(), seq));
    p
}

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut acc: u64 = 0x5449_4343_5350_4c31; // "TICCSPL1"
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        acc ^= u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        acc = splitmix64(&mut acc);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut last = [0u8; 8];
        last[..rest.len()].copy_from_slice(rest);
        acc ^= u64::from_le_bytes(last);
        acc = splitmix64(&mut acc);
    }
    acc ^= bytes.len() as u64;
    splitmix64(&mut acc)
}

/// The spill tier for truncated history instants: a deduped,
/// checksummed, lazily-loaded page file.
///
/// Loads take `&self` (positioned reads + an internal cache mutex),
/// so pool workers sweeping constraints in parallel can fault cold
/// states in concurrently while the engine owns the pager mutably
/// for spills.
#[derive(Debug)]
pub struct HistoryPager {
    seg: SegmentFile,
    schema: Arc<Schema>,
    /// Page id of each spilled instant: `per_instant[t]` for
    /// `t < base`.
    per_instant: Vec<u32>,
    /// Dedup index: content hash → candidate page ids (verified
    /// against [`HistoryPager::raw`] on collision).
    dedup: HashMap<u64, Vec<u32>>,
    /// Canonical bytes of every distinct page. Dedup verification runs
    /// on the append hot path — churn workloads re-spill the same few
    /// states over and over — so it must not fault pages in from disk.
    /// O(distinct states), the same order the checkpoint's distinct
    /// table pays anyway.
    raw: HashMap<u32, Vec<u8>>,
    /// Decoded-page cache, cleared wholesale at [`CACHE_CAP`].
    cache: Mutex<HashMap<u32, Arc<State>>>,
    /// Pages faulted back in from disk (cache misses).
    loads: AtomicU64,
}

impl HistoryPager {
    /// Creates an empty pager for `schema`, backed by a fresh temp
    /// segment file (removed on drop).
    pub fn new(schema: Arc<Schema>) -> Result<HistoryPager, Error> {
        let seg = SegmentFile::create(spill_path())?;
        Ok(HistoryPager {
            seg,
            schema,
            per_instant: Vec::new(),
            dedup: HashMap::new(),
            raw: HashMap::new(),
            cache: Mutex::new(HashMap::new()),
            loads: AtomicU64::new(0),
        })
    }

    /// Spills the next instant (instants must be spilled in temporal
    /// order, so the `i`-th call covers instant `i`). Dedups against
    /// already-spilled states; only novel states cost a page append.
    pub fn spill(&mut self, state: &State) -> Result<(), Error> {
        let mut e = Enc::new();
        state_encode(&mut e, &self.schema, state);
        self.spill_encoded(&e.into_bytes())
    }

    /// [`HistoryPager::spill`] for a state already in canonical
    /// encoded form (the snapshot-restore path re-spills decoded
    /// distinct states without round-tripping through `State`).
    pub fn spill_encoded(&mut self, bytes: &[u8]) -> Result<(), Error> {
        let h = hash_bytes(bytes);
        if let Some(candidates) = self.dedup.get(&h) {
            for &id in candidates {
                if self.raw[&id] == bytes {
                    self.per_instant.push(id);
                    return Ok(());
                }
            }
        }
        let id = self.seg.append(bytes)?;
        self.dedup.entry(h).or_default().push(id);
        self.raw.insert(id, bytes.to_vec());
        self.per_instant.push(id);
        Ok(())
    }

    /// Rolls the instant index back to `n` entries (undoing spills
    /// whose batch failed part-way). Appended pages stay in the
    /// segment and the dedup table — re-spilling the same states later
    /// reuses them for free.
    pub fn rollback_to(&mut self, n: usize) {
        self.per_instant.truncate(n);
    }

    /// Loads the state of spilled instant `t`, faulting its page in
    /// from the segment if it is not cached.
    pub fn load(&self, t: usize) -> Result<Arc<State>, Error> {
        let id = *self
            .per_instant
            .get(t)
            .ok_or_else(|| Error::Store(format!("instant {t} is not in the spill tier")))?;
        {
            let cache = self.cache.lock().expect("pager cache poisoned");
            if let Some(s) = cache.get(&id) {
                return Ok(Arc::clone(s));
            }
        }
        let bytes = self.seg.read(id)?;
        let mut d = Dec::new(&bytes);
        let state = state_decode(&mut d, &self.schema)?;
        d.finish().map_err(Error::from)?;
        self.loads.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(state);
        let mut cache = self.cache.lock().expect("pager cache poisoned");
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(id, Arc::clone(&state));
        Ok(state)
    }

    /// Raw canonical bytes of distinct page `id` (cache-bypassing;
    /// the snapshot encoder streams these straight into the
    /// distinct-state table).
    pub fn page_bytes(&self, id: u32) -> Result<Vec<u8>, Error> {
        self.seg.read(id).map_err(Error::from)
    }

    /// Page id of spilled instant `t`.
    pub fn page_of(&self, t: usize) -> Option<u32> {
        self.per_instant.get(t).copied()
    }

    /// Number of spilled instants (equals the history's `base`).
    pub fn spilled_instants(&self) -> usize {
        self.per_instant.len()
    }

    /// Number of distinct spilled states (segment pages).
    pub fn distinct(&self) -> usize {
        self.seg.pages()
    }

    /// Size of the spill segment file, in bytes.
    pub fn bytes(&self) -> u64 {
        self.seg.bytes()
    }

    /// Pages faulted back in from disk so far.
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }
}

impl Drop for HistoryPager {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(self.seg.path());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_tdb::Transaction;

    fn schema() -> Arc<Schema> {
        Schema::builder().pred("P", 1).pred("Q", 2).build()
    }

    fn state_with(schema: &Arc<Schema>, vals: &[u64]) -> State {
        let p = schema.pred("P").unwrap();
        let mut s = State::empty(schema.clone());
        let mut tx = Transaction::new();
        for &v in vals {
            tx = tx.insert(p, vec![v]);
        }
        tx.apply_to(&mut s).unwrap();
        s
    }

    #[test]
    fn spill_dedups_and_loads_round_trip() {
        let sc = schema();
        let mut pager = HistoryPager::new(sc.clone()).unwrap();
        let a = state_with(&sc, &[1]);
        let b = state_with(&sc, &[1, 2]);
        // a, b, a, a, b: 5 instants, 2 distinct pages.
        for s in [&a, &b, &a, &a, &b] {
            pager.spill(s).unwrap();
        }
        assert_eq!(pager.spilled_instants(), 5);
        assert_eq!(pager.distinct(), 2);
        assert_eq!(*pager.load(0).unwrap(), a);
        assert_eq!(*pager.load(1).unwrap(), b);
        assert_eq!(*pager.load(3).unwrap(), a);
        // Instants 0 and 3 share a page: the second access was served
        // from cache, so only two faults happened in total.
        assert_eq!(pager.loads(), 2);
        assert!(pager.load(5).is_err());
        let path = pager.seg.path().to_path_buf();
        assert!(path.exists());
        drop(pager);
        assert!(!path.exists(), "temp segment removed on drop");
    }

    #[test]
    fn encoded_respill_matches_state_spill() {
        let sc = schema();
        let a = state_with(&sc, &[7, 8]);
        let mut e = Enc::new();
        state_encode(&mut e, &sc, &a);
        let bytes = e.into_bytes();
        let mut pager = HistoryPager::new(sc.clone()).unwrap();
        pager.spill(&a).unwrap();
        pager.spill_encoded(&bytes).unwrap();
        assert_eq!(pager.distinct(), 1, "encoded form dedups against spilled");
        assert_eq!(pager.page_bytes(0).unwrap(), bytes);
        assert_eq!(*pager.load(1).unwrap(), a);
    }
}
