//! The unified error type of the core crate.
//!
//! Earlier revisions grew one error enum per entry point
//! (`MonitorError`, `CheckError`, `TriggerError`, `PastError`), all
//! wrapping the same two underlying failures — grounding rejection
//! (Theorem 4.1's fragment check) and propositional-engine failure —
//! plus a couple of caller-specific shapes. They are now collapsed
//! into one [`Error`], marked `#[non_exhaustive]` so future failure
//! modes are not breaking changes. The old names remain as deprecated
//! type aliases for one release.

use crate::ground::GroundError;
use ticc_ptl::sat::SatError;
use ticc_tdb::TdbError;

/// Any failure the checking pipeline can produce.
///
/// Marked `#[non_exhaustive]`: match with a wildcard arm outside this
/// crate. The [`From`] impls make `?` work uniformly across the
/// grounding, satisfiability, and database layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Grounding failed: the constraint is outside the decidable
    /// fragment of Theorem 4.1.
    Ground(GroundError),
    /// The propositional engines failed (e.g. a past connective reached
    /// the future-only satisfiability phase).
    Sat(SatError),
    /// Applying an update to the history failed.
    Tdb(TdbError),
    /// A trigger condition is unusable: `¬Cθ` must be a universal
    /// future sentence for the duality with potential satisfaction to
    /// apply.
    UnsupportedCondition(String),
    /// A past-fragment formula falls outside the shape the dedicated
    /// past monitor supports.
    UnsupportedShape(&'static str),
    /// The durability layer failed: WAL I/O, a corrupt frame, or an
    /// undecodable snapshot. Carries the rendered message only —
    /// `ticc_store::StoreError` wraps `std::io::Error`, which is
    /// neither `Clone` nor `PartialEq`, so it cannot live in this enum
    /// directly.
    Store(String),
    /// A session-lifecycle rule was broken: declaring schema symbols
    /// after the freeze, freezing an empty schema, committing before
    /// any predicate exists, or restoring a corrupt session blob.
    Session(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Ground(e) => write!(f, "grounding: {e}"),
            Error::Sat(e) => write!(f, "satisfiability: {e}"),
            Error::Tdb(e) => write!(f, "database: {e}"),
            Error::UnsupportedCondition(m) => write!(f, "unsupported condition: {m}"),
            Error::UnsupportedShape(m) => write!(f, "unsupported formula shape: {m}"),
            Error::Store(m) => write!(f, "store: {m}"),
            Error::Session(m) => write!(f, "session: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Ground(e) => Some(e),
            Error::Sat(e) => Some(e),
            Error::Tdb(e) => Some(e),
            Error::UnsupportedCondition(_)
            | Error::UnsupportedShape(_)
            | Error::Store(_)
            | Error::Session(_) => None,
        }
    }
}

impl From<GroundError> for Error {
    fn from(e: GroundError) -> Self {
        Error::Ground(e)
    }
}

impl From<SatError> for Error {
    fn from(e: SatError) -> Self {
        Error::Sat(e)
    }
}

impl From<TdbError> for Error {
    fn from(e: TdbError) -> Self {
        Error::Tdb(e)
    }
}

impl From<ticc_store::StoreError> for Error {
    fn from(e: ticc_store::StoreError) -> Self {
        Error::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = Error::from(GroundError::ExtendedVocabulary);
        assert!(e.to_string().starts_with("grounding:"));
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::UnsupportedCondition("past operators".into());
        assert!(e.to_string().contains("unsupported condition"));
        assert!(std::error::Error::source(&e).is_none());
        let e = Error::UnsupportedShape("nested since");
        assert!(e.to_string().contains("unsupported formula shape"));
    }

    #[test]
    fn from_conversions_choose_the_right_variant() {
        let g: Error = GroundError::ExtendedVocabulary.into();
        assert!(matches!(g, Error::Ground(_)));
        let s: Error = SatError::Past.into();
        assert!(matches!(s, Error::Sat(_)));
    }

    #[test]
    fn deprecated_aliases_still_name_the_unified_type() {
        #[allow(deprecated)]
        fn takes_alias(e: crate::engine::MonitorError) -> Error {
            e
        }
        let e = takes_alias(Error::Sat(SatError::Past));
        assert!(matches!(e, Error::Sat(_)));
    }
}
